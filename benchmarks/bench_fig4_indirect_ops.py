"""Figure 4: points-to statistics for indirect memory reads and writes.

Regenerates the per-program histogram of locations referenced/modified
by indirect operations and compares its shape with the paper's: most
ops single-target, a few multi-target programs, averages near 1.5
(reads) and 1.4 (writes).  The timed kernel is the statistics pass
itself over precomputed CI results.
"""

from conftest import emit

from repro.analysis.stats import indirect_op_stats
from repro.report import paper
from repro.report.experiments import fig4_rows
from repro.report.tables import render_table
from repro.suite.registry import PROGRAM_NAMES


def test_fig4_indirect_ops(runner, benchmark):
    results = [runner.ci(name) for name in PROGRAM_NAMES]

    def kernel():
        return [indirect_op_stats(result, kind)
                for result in results for kind in ("read", "write")]

    benchmark(kernel)

    headers, rows = fig4_rows(runner)
    merged_headers = headers + ["paper avg"]
    merged = []
    for row in rows:
        name, kind = row[0], row[1]
        if name == "TOTAL":
            paper_avg = paper.FIGURE4_TOTAL[kind][-1]
        else:
            paper_avg = paper.FIGURE4[(name, kind)][-1]
        merged.append(list(row) + [paper_avg])
    emit(benchmark, "fig4",
         render_table(merged_headers, merged,
                      title="Figure 4: locations referenced/modified "
                            "by indirect operations (ours vs. paper "
                            "avg)"))

    totals = {row[1]: row for row in rows if row[0] == "TOTAL"}
    # Shape targets (DESIGN.md): averages close to the paper's 1.55 /
    # 1.39, single-target ops dominating.
    assert 1.0 <= totals["read"][8] <= 2.2
    assert 1.0 <= totals["write"][8] <= 1.8
    assert totals["read"][3] / totals["read"][2] >= 0.45   # @1 fraction
    assert totals["write"][3] / totals["write"][2] >= 0.6

    # §3.2: backprop, compiler, span have no multi-target indirect ops.
    for name in ("backprop", "compiler", "span"):
        for kind in ("read", "write"):
            row = next(r for r in rows if r[0] == name and r[1] == kind)
            assert row[7] <= 1, (name, kind)
