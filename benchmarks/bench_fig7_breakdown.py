"""Figure 7: pairs broken down by path type × referent type.

Regenerates both halves of the figure (all CI pairs, spurious pairs
only) as percentages and checks §5.2's reading of it: spurious pairs
skew toward local paths and heap referents relative to the full
population.  The timed kernel is the breakdown computation.
"""

from conftest import emit

from repro.analysis.compare import spurious_breakdown
from repro.analysis.stats import breakdown_percentages, pair_breakdown
from repro.report import paper
from repro.report.experiments import fig7_rows
from repro.report.tables import render_table
from repro.suite.registry import PROGRAM_NAMES


def test_fig7_breakdown(runner, benchmark):
    results = [(runner.ci(name), runner.cs(name))
               for name in PROGRAM_NAMES]

    def kernel():
        out = {}
        for ci, cs in results:
            for key, count in pair_breakdown(ci).items():
                out[key] = out.get(key, 0) + count
            for key, count in spurious_breakdown(ci, cs).items():
                out[key] = out.get(key, 0) - count
        return out

    benchmark(kernel)

    headers, rows = fig7_rows(runner)
    emit(benchmark, "fig7",
         render_table(headers, rows,
                      title="Figure 7: percent of pairs by path type "
                            "x referent type (all CI pairs / spurious "
                            "only)"))
    paper_rows = [["(paper, spurious)"]
                  + [""] * 4
                  + [paper.FIGURE7_SPURIOUS[(p, r)]
                     for p in ("local",) for r in
                     ("function", "local", "global", "heap")]]
    emit(None, "fig7-paper",
         render_table(["paper spurious: local-path row"]
                      + ["function", "local", "global", "heap"],
                      [["local"] + [paper.FIGURE7_SPURIOUS[("local", r)]
                                    for r in ("function", "local",
                                              "global", "heap")],
                       ["heap"] + [paper.FIGURE7_SPURIOUS[("heap", r)]
                                   for r in ("function", "local",
                                             "global", "heap")]]))

    # §5.2's skews, computed from the raw counts.
    all_counts = {}
    spurious_counts = {}
    for ci, cs in results:
        for key, count in pair_breakdown(ci).items():
            all_counts[key] = all_counts.get(key, 0) + count
        for key, count in spurious_breakdown(ci, cs).items():
            spurious_counts[key] = spurious_counts.get(key, 0) + count
    all_pct = breakdown_percentages(all_counts)
    spur_pct = breakdown_percentages(spurious_counts)

    def share(pct, selector):
        return sum(v for k, v in pct.items() if selector(k))

    # Spurious pairs over-represent local paths...
    local_all = share(all_pct, lambda k: k[0] == "local")
    local_spur = share(spur_pct, lambda k: k[0] == "local")
    assert local_spur >= local_all
    # ... and heap referents.
    heap_all = share(all_pct, lambda k: k[1] == "heap")
    heap_spur = share(spur_pct, lambda k: k[1] == "heap")
    assert heap_spur >= heap_all
