"""§5.1.2: the benchmark structure behind the headline result.

The paper explains *why* context-insensitivity costs nothing on these
programs: sparse call graphs ("procedures average 4.2 callers, 54% of
procedures have only one caller") and shallow pointer nesting ("the
vast majority of pointers are single-level").  This bench measures
both properties of our suite; the timed kernel is the structural
statistics pass.
"""

from conftest import emit

from repro.analysis.stats import structure_stats
from repro.report import paper
from repro.report.experiments import struct51_rows
from repro.report.tables import render_table
from repro.suite.registry import PROGRAM_NAMES


def test_struct51_structure(runner, benchmark):
    results = [runner.ci(name) for name in PROGRAM_NAMES]
    benchmark(lambda: [structure_stats(result) for result in results])

    headers, rows = struct51_rows(runner)
    emit(benchmark, "struct51",
         render_table(headers, rows,
                      title="Section 5.1.2: benchmark structure "
                            f"(paper: {paper.TEXT_CLAIMS['avg_callers']} "
                            f"avg callers, "
                            f"{100 * paper.TEXT_CLAIMS['single_caller_fraction']:.0f}% "
                            f"single-caller)"))

    total = rows[-1]
    # Sparse call graph: a few callers per procedure on average, with
    # roughly half the procedures having exactly one.
    assert 1.0 <= total[4] <= 8.0
    assert 30.0 <= total[5] <= 80.0
    # Shallow nesting: single-level pointers are the majority.
    assert total[7] <= 50.0
