"""Serve-daemon smoke + benchmark: warm-over-cold speedup and parity.

Starts a real ``repro serve`` daemon (in-process asyncio server on an
ephemeral port, throwaway cache directory), then:

1. **cold pass** — one ``analyze`` per suite program against the empty
   cache: full preprocess/parse/lower/solve in a pool worker;
2. **warm pass** — the same requests again, repeated: answered from
   the in-memory solution tier without touching the pool;
3. **mixed phase** — ≥50 concurrent warm/cold ``analyze``/``check``/
   ``query`` requests (cold via fresh synthetic sources) for a
   sustained-throughput figure;
4. **parity** — every served digest (all three flavors, analyze *and*
   check) must be byte-identical to a fresh CLI-path run computed in
   this process with caching disabled.

Gates (nonzero exit on violation, wired into ``make serve-smoke``):

* warm p50 latency ≥ :data:`SPEEDUP_FLOOR` × faster than cold p50;
* all served analyze/check digests equal the fresh CLI ones;
* every mixed-phase request answers 200.

Writes ``BENCH_serve.json`` at the repo root::

    python benchmarks/bench_serve.py
"""

from __future__ import annotations

import http.client
import json
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.flowinsensitive import analyze_flowinsensitive  # noqa: E402
from repro.analysis.insensitive import analyze_insensitive  # noqa: E402
from repro.analysis.sensitive import analyze_sensitive  # noqa: E402
from repro.fuzz.oracle import solution_digest  # noqa: E402
from repro.runner import run_check_report  # noqa: E402
from repro.serve import ServeConfig  # noqa: E402
from repro.serve.http import run_server  # noqa: E402
from repro.suite.registry import PROGRAM_NAMES, load_program  # noqa: E402
from repro.telemetry import percentile  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_serve.json"

#: The acceptance floor: warm p50 must beat cold p50 by at least this.
SPEEDUP_FLOOR = 5.0

#: Warm repetitions per program (p50 over programs × reps).
WARM_REPS = 3

#: Minimum requests in the mixed sustained-load phase.
MIXED_REQUESTS = 50

CHECK_FLAVORS = ("insensitive", "sensitive", "flowinsensitive")


def _start_daemon(cache_dir: str):
    config = ServeConfig(port=0, workers=4, cache=cache_dir,
                         queue_limit=64,
                         telemetry=str(Path(cache_dir) / "serve.jsonl"),
                         telemetry_every=25)
    addr = {}
    ready = threading.Event()

    def on_ready(hp):
        addr["hp"] = hp
        ready.set()

    thread = threading.Thread(target=run_server, args=(config,),
                              kwargs={"ready": on_ready}, daemon=True)
    thread.start()
    if not ready.wait(60):
        raise RuntimeError("daemon failed to start within 60s")
    return addr["hp"]


def _request(addr, method, path, body=None):
    host, port = addr
    conn = http.client.HTTPConnection(host, port, timeout=600)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        started = time.perf_counter()
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        data = json.loads(resp.read())
        return resp.status, data, time.perf_counter() - started
    finally:
        conn.close()


def _served_digests(payload):
    return {flavor: entry["digest"]
            for flavor, entry in payload["flavors"].items()}


def _cli_analyze_digests(name):
    """Fresh CLI-path digests: same code the CLI drives, cache off."""
    program = load_program(name, cache=False)
    ci = analyze_insensitive(program)
    cs = analyze_sensitive(program, ci_result=ci)
    fi = analyze_flowinsensitive(program)
    return {"insensitive": solution_digest(ci),
            "sensitive": solution_digest(cs),
            "flowinsensitive": solution_digest(fi)}


def _synthetic(tag: int) -> str:
    return f"""
int ga{tag};
int gb{tag};
int *pick(int c) {{ return c ? &ga{tag} : &gb{tag}; }}
int main(void) {{ int *p = pick({tag % 2}); *p = {tag}; return 0; }}
"""


def main() -> int:
    failures: list = []
    report: dict = {"schema": 1, "kind": "serve-bench",
                    "suite_size": len(PROGRAM_NAMES),
                    "speedup_floor": SPEEDUP_FLOOR}

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as cache:
        addr = _start_daemon(cache)

        # -- cold pass --------------------------------------------------
        cold_latencies = {}
        served = {}
        for name in PROGRAM_NAMES:
            status, payload, seconds = _request(
                addr, "POST", "/analyze", {"program": name})
            if status != 200:
                failures.append(f"cold analyze {name}: HTTP {status} "
                                f"({payload.get('error')})")
                continue
            cold_latencies[name] = seconds
            served[name] = _served_digests(payload)
        report["cold_p50_seconds"] = percentile(
            list(cold_latencies.values()), 0.50)

        # -- warm pass --------------------------------------------------
        warm_latencies = []
        warm_tiers = {}
        for _ in range(WARM_REPS):
            for name in PROGRAM_NAMES:
                status, payload, seconds = _request(
                    addr, "POST", "/analyze", {"program": name})
                if status != 200:
                    failures.append(f"warm analyze {name}: HTTP {status}")
                    continue
                warm_latencies.append(seconds)
                warm_tiers[payload["tier"]] = \
                    warm_tiers.get(payload["tier"], 0) + 1
                if _served_digests(payload) != served.get(name):
                    failures.append(
                        f"warm analyze {name}: digests drifted from "
                        f"this daemon's cold answer")
        report["warm_p50_seconds"] = percentile(warm_latencies, 0.50)
        report["warm_tiers"] = warm_tiers

        cold_p50 = report["cold_p50_seconds"] or 0.0
        warm_p50 = report["warm_p50_seconds"] or float("inf")
        speedup = cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")
        report["warm_over_cold_speedup"] = (
            None if speedup == float("inf") else round(speedup, 2))
        if speedup < SPEEDUP_FLOOR:
            failures.append(
                f"warm p50 {warm_p50:.4f}s is only {speedup:.1f}x faster "
                f"than cold p50 {cold_p50:.4f}s (floor {SPEEDUP_FLOOR}x)")

        # -- analyze parity against fresh CLI runs ----------------------
        for name in PROGRAM_NAMES:
            if name not in served:
                continue
            fresh = _cli_analyze_digests(name)
            if served[name] != fresh:
                failures.append(f"analyze parity {name}: served digests "
                                f"!= fresh CLI digests")
        report["analyze_parity_programs"] = len(served)

        # -- check parity -----------------------------------------------
        check_served = {}
        for name in PROGRAM_NAMES:
            status, payload, _ = _request(
                addr, "POST", "/check",
                {"program": name, "flavors": list(CHECK_FLAVORS)})
            if status != 200:
                failures.append(f"check {name}: HTTP {status}")
                continue
            check_served[name] = _served_digests(payload)
        fresh_report = run_check_report(
            names=PROGRAM_NAMES, flavors=CHECK_FLAVORS, cache=False,
            digest_only=True)
        for outcome in fresh_report.outcomes:
            if outcome.error is not None:
                failures.append(f"fresh check {outcome.name}: "
                                f"{outcome.error.message}")
                continue
            if check_served.get(outcome.name) != outcome.digests:
                failures.append(f"check parity {outcome.name}: served "
                                f"digests != fresh CLI digests")
        report["check_parity_programs"] = len(check_served)

        # -- mixed sustained-load phase ---------------------------------
        bodies = []
        for i in range(MIXED_REQUESTS):
            name = PROGRAM_NAMES[i % len(PROGRAM_NAMES)]
            if i % 5 == 4:       # every 5th request is a cold source
                bodies.append(("/analyze", {"source": _synthetic(i)}))
            elif i % 3 == 2:
                bodies.append(("/check", {"program": name,
                                          "flavors": ["insensitive"]}))
            elif i % 7 == 6:
                bodies.append(("/query", {"program": name,
                                          "flavor": "insensitive"}))
            else:
                bodies.append(("/analyze", {"program": name}))

        def fire(spec):
            path, body = spec
            return _request(addr, "POST", path, body)

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as pool:
            mixed = list(pool.map(fire, bodies))
        mixed_wall = time.perf_counter() - started
        bad = [status for status, _, _ in mixed if status != 200]
        if bad:
            failures.append(f"mixed phase: {len(bad)} non-200 responses")
        report["mixed_requests"] = len(bodies)
        report["mixed_wall_seconds"] = round(mixed_wall, 4)
        report["mixed_throughput_rps"] = round(len(bodies) / mixed_wall, 2)
        report["mixed_p95_seconds"] = percentile(
            [s for _, _, s in mixed], 0.95)

        status, metrics, _ = _request(addr, "GET", "/metrics")
        if status == 200:
            report["daemon_metrics"] = metrics

    report["ok"] = not failures
    report["failures"] = failures
    for key in ("cold_p50_seconds", "warm_p50_seconds",
                "mixed_p95_seconds"):
        if report.get(key) is not None:
            report[key] = round(report[key], 6)
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"serve bench: cold p50 {report['cold_p50_seconds']}s, "
          f"warm p50 {report['warm_p50_seconds']}s "
          f"({report['warm_over_cold_speedup']}x, floor {SPEEDUP_FLOOR}x); "
          f"mixed {report['mixed_requests']} reqs at "
          f"{report['mixed_throughput_rps']} rps")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"serve smoke ok -> {OUTPUT.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
