"""Figure 6: context-sensitive pairs and the spurious fraction.

Regenerates the CS census, the percent-spurious column, and §4.3's
headline: the location inputs of indirect memory operations are
identical under both analyses for every benchmark.  The timed kernel
is the full context-sensitive analysis (including its internal CI
pass) of a mid-size program.
"""

from conftest import emit

from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.report import paper
from repro.report.experiments import fig6_rows
from repro.report.tables import render_table
from repro.suite.registry import load_program


def test_fig6_cs_pairs(runner, benchmark):
    program = load_program("part")

    def kernel():
        ci = analyze_insensitive(program)
        return analyze_sensitive(program, ci_result=ci)

    benchmark(kernel)

    headers, rows = fig6_rows(runner)
    merged_headers = headers[:-1] + ["paper % spurious",
                                     "indirect ops identical"]
    merged = []
    for row in rows:
        name = row[0]
        paper_pct = (paper.FIGURE6_TOTAL[-1] if name == "TOTAL"
                     else paper.FIGURE6[name][-1])
        merged.append(list(row[:-1]) + [paper_pct, row[-1]])
    emit(benchmark, "fig6",
         render_table(merged_headers, merged,
                      title="Figure 6: context-sensitive pairs and "
                            "spurious fraction (ours vs. paper %)"))

    # The headline result, program by program.
    for row in rows[:-1]:
        assert row[-1] is True, f"{row[0]}: CS changed an indirect op"
    # Overall spurious fraction small (paper: 2.0%).
    total_row = rows[-1]
    assert 0.0 <= total_row[-2] <= 6.0
    # Some programs do show spurious pairs (the effect is real, just
    # confined to outputs no mod/ref client reads).
    assert any(row[-2] > 0 for row in rows[:-1])
