"""§4.1/§4.2: the assumption-set explosion and what the prunings buy.

Section 4.1: strong updates force each surviving store pair to be
qualified per non-overwriting location — "a chain of such update nodes
quickly yields a large combinatorial explosion."  Section 4.2 prunes
with CI facts but "we were unable to measure the speedup due to these
optimizations because the unoptimized algorithm could only be applied
to very small examples."

This bench constructs exactly such chains and *does* measure it: the
unoptimized meet count grows combinatorially with chain length (toward
the paper's "as many as 100 times more meet operations") while the
optimized analysis stays within a small factor of CI — with identical
results.  The timed kernel is the optimized CS analysis on the longest
chain.
"""

import pytest
from conftest import emit

from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.report.tables import render_table
from repro.suite.adversarial import load_assumption_chain

LENGTHS = (2, 4, 6, 8)


def test_assumption_chain_explosion(benchmark):
    longest = load_assumption_chain(LENGTHS[-1])
    ci_longest = analyze_insensitive(longest)
    benchmark(lambda: analyze_sensitive(longest, ci_result=ci_longest))

    rows = []
    for length in LENGTHS:
        program = load_assumption_chain(length)
        ci = analyze_insensitive(program)
        fast = analyze_sensitive(program, ci_result=ci)
        slow = analyze_sensitive(program, ci_result=ci, optimize=False)
        # Equal answers, wildly different costs.
        outputs = set(fast.solution.outputs()) \
            | set(slow.solution.outputs())
        for output in outputs:
            assert fast.pairs(output) == slow.pairs(output)
        rows.append([
            length,
            ci.counters.meets,
            fast.counters.meets,
            fast.counters.meets / ci.counters.meets,
            slow.counters.meets,
            slow.counters.meets / ci.counters.meets,
            slow.extras["max_assumption_set_size"],
        ])
    emit(benchmark, "assumption-chains",
         render_table(
             ["chain length", "CI meets", "CS meets (opt)",
              "opt ratio", "CS meets (unopt)", "unopt ratio",
              "max assumption set"],
             rows,
             title="Sections 4.1/4.2: strong-update assumption chains "
                   "(equal precision, combinatorial unoptimized cost)"))

    # The explosion: unoptimized ratio grows superlinearly with chain
    # length, reaching the paper's reported order of magnitude.
    unopt_ratios = [row[5] for row in rows]
    assert unopt_ratios == sorted(unopt_ratios)
    assert unopt_ratios[-1] > 25.0
    # The prunings tame it completely.
    opt_ratios = [row[3] for row in rows]
    assert max(opt_ratios) < 3.0
    # Assumption sets grow linearly with the chain (one per update).
    assert rows[-1][6] >= LENGTHS[-1]
