"""§4.2/§4.3: the cost of context-sensitivity.

The paper: with the optimizations in place the CS algorithm "executes
only slightly more (10%) transfer functions ... but as many as 100
times more meet operations.  The net result is that the
context-sensitive algorithm is 2-3 orders of magnitude slower ... on
our larger test programs."  This bench times both analyses on every
suite program and regenerates the ratio table.  Absolute magnitudes
differ from the paper's Scheme implementation on 1995 hardware; the
reproducible shape is CS ≥ CI in transfers, meets, and wall-clock,
with the meet ratio the largest of the three.
"""

from conftest import emit

from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.report.experiments import perf_rows
from repro.report.tables import render_table
from repro.suite.registry import load_program


def test_perf_ci(runner, benchmark):
    """Timed: context-insensitive analysis over the whole suite."""
    programs = [runner.program(name) for name in runner.names]
    benchmark(lambda: [analyze_insensitive(p) for p in programs])


def test_perf_cs(runner, benchmark):
    """Timed: context-sensitive analysis over the whole suite (with
    the CI pass it depends on precomputed)."""
    pairs = [(runner.program(name), runner.ci(name))
             for name in runner.names]
    benchmark(lambda: [analyze_sensitive(p, ci_result=ci)
                       for p, ci in pairs])

    headers, rows = perf_rows(runner)
    emit(benchmark, "perf43",
         render_table(headers, rows,
                      title="Sections 4.2/4.3: cost of "
                            "context-sensitivity (ratios are CS/CI)"))

    total_ci_meets = sum(row[4] for row in rows)
    total_cs_meets = sum(row[5] for row in rows)
    # The shape: CS pays more meet operations overall ...
    assert total_cs_meets > total_ci_meets
    # ... while transfer counts stay the same order of magnitude.
    for row in rows:
        assert row[3] < 20.0, f"{row[0]}: transfer ratio exploded"
