"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures over the
suite and prints it next to the paper's published values (run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables; they are
also echoed into the benchmark "extra info" so ``--benchmark-json``
captures them).
"""

from __future__ import annotations

import pytest

from repro.report.experiments import SuiteRunner


@pytest.fixture(scope="session")
def runner() -> SuiteRunner:
    """One shared runner: programs lowered and analyzed once."""
    return SuiteRunner()


def emit(benchmark, title: str, text: str) -> None:
    """Print a regenerated table and stash it on the benchmark record."""
    print()
    print(text)
    if benchmark is not None:
        benchmark.extra_info[title] = text
