"""§3.1's complexity claim, measured.

"Termination is assured because the number of outputs and points-to
pairs are finite, yielding O(n³) time and space bounds in the worst
case (O(n²) in the average case, in which each pointer has only a
small constant number of referents)."

The copy-chain workload realizes the worst case: n pointer cells in a
chain, the first aiming at n targets, gives n² points-to pairs each
flowing through O(n) store nodes — Θ(n³) meet operations.  Holding the
referent count constant (the paper's average case) collapses growth to
the quadratic chain term.  Meet counters are deterministic, so the
assertions are exact trend checks rather than flaky timing bounds.
"""

import pytest
from conftest import emit

from repro.analysis.insensitive import analyze_insensitive
from repro.report.tables import render_table
from repro.suite.adversarial import load_copy_chain


def _meets(n_pointers: int, n_targets: int) -> int:
    program = load_copy_chain(n_pointers, n_targets)
    return analyze_insensitive(program).counters.meets


def test_scalability_worst_case(benchmark):
    program = load_copy_chain(32, 32)
    benchmark(lambda: analyze_insensitive(program))

    sizes = (8, 16, 32)
    worst = [_meets(n, n) for n in sizes]           # referents grow with n
    average = [_meets(n, 4) for n in sizes]         # constant referents
    rows = [[n, w, a] for n, w, a in zip(sizes, worst, average)]
    emit(benchmark, "scalability",
         render_table(["n (chain length)",
                       "meets, n referents (worst case)",
                       "meets, 4 referents (average case)"],
                      rows,
                      title="Section 3.1: O(n^3) worst / O(n^2) "
                            "average complexity (meet operations)"))

    # Worst case: doubling n multiplies meets by ~8 (cubic); require
    # clearly super-quadratic growth but within the cubic bound.
    ratio_worst = worst[2] / worst[1]
    assert 4.5 < ratio_worst <= 9.0, ratio_worst

    # Average case: constant referents keep growth at most quadratic.
    ratio_avg = average[2] / average[1]
    assert ratio_avg <= 4.5, ratio_avg

    # And the worst case costs strictly more than the average case.
    assert worst[2] > average[2] * 4
