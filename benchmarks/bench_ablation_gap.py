"""§5 ablation: constructed programs where context-sensitivity wins.

The paper concedes "it is easy to construct programs where
context-sensitivity provides an arbitrarily large benefit."  This
bench builds exactly such programs and shows the inverse result — CI
imprecision growing linearly in the number of call sites while CS
stays exact — demonstrating that the suite's equal-precision result is
a property of the programs, not a blindness of the harness.
"""

import pytest
from conftest import emit

from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.analysis.stats import indirect_op_stats
from repro.report.experiments import gap_rows
from repro.report.tables import render_table
from repro.suite.adversarial import load_cs_wins, load_deep_chain

SITES = (2, 4, 8, 16, 32)


def test_ablation_gap(benchmark):
    program = load_cs_wins(16)

    def kernel():
        ci = analyze_insensitive(program)
        return analyze_sensitive(program, ci_result=ci)

    benchmark(kernel)

    headers, rows = gap_rows(SITES)
    emit(benchmark, "gap",
         render_table(headers, rows,
                      title="Section 5 ablation: CI-vs-CS gap on "
                            "constructed programs"))

    # Linearity: the gap equals the call-site count, CS stays exact.
    for n, row in zip(SITES, rows):
        assert row[1] == pytest.approx(float(n))
        assert row[2] == pytest.approx(1.0)
        assert row[4] == pytest.approx(float(n))
    # Spurious pairs grow superlinearly in N (each of the N derefs
    # carries N-1 spurious referents).
    assert rows[-1][3] > rows[0][3] * 10


def test_ablation_chain_depth(benchmark):
    """Depth robustness: the CS separation survives arbitrarily long
    wrapper chains (the Cartesian propagate-return composes)."""
    depths = (1, 4, 8)
    rows = []
    program = load_deep_chain(8)

    def kernel():
        ci = analyze_insensitive(program)
        return analyze_sensitive(program, ci_result=ci)

    benchmark(kernel)

    for depth in depths:
        chain = load_deep_chain(depth)
        ci = analyze_insensitive(chain)
        cs = analyze_sensitive(chain, ci_result=ci)
        rows.append([depth,
                     indirect_op_stats(ci, "write").max_locations,
                     indirect_op_stats(cs, "write").max_locations,
                     cs.extras["max_assumption_set_size"]])
    emit(benchmark, "gap-depth",
         render_table(["chain depth", "CI max locs", "CS max locs",
                       "max assumption set"],
                      rows,
                      title="Section 5 ablation: wrapper-chain depth"))
    for row in rows:
        assert row[1] == 2 and row[2] == 1
