"""Figure 2: benchmark programs and their sizes.

Regenerates the (source lines, VDG nodes, alias-related outputs) table
for our suite and prints the paper's row alongside each of ours; the
timed kernel is the full frontend (preprocess → parse → lower →
simplify → validate) on the largest program.
"""

from conftest import emit

from repro.frontend.lower import lower_file
from repro.report import paper
from repro.report.experiments import fig2_rows
from repro.report.tables import render_table
from repro.suite.registry import program_path


def test_fig2_sizes(runner, benchmark):
    largest = program_path("assembler")
    benchmark(lambda: lower_file(largest))

    headers, rows = fig2_rows(runner)
    merged_headers = ["name", "lines", "paper lines", "VDG nodes",
                      "paper nodes", "alias-related outputs",
                      "paper outputs"]
    merged = []
    for name, lines, nodes, outputs in rows:
        p_lines, p_nodes, p_outputs = paper.FIGURE2[name]
        merged.append([name, lines, p_lines, nodes, p_nodes,
                       outputs, p_outputs])
    emit(benchmark, "fig2",
         render_table(merged_headers, merged,
                      title="Figure 2: benchmark programs and their "
                            "sizes (ours vs. paper)"))

    # Shape checks: every program lowers to a nontrivial graph whose
    # alias-related outputs are a strict subset of all outputs.
    for name, lines, nodes, outputs in rows:
        assert lines > 50
        assert nodes > 100
        assert 0 < outputs < nodes * 3
