"""Solver throughput and end-to-end sweep benchmark.

Measures, and records in ``BENCH_solver.json`` at the repo root:

* **Solver throughput** — the CI fixpoint over the adversarial
  copy-chain workload (solver-bound: quadratic pair sets flowing
  through a linear store chain), under both worklist schedules.
  Reported as wall-clock and facts/sec (transfers per second); the
  batched schedule's speedup over FIFO isolates the gain from
  batch-draining ports, delta-joins, and dispatch tables alone —
  everything else (program, interning state, process) is held fixed.
* **Suite sweep** — the full CI+CS analysis of all 13 suite programs,
  comparing the pre-batching configuration (cold lowering, FIFO
  schedule, one process) against the optimized path (persistent
  lowering cache warm, batched schedule, ``--jobs`` workers).

Run directly::

    python benchmarks/bench_solver_throughput.py            # full
    python benchmarks/bench_solver_throughput.py --smoke    # fast gate

The ``--smoke`` mode runs a reduced workload (seconds, not minutes)
and is wired into ``make bench-smoke`` / ``make test`` as a regression
gate: it still writes the JSON and still asserts both schedules reach
the same solution.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.insensitive import analyze_insensitive  # noqa: E402
from repro.frontend.cache import clear_cache, resolve_cache_dir  # noqa: E402
from repro.perf import PhaseTimer, best_of  # noqa: E402
from repro.runner import run_suite, run_suite_report  # noqa: E402
from repro.suite.adversarial import load_copy_chain  # noqa: E402
from repro.suite.registry import PROGRAM_NAMES  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_solver.json"


def bench_solver(width: int, length: int, repeats: int) -> dict:
    """CI fixpoint over copy_chain under both schedules."""
    program = load_copy_chain(width, length)
    report = {"workload": f"copy_chain({width}, {length})"}
    solutions = {}
    for schedule in ("batched", "fifo"):
        def run(schedule=schedule):
            return analyze_insensitive(program, schedule=schedule)
        seconds, result = best_of(run, repeats)
        solutions[schedule] = {
            output: frozenset(result.solution.pairs(output))
            for output in result.solution.outputs()}
        report[schedule] = {
            "seconds": round(seconds, 6),
            "transfers": result.counters.transfers,
            "facts_per_sec": round(result.counters.transfers / seconds),
        }
    assert solutions["batched"] == solutions["fifo"], \
        "schedules disagree on the copy-chain solution"
    report["batched_speedup_vs_fifo"] = round(
        report["fifo"]["seconds"] / report["batched"]["seconds"], 3)
    return report


def bench_sweep(names, jobs: int, repeats: int) -> dict:
    """Full CI+CS sweep: pre-batching configuration vs optimized."""
    cache_dir = resolve_cache_dir(True)

    def baseline():
        # The seed's behavior: lower every program from source, FIFO
        # worklist, one process, no persistence.
        return run_suite(names=names, jobs=1, schedule="fifo",
                         cache=False)

    def optimized():
        # The report path: same sweep, but shipping back the per-
        # (program, flavor) telemetry records the workers produced, so
        # BENCH_solver.json shares the --telemetry schema.
        return run_suite_report(names=names, jobs=jobs,
                                schedule="batched", cache=True,
                                fail_fast=True)

    optimized()  # warm the lowering cache (and allocator)
    base_seconds, _ = best_of(baseline, repeats)
    opt_seconds, report = best_of(optimized, repeats)
    results = report.results

    effective_jobs = max(1, min(jobs, len(names)))
    return {
        "programs": list(names),
        "flavors": ["insensitive", "sensitive"],
        "jobs_requested": jobs,
        "jobs_effective": effective_jobs,
        "cache_dir": str(cache_dir) if cache_dir else None,
        "baseline_cold_fifo_serial_seconds": round(base_seconds, 6),
        "optimized_warm_batched_parallel_seconds": round(opt_seconds, 6),
        "end_to_end_speedup": round(base_seconds / opt_seconds, 3),
        "ci_transfers_total": sum(
            by_flavor["insensitive"].counters.transfers
            for by_flavor in results.values()),
        # repro.telemetry records (schema v1), one per (program, flavor).
        "telemetry": report.records,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload for the CI gate")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the sweep (default: 4)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats (default: 3, smoke: 1)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"JSON report path (default: {OUTPUT})")
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.smoke else 3)
    if args.smoke:
        width, length = 24, 16
        names = ["anagram", "backprop", "span"]
    else:
        width, length = 60, 40
        names = list(PROGRAM_NAMES)

    timer = PhaseTimer()
    with timer.phase("solver"):
        solver = bench_solver(width, length, repeats)
    with timer.phase("sweep"):
        sweep = bench_sweep(names, args.jobs, repeats)

    report = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "smoke": args.smoke,
        "machine": {
            "cpus": os.cpu_count(),
            "python": ".".join(map(str, sys.version_info[:3])),
        },
        "bench_seconds": {k: round(v, 3)
                          for k, v in timer.as_dict().items()},
        "solver": solver,
        "sweep": sweep,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"solver: batched {solver['batched']['facts_per_sec']:,} "
          f"facts/s vs fifo {solver['fifo']['facts_per_sec']:,} facts/s "
          f"({solver['batched_speedup_vs_fifo']}x)")
    print(f"sweep: {sweep['baseline_cold_fifo_serial_seconds']:.3f}s "
          f"cold/fifo/serial -> "
          f"{sweep['optimized_warm_batched_parallel_seconds']:.3f}s "
          f"warm/batched/jobs={sweep['jobs_effective']} "
          f"({sweep['end_to_end_speedup']}x)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
