"""Solver throughput and end-to-end sweep benchmark.

Measures, and records in ``BENCH_solver.json`` at the repo root
(report ``schema`` 2):

* **Solver throughput** — the CI fixpoint over the adversarial
  copy-chain workload (solver-bound: quadratic pair sets flowing
  through a linear store chain), under every solver variant:
  ``batched`` and ``scc`` run the word-packed dense fact engine,
  ``scc-parallel`` additionally shards each topological level's
  independent SCCs across worker threads, and ``fifo`` is the
  object-at-a-time reference engine.  Reported per variant as
  wall-clock, facts/sec (transfers per second), a solution digest,
  and — for the dense variants — the representation counters
  (fact ids interned, packed words, kernel calls, decode calls, SCC
  count/levels/parallelism).
* **Suite sweep** — the full CI+CS analysis of the suite programs,
  comparing the pre-batching configuration (cold lowering, FIFO
  schedule, one process) against the optimized path (persistent
  lowering cache warm, batched dense engine, inline for tiny sweeps
  or ``--jobs`` workers for large ones).

Run directly::

    python benchmarks/bench_solver_throughput.py            # full
    python benchmarks/bench_solver_throughput.py --smoke    # fast gate

The ``--smoke`` mode runs a reduced workload (seconds, not minutes)
and is wired into ``make bench-smoke`` / ``make test`` as a regression
gate.  Both modes *fail* (nonzero exit) when the dense engine's
solution digest differs from any other variant's (including the
packed scc-parallel path), when a dense entry is missing the schema-2
representation counters, or when the warm optimized sweep fails to
beat the cold baseline (``end_to_end_speedup < 1.0``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.insensitive import analyze_insensitive  # noqa: E402
from repro.cpus import available_cpus  # noqa: E402
from repro.frontend.cache import resolve_cache_dir  # noqa: E402
from repro.fuzz.oracle import solution_digest  # noqa: E402
from repro.perf import PhaseTimer, best_of  # noqa: E402
from repro.runner import (  # noqa: E402
    INLINE_TASK_THRESHOLD, run_suite, run_suite_report,
)
from repro.suite.adversarial import load_copy_chain  # noqa: E402
from repro.suite.registry import PROGRAM_NAMES  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_solver.json"

#: Measurement order: dense variants first (batched is the reference
#: everything else is gated against), FIFO last as the slow baseline.
#: Each variant is (report key, schedule, parallel_scc).
VARIANTS = (
    ("batched", "batched", False),
    ("scc", "scc", False),
    ("scc-parallel", "scc", True),
    ("fifo", "fifo", False),
)

#: Representation counters every dense entry must carry (schema 2).
DENSE_COUNTERS = ("fact_ids", "bitset_words", "packed_words",
                  "kernel_calls", "decode_calls")


def bench_solver(width: int, length: int, repeats: int) -> dict:
    """CI fixpoint over copy_chain under all three schedules."""
    program = load_copy_chain(width, length)
    # Warm the per-program fact table (dense id interning) and the SCC
    # order cache so every schedule times the solver proper, not the
    # one-time first-touch interning of the shared program.
    analyze_insensitive(program, schedule="batched")
    analyze_insensitive(program, schedule="scc")
    report = {"workload": f"copy_chain({width}, {length})"}
    digests = {}
    for key, schedule, parallel_scc in VARIANTS:
        def run(schedule=schedule, parallel_scc=parallel_scc):
            return analyze_insensitive(program, schedule=schedule,
                                       parallel_scc=parallel_scc)
        # The FIFO reference is ~2 orders of magnitude slower per
        # repeat; a handful of runs pins it down, and spending the
        # full repeat budget there would dominate the bench's
        # wall-clock for no extra precision.
        runs = repeats if schedule != "fifo" else min(repeats, 5)
        seconds, result = best_of(run, runs)
        digests[key] = solution_digest(result)
        entry = {
            "seconds": round(seconds, 6),
            "transfers": result.counters.transfers,
            "facts_per_sec": round(result.counters.transfers / seconds),
            "digest": digests[key][:16],
        }
        dense = result.extras.get("dense")
        if dense is not None:
            entry["dense"] = dict(dense)
        report[key] = entry
    report["digests_identical"] = len(set(digests.values())) == 1
    for key in ("batched", "scc", "scc-parallel"):
        report[f"{key}_speedup_vs_fifo"] = round(
            report["fifo"]["seconds"] / report[key]["seconds"], 3)
    return report


def bench_sweep(names, jobs: int, repeats: int) -> dict:
    """Full CI+CS sweep: pre-batching configuration vs optimized."""
    cache_dir = resolve_cache_dir(True)
    # The runner honors explicit over-subscription (callers may want
    # process isolation), but for a throughput measurement extra
    # workers beyond the cores are pure fork/IPC overhead — on a
    # single-CPU container a forced 2-worker pool *loses* to serial.
    jobs_requested = jobs
    # available_cpus, not os.cpu_count: the machine count oversubscribes
    # inside affinity/cgroup-restricted containers.
    jobs = max(1, min(jobs, available_cpus()))

    def baseline():
        # The seed's behavior: lower every program from source, FIFO
        # worklist, one process, no persistence.
        return run_suite(names=names, jobs=1, schedule="fifo",
                         cache=False)

    def optimized():
        # The report path: same sweep, but shipping back the per-
        # (program, flavor) telemetry records the workers produced, so
        # BENCH_solver.json shares the --telemetry schema.  Sweeps of
        # <= INLINE_TASK_THRESHOLD programs run inline — executor
        # setup would otherwise dominate and *lose* to the baseline.
        return run_suite_report(names=names, jobs=jobs,
                                schedule="batched", cache=True,
                                fail_fast=True)

    optimized()  # warm the lowering cache (and allocator)
    base_seconds, _ = best_of(baseline, repeats)
    opt_seconds, report = best_of(optimized, repeats)
    results = report.results

    ran_inline = (jobs == 1
                  or len(names) <= INLINE_TASK_THRESHOLD)
    effective_jobs = 1 if ran_inline else max(1, min(jobs, len(names)))
    return {
        "programs": list(names),
        "flavors": ["insensitive", "sensitive"],
        "jobs_requested": jobs_requested,
        "jobs_effective": effective_jobs,
        "ran_inline": ran_inline,
        "cache_dir": str(cache_dir) if cache_dir else None,
        "baseline_cold_fifo_serial_seconds": round(base_seconds, 6),
        "optimized_warm_batched_parallel_seconds": round(opt_seconds, 6),
        "end_to_end_speedup": round(base_seconds / opt_seconds, 3),
        "ci_transfers_total": sum(
            by_flavor["insensitive"].counters.transfers
            for by_flavor in results.values()),
        # repro.telemetry records (schema v1), one per (program, flavor).
        "telemetry": report.records,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload for the CI gate")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the sweep (default: 4)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats (default: 3, smoke: 1)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"JSON report path (default: {OUTPUT})")
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.smoke else 3)
    if args.smoke:
        width, length = 24, 16
        names = ["anagram", "backprop", "span"]
    else:
        width, length = 60, 40
        names = list(PROGRAM_NAMES)

    timer = PhaseTimer()
    with timer.phase("solver"):
        solver = bench_solver(width, length, repeats)
    with timer.phase("sweep"):
        # The sweep times second-scale end-to-end runs against a
        # coarse >= 1x gate; the solver's high repeat counts (hunting
        # best-case millisecond slices) would multiply its wall-clock
        # for no extra signal.
        sweep = bench_sweep(names, args.jobs, min(repeats, 10))

    report = {
        "schema": 2,
        "generated_unix": int(time.time()),
        "smoke": args.smoke,
        "machine": {
            "cpus": os.cpu_count(),
            "cpus_available": available_cpus(),
            "python": ".".join(map(str, sys.version_info[:3])),
        },
        "bench_seconds": {k: round(v, 3)
                          for k, v in timer.as_dict().items()},
        "solver": solver,
        "sweep": sweep,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for key, _, _ in VARIANTS:
        entry = solver[key]
        print(f"solver[{key}]: {entry['seconds']:.6f}s, "
              f"{entry['facts_per_sec']:,} facts/s")
    print(f"solver: batched {solver['batched_speedup_vs_fifo']}x, "
          f"scc {solver['scc_speedup_vs_fifo']}x, scc-parallel "
          f"{solver['scc-parallel_speedup_vs_fifo']}x vs fifo")
    print(f"sweep: {sweep['baseline_cold_fifo_serial_seconds']:.3f}s "
          f"cold/fifo/serial -> "
          f"{sweep['optimized_warm_batched_parallel_seconds']:.3f}s "
          f"warm/batched/"
          f"{'inline' if sweep['ran_inline'] else 'jobs=' + str(sweep['jobs_effective'])} "
          f"({sweep['end_to_end_speedup']}x)")
    print(f"wrote {args.output}")

    failures = []
    if not solver["digests_identical"]:
        short = {key: solver[key]["digest"] for key, _, _ in VARIANTS}
        failures.append(
            f"dense solution digest differs across variants: {short}")
    for key in ("batched", "scc", "scc-parallel"):
        dense = solver[key].get("dense", {})
        missing = [c for c in DENSE_COUNTERS if c not in dense]
        if missing:
            failures.append(
                f"solver[{key}] is missing schema-2 dense counters: "
                f"{missing}")
    for key in ("scc", "scc-parallel"):
        dense = solver[key].get("dense", {})
        missing = [c for c in ("scc_levels", "scc_parallelism")
                   if c not in dense]
        if missing:
            failures.append(
                f"solver[{key}] is missing SCC-level counters: {missing}")
    if sweep["end_to_end_speedup"] < 1.0:
        failures.append(
            "optimized warm sweep is slower than the cold baseline "
            f"(speedup {sweep['end_to_end_speedup']})")
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
