"""§2/§5.1.1: sparsity of the VDG representation.

The paper: the analyses "apply equally well to control-flow graph
representations; they merely run faster on the VDG because it is more
sparse [Ruf95]", and the SSA-like transformation that "removes
non-addressed variables from the store" is one of the design choices
behind the small spurious-pair counts (§5.1.1).

``sparse=False`` lowering forces every local into the store (the
CFG-style representation); this bench measures the cost and checks
that both representations give the same answers at the operations the
sparse form keeps indirect.
"""

from conftest import emit

from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.stats import indirect_operations
from repro.frontend.lower import lower_file
from repro.report.tables import render_table
from repro.suite.registry import PROGRAM_NAMES, program_path

NAMES = PROGRAM_NAMES


def _op_views(program, result):
    """(origin, kind) -> union of location names for indirect ops.

    One source position can host several ops (and lowering modes split
    them differently), so the comparable view is the union of what the
    position may touch.
    """
    views = {}
    for node in indirect_operations(program):
        key = (node.origin, node.kind)
        names = {repr(p) for p in result.op_locations(node)}
        views.setdefault(key, set()).update(names)
    return views


def test_sparse_vs_dense(benchmark):
    dense_program = lower_file(program_path("assembler"), sparse=False)
    benchmark(lambda: analyze_insensitive(dense_program))

    rows = []
    totals = {"sparse": [0, 0, 0], "dense": [0, 0, 0]}
    for name in NAMES:
        measurements = {}
        for mode, sparse in (("sparse", True), ("dense", False)):
            program = lower_file(program_path(name), sparse=sparse)
            result = analyze_insensitive(program)
            measurements[mode] = (program, result)
            bucket = totals[mode]
            bucket[0] += program.node_count()
            bucket[1] += result.solution.total_pairs()
            bucket[2] += result.counters.meets
        sp, sr = measurements["sparse"]
        dp, dr = measurements["dense"]
        rows.append([name, sp.node_count(), dp.node_count(),
                     sr.solution.total_pairs(),
                     dr.solution.total_pairs(),
                     sr.counters.meets, dr.counters.meets])

        # Semantic agreement: everything an indirect op may touch in
        # the sparse form, the dense form's ops at the same source
        # position may touch too (dense additionally sees the
        # store-resident locals themselves, so containment — not
        # equality — is the invariant).
        sparse_views = _op_views(sp, sr)
        dense_views = _op_views(dp, dr)
        for key, names in sparse_views.items():
            assert key in dense_views, key
            assert names <= dense_views[key], key

    rows.append(["TOTAL",
                 totals["sparse"][0], totals["dense"][0],
                 totals["sparse"][1], totals["dense"][1],
                 totals["sparse"][2], totals["dense"][2]])
    emit(benchmark, "sparse-vs-dense",
         render_table(
             ["name", "nodes (VDG)", "nodes (dense)",
              "pairs (VDG)", "pairs (dense)",
              "meets (VDG)", "meets (dense)"],
             rows,
             title="Section 2/5.1.1: sparse VDG vs dense (CFG-style) "
                   "representation"))

    # The sparsity claim: the dense representation costs strictly more
    # on every axis, by an integer-ish factor overall.
    total = rows[-1]
    assert total[2] > total[1]            # more nodes
    assert total[4] > 2 * total[3]        # several times more pairs
    assert total[6] > 2 * total[5]        # several times more meets
