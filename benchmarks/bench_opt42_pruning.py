"""§4.2: how widely the CI-based pruning optimizations apply.

The paper: assumptions about locations are unnecessary at 87% of the
indirect reads and writes (CI proves them single-target), and once
only pointer/function-moving operations are considered, just 9% of
reads and 7% of writes must introduce assumptions.  The timed kernel
is the coverage computation plus the optimized-vs-unoptimized CS runs
it licenses on a small program.
"""

from conftest import emit

from repro.analysis.sensitive import analyze_sensitive
from repro.analysis.stats import pruning_coverage
from repro.report import paper
from repro.report.experiments import opt42_rows
from repro.report.tables import render_table
from repro.suite.registry import PROGRAM_NAMES, load_program


def test_opt42_pruning(runner, benchmark):
    results = [runner.ci(name) for name in PROGRAM_NAMES]
    benchmark(lambda: [pruning_coverage(result) for result in results])

    headers, rows = opt42_rows(runner)
    emit(benchmark, "opt42",
         render_table(headers, rows,
                      title="Section 4.2: CI-based pruning coverage "
                            f"(paper: {100 * paper.TEXT_CLAIMS['single_location_fraction']:.0f}% "
                            f"single-location; "
                            f"{100 * paper.TEXT_CLAIMS['reads_needing_assumptions']:.0f}% reads / "
                            f"{100 * paper.TEXT_CLAIMS['writes_needing_assumptions']:.0f}% writes "
                            f"need assumptions)"))

    total = rows[-1]
    # Shape: the optimization applies to the large majority of ops ...
    assert total[3] >= 60.0
    # ... and only a small minority of ops must introduce assumptions.
    assert total[4] <= 25.0
    assert total[5] <= 25.0


def test_opt42_optimization_effect(runner, benchmark):
    """The prunings licensed by the coverage must pay off: fewer meet
    operations for an identical stripped solution."""
    program = load_program("part")
    ci = runner.ci("part")
    # A fresh program object is required for a fair run; reuse the
    # runner's cached one for the baseline comparison instead.
    fast = analyze_sensitive(runner.program("part"), ci_result=ci,
                             optimize=True)
    slow = analyze_sensitive(runner.program("part"), ci_result=ci,
                             optimize=False)
    benchmark(lambda: analyze_sensitive(runner.program("part"),
                                        ci_result=ci, optimize=True))
    assert fast.counters.meets <= slow.counters.meets
    outputs = set(fast.solution.outputs()) | set(slow.solution.outputs())
    for output in outputs:
        assert fast.pairs(output) == slow.pairs(output)
    emit(None, "opt42-effect",
         render_table(
             ["variant", "transfers", "meets", "qualified pairs"],
             [["optimized", fast.counters.transfers,
               fast.counters.meets, fast.extras["qualified_pair_count"]],
              ["unoptimized", slow.counters.transfers,
               slow.counters.meets, slow.extras["qualified_pair_count"]]],
             title="Section 4.2: effect of the CI-based prunings "
                   "(part benchmark)"))
