"""Edit-one-function replay gate for the incremental summary layer.

For each of three suite programs, this smoke runs the full
cold → replay → edit → partial cycle through
:func:`repro.analysis.incremental.analyze_incremental` against a
throwaway summary store and *fails* (nonzero exit) unless:

* the **cold** run's digests equal independent whole-program solves
  for every flavor (CI, CS, FI);
* the **replay** run (unchanged source, warm store) reproduces those
  digests with ``sccs_resolved = 0`` — nothing re-solved;
* after a same-line edit to one function, the **partial** run's CI
  re-solves strictly fewer SCCs than the program has
  (``0 < sccs_resolved < summary_scc_total``) and every flavor's
  digest equals a cold solve of the edited source.

The edits are same-line for historical reasons: summary keys v1
folded absolute source positions into body hashes, so a line-shifting
edit re-keyed every function below it.  Keys v2 hash modulo source
coordinates (see ``tests/analysis/test_incremental_insert.py`` for
the insert-one-line proof), so same-line is no longer load-bearing —
the strictly-fewer-SCCs gate below holds for shifting edits too.

Run directly (wired into ``make incremental-smoke``)::

    python benchmarks/incremental_smoke.py

Writes ``BENCH_incremental.json`` at the repo root.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.flowinsensitive import analyze_flowinsensitive  # noqa: E402
from repro.analysis.incremental import analyze_incremental  # noqa: E402
from repro.analysis.insensitive import analyze_insensitive  # noqa: E402
from repro.analysis.sensitive import analyze_sensitive  # noqa: E402
from repro.frontend.lower import lower_source  # noqa: E402
from repro.fuzz.oracle import solution_digest  # noqa: E402
from repro.suite.registry import source_text  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_incremental.json"

#: program → unique same-line edit inside ``main`` (the dirty cone is
#: then exactly main's SCC, leaving every callee summary reusable).
EDITS = {
    "allroots": ("return total == 8 ? 0 : 1;",
                 "return total == 8 ? 0 : 2;"),
    "anagram": ("groups = groups + 1;",
                "groups = 1 + groups;"),
    "part": ("step(&left_cell, &right_cell, 0.25);",
             "step(&left_cell, &right_cell, 0.125);"),
}


def whole_program_digests(program):
    ci = analyze_insensitive(program)
    cs = analyze_sensitive(program, ci_result=ci)
    fi = analyze_flowinsensitive(program)
    return {"insensitive": solution_digest(ci),
            "sensitive": solution_digest(cs),
            "flowinsensitive": solution_digest(fi)}


def digests(results):
    return {flavor: solution_digest(result)
            for flavor, result in results.items()}


def dense(results, flavor):
    return results[flavor].extras["dense"]


def run_cycle(name: str, failures: list) -> dict:
    source = source_text(name)
    old, new = EDITS[name]
    if source.count(old) != 1:
        failures.append(f"{name}: edit anchor {old!r} not unique")
        return {}
    edited_source = source.replace(old, new)

    def gate(label: str, ok: bool, detail: str = "") -> None:
        if not ok:
            failures.append(f"{name}: {label} {detail}".rstrip())

    entry: dict = {"program": name}
    with tempfile.TemporaryDirectory(prefix="repro-inc-smoke-") as cache:
        program = lower_source(source, name=name)
        baseline = whole_program_digests(program)

        started = time.perf_counter()
        cold = analyze_incremental(program, cache=cache)
        entry["cold_seconds"] = round(time.perf_counter() - started, 4)
        total = dense(cold, "insensitive")["summary_scc_total"]
        entry["scc_total"] = total
        gate("cold digests", digests(cold) == baseline)

        started = time.perf_counter()
        replay = analyze_incremental(lower_source(source, name=name),
                                     cache=cache)
        entry["replay_seconds"] = round(time.perf_counter() - started, 4)
        gate("replay digests", digests(replay) == baseline)
        for flavor in replay:
            gate(f"replay resolved ({flavor})",
                 dense(replay, flavor)["sccs_resolved"] == 0,
                 f"= {dense(replay, flavor)['sccs_resolved']}")

        edited = lower_source(edited_source, name=name)
        edited_baseline = whole_program_digests(edited)
        started = time.perf_counter()
        partial = analyze_incremental(edited, cache=cache)
        entry["partial_seconds"] = round(time.perf_counter() - started, 4)
        gate("partial digests", digests(partial) == edited_baseline)
        resolved = dense(partial, "insensitive")["sccs_resolved"]
        entry["sccs_resolved_after_edit"] = resolved
        gate("edit re-solves something", resolved > 0)
        gate("edit re-solves strictly fewer SCCs than total",
             resolved < total, f"resolved={resolved} total={total}")
    return entry


def main() -> int:
    failures: list = []
    report = {"schema": 1, "kind": "incremental-smoke",
              "programs": [run_cycle(name, failures)
                           for name in sorted(EDITS)]}
    report["ok"] = not failures
    report["failures"] = failures
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for entry in report["programs"]:
        if entry:
            print(f"{entry['program']}: cold {entry['cold_seconds']}s, "
                  f"replay {entry['replay_seconds']}s, partial "
                  f"{entry['partial_seconds']}s "
                  f"({entry['sccs_resolved_after_edit']}/"
                  f"{entry['scc_total']} SCCs after edit)")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"incremental smoke ok -> {OUTPUT.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
