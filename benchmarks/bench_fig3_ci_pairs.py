"""Figure 3: total points-to pairs computed context-insensitively.

Regenerates the pair census by output type and checks the qualitative
column structure the paper reports (store pairs dominate; function
pairs are rare; no scalar output ever carries a pair).  The timed
kernel is the context-insensitive analysis of the largest program.
"""

from conftest import emit

from repro.analysis.insensitive import analyze_insensitive
from repro.report import paper
from repro.report.experiments import fig3_rows
from repro.report.tables import render_table
from repro.suite.registry import load_program


def test_fig3_ci_pairs(runner, benchmark):
    program = load_program("assembler")
    benchmark(lambda: analyze_insensitive(program))

    headers, rows = fig3_rows(runner)
    merged_headers = headers[:-1] + ["total", "paper total"]
    merged = []
    for row in rows:
        name = row[0]
        paper_total = (paper.FIGURE3_TOTAL[-1] if name == "TOTAL"
                       else paper.FIGURE3[name][-1])
        merged.append(list(row) + [paper_total])
    emit(benchmark, "fig3",
         render_table(merged_headers, merged,
                      title="Figure 3: context-insensitive points-to "
                            "pairs by output type (ours vs. paper "
                            "total)"))

    total_row = rows[-1]
    pointer, function, aggregate, store, total = total_row[1:6]
    # Shape: store pairs dominate the census (paper: 98% store).
    assert store > pointer + function + aggregate
    # Function pairs exist (simulator's dispatch table) but are rare.
    assert 0 < function < pointer
    assert total == pointer + function + aggregate + store
