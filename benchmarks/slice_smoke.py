"""Determinism + soundness gate for dependence-graph slicing.

For three suite programs this smoke computes one backward slice per
program through :func:`repro.runner.run_slice_report` under every
combination that has ever produced nondeterminism elsewhere in the
codebase — batched/FIFO/SCC schedules, inline vs process-pool
(``jobs=2, force_pool``), lowering-cache cold vs warm — and *fails*
(nonzero exit) unless:

* every configuration reproduces the baseline's slice digest AND the
  full dependence-graph digest, byte for byte;
* one generated fuzz program passes the slice-soundness oracle leg
  (every concrete def→use flow covered by a ``mem`` edge) with at
  least one flow actually checked.

The slice criteria are discovered, not hard-coded: each program
slices from the source line of its first lookup node, so suite edits
cannot silently turn the gate into a no-op.

Run directly (wired into ``make slice-smoke``)::

    python benchmarks/slice_smoke.py

Writes ``BENCH_slice.json`` at the repo root.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.depgraph import build_depgraph  # noqa: E402
from repro.analysis.insensitive import analyze_insensitive  # noqa: E402
from repro.fuzz.generator import generate_program  # noqa: E402
from repro.fuzz.oracle import check_program  # noqa: E402
from repro.runner import run_slice_report  # noqa: E402
from repro.suite.registry import load_program  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_slice.json"

PROGRAMS = ("part", "lex315", "loader")

#: (label, run_slice_report overrides) — the baseline first.
CONFIGS = (
    ("batched", {}),
    ("fifo", {"schedule": "fifo"}),
    ("scc", {"schedule": "scc"}),
    ("jobs2", {"jobs": 2, "force_pool": True}),
    ("nocache", {"cache": False}),
)

FUZZ_SEED = 0


def discover_criterion(name: str) -> str:
    """file:line of the program's first lookup node (sorted order)."""
    graph = build_depgraph(analyze_insensitive(
        load_program(name, cache=False)))
    origins = sorted(origin for _, (_, kind, origin) in
                     sorted(graph.nodes.items())
                     if kind == "lookup" and origin)
    if not origins:
        raise SystemExit(f"{name}: no lookup nodes to slice from")
    path, _, line = origins[0].rpartition(":")
    return f"{Path(path).name}:{line}"


def slice_digests(name: str, criterion: str, **overrides):
    defaults = dict(names=[name], criterion=criterion,
                    jobs=1, schedule="batched", cache=True)
    defaults.update(overrides)
    report = run_slice_report(**defaults)
    if not report.ok:
        for outcome in report.outcomes:
            if not outcome.ok:
                print(f"FAIL {name}: {outcome.error}", file=sys.stderr)
        raise SystemExit(1)
    (outcome,) = report.outcomes
    payload = outcome.payload
    return {"slice": payload["slice"]["digest"],
            "graph": payload["graph"]["digest"],
            "size": payload["slice"]["size"]}


def main() -> int:
    started = time.perf_counter()
    failures = []
    doc = {"programs": {}, "fuzz": {}}

    for name in PROGRAMS:
        criterion = discover_criterion(name)
        entry = {"criterion": criterion, "configs": {}}
        baseline = None
        for label, overrides in CONFIGS:
            digests = slice_digests(name, criterion, **overrides)
            entry["configs"][label] = digests
            if baseline is None:
                baseline = digests
                continue
            for what in ("slice", "graph"):
                if digests[what] != baseline[what]:
                    failures.append(
                        f"{name}: {what} digest under {label} "
                        f"({digests[what][:12]}) differs from batched "
                        f"({baseline[what][:12]})")
        entry["size"] = baseline["size"]
        doc["programs"][name] = entry
        print(f"{name}: slice of {criterion} — {baseline['size']} "
              f"nodes, {len(CONFIGS)} configs agree "
              f"({baseline['slice'][:12]})")

    program = generate_program(FUZZ_SEED)
    check = check_program(program.source, name=program.name,
                          fixpoint=False, checkers=False)
    flows = check.stats.get("slice_flows_checked", 0)
    doc["fuzz"] = {"seed": FUZZ_SEED, "name": program.name,
                   "ok": check.ok, "flows_checked": flows,
                   "violations": [str(v) for v in check.violations]}
    if not check.ok:
        failures.append(
            f"fuzz seed {FUZZ_SEED}: {len(check.violations)} oracle "
            f"violation(s): {check.violations[0]}")
    elif flows == 0:
        failures.append(
            f"fuzz seed {FUZZ_SEED}: slice oracle checked zero flows "
            f"(tooth lost)")
    else:
        print(f"fuzz seed {FUZZ_SEED}: {flows} concrete def→use "
              f"flow(s) covered by dependence edges")

    doc["elapsed_seconds"] = round(time.perf_counter() - started, 3)
    doc["ok"] = not failures
    OUTPUT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT.name} in {doc['elapsed_seconds']}s")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
