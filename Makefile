# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke fuzz-smoke check-smoke incremental-smoke serve-smoke slice-smoke tables examples verify-suite clean

install:
	$(PYTHON) setup.py develop

test: bench-smoke fuzz-smoke check-smoke incremental-smoke serve-smoke slice-smoke
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Fast solver-throughput gate: reduced workload, two workers, asserts
# schedule equivalence and emits BENCH_solver.json at the repo root.
bench-smoke:
	$(PYTHON) benchmarks/bench_solver_throughput.py --smoke --jobs 2
	@test -s BENCH_solver.json || (echo "BENCH_solver.json missing" && exit 1)

# Differential-fuzzing gate: every generated program must satisfy
# concrete ⊆ CS ⊆ CI ⊆ FI plus the determinism and fixpoint oracles.
fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed 0 --count 50 --deep-every 25 --fail-fast

# Incremental-summary gate: cold → replay → edit-one-function on three
# suite programs; fails unless replays are digest-identical with zero
# SCCs re-solved and an edit re-solves strictly fewer SCCs than total.
incremental-smoke:
	$(PYTHON) benchmarks/incremental_smoke.py
	@test -s BENCH_incremental.json || (echo "BENCH_incremental.json missing" && exit 1)

# Analysis-daemon gate: start a real `repro serve` on an ephemeral
# port, fire 50+ mixed warm/cold analyze/check/query requests, and
# fail unless warm p50 beats cold p50 by ≥5x AND every served digest
# is byte-identical to a fresh CLI run (all three flavors).  Writes
# BENCH_serve.json at the repo root.
serve-smoke:
	$(PYTHON) benchmarks/bench_serve.py
	@test -s BENCH_serve.json || (echo "BENCH_serve.json missing" && exit 1)

# Slicing gate: backward slices on three suite programs must be
# digest-identical across schedules, process pools, and cache states,
# and one generated fuzz program must pass the slice-soundness oracle
# (concrete def→use flows ⊆ dependence mem edges).
slice-smoke:
	$(PYTHON) benchmarks/slice_smoke.py
	@test -s BENCH_slice.json || (echo "BENCH_slice.json missing" && exit 1)

# Checker gate: run all five bug finders over the suite under every
# flavor and emit a SARIF log; the golden counts live in
# tests/analysis/checkers/test_suite_goldens.py.
check-smoke:
	PYTHONPATH=src $(PYTHON) -m repro check --flavor all --format sarif > suite-findings.sarif
	@test -s suite-findings.sarif || (echo "suite-findings.sarif missing" && exit 1)

tables:
	$(PYTHON) examples/regenerate_paper_tables.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/modref_report.py
	$(PYTHON) examples/context_gap.py
	$(PYTHON) examples/strong_updates.py

# Compile and run the benchmark suite with the host C compiler (the
# suite must be real, working C; needs cc/gcc).
verify-suite:
	$(PYTHON) -m pytest tests/suite/test_compile_run.py -v

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
