# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench tables examples verify-suite clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

tables:
	$(PYTHON) examples/regenerate_paper_tables.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/modref_report.py
	$(PYTHON) examples/context_gap.py
	$(PYTHON) examples/strong_updates.py

# Compile and run the benchmark suite with the host C compiler (the
# suite must be real, working C; needs cc/gcc).
verify-suite:
	$(PYTHON) -m pytest tests/suite/test_compile_run.py -v

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
