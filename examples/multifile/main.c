/* Driver translation unit: builds a table through the interface in
 * symtab.h and sums the values back out.  Note the file-local
 * 'static' helper deliberately named like nothing in symtab.c. */

#include "symtab.h"

extern int printf(const char *fmt, ...);

static char *words[] = { "alpha", "beta", "gamma", "alpha" };

static int score_of(const char *word)
{
    int score = 0;
    while (*word) {
        score = score + *word;
        word++;
    }
    return score;
}

int main(void)
{
    unsigned long i;
    int total = 0;

    table_reset();
    for (i = 0; i < sizeof(words) / sizeof(words[0]); i++)
        table_insert(words[i], score_of(words[i]));

    for (i = 0; i < sizeof(words) / sizeof(words[0]); i++) {
        struct entry *e = table_find(words[i]);
        if (e)
            total = total + e->value;
    }
    printf("%d symbols, total score %d\n", table_size(), total);
    return 0;
}
