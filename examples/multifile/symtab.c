/* Symbol-table implementation: heap entries chained into file-local
 * (static) buckets — storage invisible outside this translation
 * unit. */

#include "symtab.h"

extern void *malloc(unsigned long n);
extern int strcmp(const char *a, const char *b);
extern char *strcpy(char *dst, const char *src);

#define NBUCKETS 8

static struct entry *buckets[NBUCKETS];
static int population;

static int hash_of(const char *name)
{
    int h = 0;
    while (*name) {
        h = (h * 31 + *name) & (NBUCKETS - 1);
        name++;
    }
    return h;
}

void table_reset(void)
{
    int i;
    for (i = 0; i < NBUCKETS; i++)
        buckets[i] = 0;
    population = 0;
}

struct entry *table_find(const char *name)
{
    struct entry *e;
    for (e = buckets[hash_of(name)]; e; e = e->next)
        if (strcmp(e->name, name) == 0)
            return e;
    return 0;
}

struct entry *table_insert(const char *name, int value)
{
    struct entry *e = table_find(name);
    if (!e) {
        int h = hash_of(name);
        e = malloc(sizeof(struct entry));
        strcpy(e->name, name);
        e->next = buckets[h];
        buckets[h] = e;
        population = population + 1;
    }
    e->value = value;
    return e;
}

int table_size(void)
{
    return population;
}
