/* A chained-hash symbol table: the interface shared by the two
 * translation units of the multifile example. */

#ifndef SYMTAB_H
#define SYMTAB_H

struct entry {
    char name[16];
    int value;
    struct entry *next;
};

void table_reset(void);
struct entry *table_insert(const char *name, int value);
struct entry *table_find(const char *name);
int table_size(void);

#endif
