#!/usr/bin/env python3
"""Mod/ref summaries for a benchmark program.

The application the paper's Figure 4 serves: "such applications are
concerned only with the memory locations referenced by each memory
read or write" (§3.2).  This example builds transitive per-procedure
mod/ref sets for the `part` benchmark and answers the questions a
compiler would ask before reordering code around a call.

Run:  python examples/modref_report.py [program-name]
"""

import sys

import repro
from repro.analysis.clients.modref import modref
from repro.memory import location_path
from repro.suite.registry import PROGRAM_NAMES, load_program


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "part"
    if name not in PROGRAM_NAMES:
        raise SystemExit(f"unknown program {name!r}; "
                         f"pick one of {', '.join(PROGRAM_NAMES)}")
    program = load_program(name)
    result = repro.analyze(program)
    info = modref(result)

    print(f"mod/ref summaries for {name} "
          f"(transitive over the call graph):\n")
    for function in sorted(program.functions):
        mods = sorted(repr(p) for p in info.mod_set(function))
        refs = sorted(repr(p) for p in info.ref_set(function))
        print(f"{function}:")
        print(f"  may modify:    {', '.join(mods) or '(nothing)'}")
        print(f"  may reference: {', '.join(refs) or '(nothing)'}")

    # A concrete compiler question: which globals are safe to cache in
    # a register across a call to each procedure?
    globals_ = [loc for loc in program.locations
                if loc.report_category == "global"
                and not loc.name.startswith("<")]
    if globals_:
        print("\nglobals safe to cache across each call "
              "(not in the callee's mod set):")
        for function in sorted(program.functions):
            safe = [loc.name for loc in globals_
                    if not info.may_mod(function, location_path(loc))]
            print(f"  {function}: {', '.join(sorted(safe)) or '(none)'}")


if __name__ == "__main__":
    main()
