#!/usr/bin/env python3
"""Analyze a multi-file C program.

``repro.parse_files`` links translation units the way a C linker does:
external-linkage globals share storage by name, calls resolve to
definitions in other files, ``static`` names stay file-local, and
recursion detection runs over the merged call graph.  The example
program is a symbol table (symtab.c) driven from main.c through a
shared header.

Run:  python examples/link_and_analyze.py
"""

from pathlib import Path

import repro
from repro.analysis.compare import compare_results
from repro.ir.nodes import LookupNode, UpdateNode

HERE = Path(__file__).parent / "multifile"


def main() -> None:
    program = repro.parse_files(
        [HERE / "main.c", HERE / "symtab.c"], name="symtab-demo")
    print(f"linked {program.name}: "
          f"{', '.join(sorted(program.functions))}\n")

    ci = repro.analyze(program)
    cs = repro.analyze(program, sensitivity="sensitive")

    print("cross-file indirect memory operations:")
    for name, graph in sorted(program.functions.items()):
        for node in graph.memory_operations():
            if not node.is_indirect:
                continue
            kind = "read " if isinstance(node, LookupNode) else "write"
            locations = sorted(repr(p) for p in ci.op_locations(node))
            print(f"  {name:14s} {kind} "
                  f"{(node.origin or '?').rsplit('/', 1)[-1]}: "
                  f"{{{', '.join(locations)}}}")

    report = compare_results(ci, cs)
    print(f"\nCI pairs {report.total_insensitive}, "
          f"CS pairs {report.total_sensitive} "
          f"({report.percent_spurious:.1f}% spurious); "
          f"indirect ops identical: {report.indirect_ops_identical}")


if __name__ == "__main__":
    main()
