#!/usr/bin/env python3
"""Strong vs. weak updates, and the def/use chains they enable.

The analysis strongly updates paths whose base-location denotes a
single runtime cell and whose operators contain no array access
(paper §2, following CWZ90): the old contents are *killed*.  Heap
locations, array elements, and locals of recursive procedures are only
weakly updated: old contents survive.  This example shows the
difference and how the def/use client exploits kills.

Run:  python examples/strong_updates.py
"""

import repro
from repro.analysis.clients.defuse import defuse
from repro.ir.nodes import LookupNode, UpdateNode

SOURCE = """
extern void *malloc(unsigned long n);

int a, b, c;
int *strong_cell;          /* a single global cell: strong updates  */
int *weak_array[4];        /* array elements: summarized, weak      */

int main(void) {
    int **heap_cell = malloc(sizeof(int *));

    strong_cell = &a;
    strong_cell = &b;      /* kills &a */

    weak_array[0] = &a;
    weak_array[1] = &b;    /* accumulates: same summary location */

    *heap_cell = &a;
    *heap_cell = &c;       /* heap: weak, accumulates */

    return *strong_cell + *weak_array[2] + **heap_cell;
}
"""


def describe(result, program) -> None:
    reads = [n for g in program.functions.values() for n in g.nodes
             if isinstance(n, LookupNode) and n.is_indirect]
    for read in reads:
        targets = sorted(repr(p) for p in result.op_locations(read))
        print(f"  read at {read.origin}: {{{', '.join(targets)}}}")


def main() -> None:
    program = repro.parse_source(SOURCE, name="strong_updates.c")
    result = repro.analyze(program)

    print("what each final dereference may read:")
    describe(result, program)
    print()
    print("-> *strong_cell sees only b (the write of &a was killed);")
    print("   the array and heap dereferences accumulate both values.\n")

    # Def/use: the strong update's kill makes the first write to
    # strong_cell a dead store — no read anywhere observes it.
    du = defuse(result)
    graph = program.functions["main"]
    writes = [n for n in graph.nodes if isinstance(n, UpdateNode)]
    print("uses of each write (the def/use client):")
    for write in writes:
        targets = sorted(repr(p) for p in result.op_locations(write))
        uses = du.uses_of(write)
        shown = sorted(u.origin or "?" for u in uses)
        print(f"  write to {{{', '.join(targets)}}} at {write.origin}: "
              f"used by {', '.join(shown) or 'NOTHING (dead store)'}")
    print()
    print("-> the first write to strong_cell is observed by no read "
          "(killed);\n   a dead-store elimination pass could delete it. "
          "The weak writes\n   (array, heap) all stay live.")


if __name__ == "__main__":
    main()
