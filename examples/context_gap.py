#!/usr/bin/env python3
"""When does context-sensitivity matter?

Section 5 of the paper: on realistic programs context-insensitivity
costs (almost) nothing, yet "it is easy to construct programs where
context-sensitivity provides an arbitrarily large benefit."  This
example shows both sides:

1. the `part` benchmark — shared list routines, cross-pollution,
   and *zero* difference at every indirect memory operation;
2. a generated program with N call sites to one identity function,
   where the CI answer degrades linearly while CS stays exact.

Run:  python examples/context_gap.py
"""

import repro
from repro.analysis.compare import compare_results
from repro.analysis.stats import indirect_op_stats
from repro.report.tables import render_table
from repro.suite.adversarial import load_cs_wins
from repro.suite.registry import load_program


def suite_side() -> None:
    program = load_program("part")
    ci = repro.analyze(program)
    cs = repro.analyze(program, sensitivity="sensitive")
    report = compare_results(ci, cs)
    print("part (the paper's own anecdote, §5.2):")
    print(f"  CI pairs {report.total_insensitive}, "
          f"CS pairs {report.total_sensitive} "
          f"({report.percent_spurious:.1f}% spurious)")
    print(f"  indirect memory ops identical: "
          f"{report.indirect_ops_identical}")
    print("  -> the spurious pairs sit on outputs no mod/ref client "
          "ever reads\n")


def adversarial_side() -> None:
    rows = []
    for n in (2, 4, 8, 16, 32):
        program = load_cs_wins(n)
        ci = repro.analyze(program)
        cs = repro.analyze(program, sensitivity="sensitive")
        ci_avg = indirect_op_stats(ci, "write").avg
        cs_avg = indirect_op_stats(cs, "write").avg
        rows.append([n, ci_avg, cs_avg, ci_avg / cs_avg])
    print(render_table(
        ["call sites", "CI locations/deref", "CS locations/deref",
         "gap (x)"],
        rows,
        title="one identity function, N call sites (constructed)"))
    print("\n-> the CI answer degrades linearly with the number of "
          "call sites;\n   nothing like this shape occurs in any of "
          "the 13 benchmarks.")


def qualified_query_side() -> None:
    """§4.1's closing remark: "some context-sensitive analyses prefer
    to use the qualified information directly; this would be easy to
    accommodate" — the per-call-site projection API."""
    from repro.analysis.query import op_locations_at_call
    from repro.ir.nodes import CallNode, UpdateNode

    program = repro.parse_source("""
        int g1, g2;
        void poke(int *p) { *p = 9; }
        int main(void) { poke(&g1); poke(&g2); return 0; }
    """, name="poke.c")
    cs = repro.analyze(program, sensitivity="sensitive")
    poke = program.functions["poke"]
    write = next(n for n in poke.nodes if isinstance(n, UpdateNode))
    calls = sorted((n for n in program.functions["main"].nodes
                    if isinstance(n, CallNode)), key=lambda n: n.uid)
    stripped = sorted(p.base.name for p in cs.op_locations(write))
    print("\nusing the qualified information directly (poke's *p write):")
    print(f"  stripped (Figure 6 view):       {{{', '.join(stripped)}}}")
    for index, call in enumerate(calls, start=1):
        per_site = sorted(p.base.name
                          for p in op_locations_at_call(cs, write, call))
        print(f"  projected at call site {index}:       "
              f"{{{', '.join(per_site)}}}")


def main() -> None:
    suite_side()
    adversarial_side()
    qualified_query_side()


if __name__ == "__main__":
    main()
