#!/usr/bin/env python3
"""Quickstart: analyze a C snippet and inspect points-to results.

Run:  python examples/quickstart.py
"""

import repro
from repro.analysis.compare import compare_results
from repro.ir.nodes import LookupNode, UpdateNode

SOURCE = """
/* A tiny pointer program: a list builder and a global cursor. */
extern void *malloc(unsigned long n);

struct node { int value; struct node *next; };

struct node *head;

void push(int value) {
    struct node *n = malloc(sizeof(struct node));
    n->value = value;
    n->next = head;
    head = n;
}

int sum(void) {
    int total = 0;
    struct node *walk;
    for (walk = head; walk; walk = walk->next)
        total += walk->value;
    return total;
}

int main(void) {
    int i;
    for (i = 0; i < 10; i++)
        push(i);
    return sum();
}
"""


def main() -> None:
    # 1. Preprocess, parse, and lower to the VDG-style IR.
    program = repro.parse_source(SOURCE, name="quickstart.c")
    print(f"lowered {program.name}: {len(program.functions)} functions, "
          f"{program.node_count()} nodes\n")

    # 2. Run the paper's two analyses.
    ci = repro.analyze(program)                          # Figure 1
    cs = repro.analyze(program, sensitivity="sensitive")  # Figure 5

    # 3. What may each indirect memory operation touch?
    print("indirect memory operations (context-insensitive view):")
    for name, graph in program.functions.items():
        for node in graph.memory_operations():
            if not node.is_indirect:
                continue
            kind = "read " if isinstance(node, LookupNode) else "write"
            locations = sorted(repr(p) for p in ci.op_locations(node))
            print(f"  {name:5s} {kind} {node.origin}: "
                  f"{{{', '.join(locations)}}}")

    # 4. Did context-sensitivity buy anything?  (The paper's question.)
    report = compare_results(ci, cs)
    print(f"\ncontext-insensitive pairs: {report.total_insensitive}")
    print(f"context-sensitive pairs:   {report.total_sensitive} "
          f"({report.percent_spurious:.1f}% spurious)")
    print(f"identical at indirect ops: {report.indirect_ops_identical}")


if __name__ == "__main__":
    main()
