#!/usr/bin/env python3
"""Regenerate every table and figure from the paper's evaluation.

Runs both analyses over the 13-program suite and prints our version of
Figures 2, 3, 4, 6, 7, the §4.2 pruning-coverage numbers, the CS-cost
ratios, and the §5 ablation.  (The same drivers back the pytest-
benchmark harness in benchmarks/.)

Run:  python examples/regenerate_paper_tables.py [fig2|fig3|...]
"""

import sys

from repro.report.experiments import (
    EXPERIMENT_IDS,
    SuiteRunner,
    render_experiment,
)


def main() -> None:
    wanted = sys.argv[1:] or list(EXPERIMENT_IDS)
    unknown = [w for w in wanted if w not in EXPERIMENT_IDS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {', '.join(unknown)}; "
                         f"choose from {', '.join(EXPERIMENT_IDS)}")
    runner = SuiteRunner()
    for experiment_id in wanted:
        print(render_experiment(experiment_id, runner))
        print()


if __name__ == "__main__":
    main()
