"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments whose setuptools
lacks the PEP 517 editable hooks (no ``wheel`` package available).
"""

from setuptools import setup

setup()
