"""The paper's published numbers, transcribed from the figures.

Used by EXPERIMENTS.md generation and by the benchmark harness to
print paper-vs-measured comparisons.  A handful of cells are illegible
in the available scan (noted ``None``); everything else is transcribed
directly, with arithmetic cross-checks where the paper permits them
(e.g. Figure 4's row sums).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Figure 2: name -> (source lines, VDG nodes, alias-related outputs).
FIGURE2: Dict[str, Tuple[int, int, int]] = {
    "allroots": (231, 554, 278),
    "anagram": (648, 1018, 560),
    "assembler": (2764, 4741, 2990),
    "backprop": (286, 721, 421),
    "bc": (6771, 9024, 5435),
    "compiler": (2282, 3852, 2057),
    "compress": (1502, 2080, 1124),
    "lex315": (1039, 1453, 716),
    "loader": (1241, 2033, 1202),
    "part": (684, 1677, 1105),
    "simulator": (4009, 7052, 4047),
    "span": (1297, 1364, 944),
    "yacr2": (3208, 5963, 3047),
}

#: Figure 3 (context-insensitive pairs):
#: name -> (pointer, function, aggregate, store, total).
FIGURE3: Dict[str, Tuple[int, int, int, int, int]] = {
    "allroots": (123, 0, 4, 254, 381),
    "anagram": (206, 3, 13, 1394, 1616),
    "assembler": (1509, 0, 1798, 165622, 168929),
    "backprop": (142, 0, 4, 497, 643),
    "bc": (3017, 10, 1193, 333389, 337609),
    "compiler": (484, 0, 189, 20566, 21239),
    "compress": (339, 2, 114, 2459, 2914),
    "lex315": (264, 0, 33, 10269, 10566),
    "loader": (491, 0, 77, 5753, 6321),
    "part": (521, 0, 311, 6597, 7429),
    "simulator": (1921, 0, 634, 176828, 179383),
    "span": (322, 0, 484, 3244, 4050),
    "yacr2": (1174, 0, 141, 38949, 40264),
}

FIGURE3_TOTAL = (10513, 15, 4995, 765821, 781344)

#: Figure 4: (name, kind) -> (total, @1, @2, @3, @4plus, max, avg).
#: Zero-location ops (backprop's and bc's null-only reads) are the gap
#: between ``total`` and the histogram sum.
FIGURE4: Dict[Tuple[str, str], Tuple[int, int, int, int, int, int, float]] = {
    ("allroots", "read"): (34, 16, 18, 0, 0, 2, 1.53),
    ("allroots", "write"): (3, 3, 0, 0, 0, 1, 1.00),
    ("anagram", "read"): (56, 53, 3, 0, 0, 2, 1.05),
    ("anagram", "write"): (25, 25, 0, 0, 0, 1, 1.00),
    ("assembler", "read"): (176, 135, 17, 0, 24, 60, 2.34),
    ("assembler", "write"): (115, 80, 13, 0, 22, 9, 1.93),
    ("backprop", "read"): (32, 31, 0, 0, 0, 1, 0.97),
    ("backprop", "write"): (21, 21, 0, 0, 0, 1, 1.00),
    ("bc", "read"): (553, 462, 50, 21, 19, 33, 2.16),
    ("bc", "write"): (250, 216, 18, 8, 8, 26, 1.50),
    ("compiler", "read"): (83, 83, 0, 0, 0, 1, 1.00),
    ("compiler", "write"): (50, 50, 0, 0, 0, 1, 1.00),
    ("compress", "read"): (77, 76, 1, 0, 0, 2, 1.01),
    ("compress", "write"): (84, 84, 0, 0, 0, 1, 1.00),
    ("lex315", "read"): (16, 7, 9, 0, 0, 2, 1.56),
    ("lex315", "write"): (9, 4, 5, 0, 0, 2, 1.56),
    ("loader", "read"): (80, 77, 2, 0, 1, 7, 1.10),
    ("loader", "write"): (43, 36, 1, 1, 5, 9, 1.91),
    ("part", "read"): (114, 56, 58, 0, 0, 2, 1.51),
    ("part", "write"): (49, 35, 14, 0, 0, 2, 1.28),
    ("simulator", "read"): (339, 323, 0, 8, 8, 22, 1.22),
    ("simulator", "write"): (210, 183, 5, 12, 10, 13, 1.45),
    ("span", "read"): (101, 101, 0, 0, 0, 1, 1.00),
    ("span", "write"): (45, 45, 0, 0, 0, 1, 1.00),
    ("yacr2", "read"): (268, 261, 7, 0, 0, 2, 1.03),
    ("yacr2", "write"): (109, 98, 10, 1, 0, 3, 1.11),
}

FIGURE4_TOTAL = {
    "read": (1929, 1681, 165, 29, 52, 60, 1.55),
    "write": (1013, 880, 66, 22, 45, 26, 1.39),
}

#: Figure 6 (context-sensitive pairs):
#: name -> (pointer, function, aggregate, store, total, total CI,
#:          percent spurious).
FIGURE6: Dict[str, Tuple[int, int, int, int, int, int, float]] = {
    "allroots": (123, 0, 4, 254, 381, 381, 0.0),
    "anagram": (206, 3, 13, 1204, 1426, 1616, 11.8),
    "assembler": (1509, 0, 1798, 162972, 166279, 168929, 1.6),
    "backprop": (142, 0, 4, 497, 643, 643, 0.0),
    "bc": (3017, 10, 1193, 325749, 329969, 337609, 2.3),
    "compiler": (484, 0, 189, 20484, 21157, 21239, 0.4),
    "compress": (333, 2, 114, 2392, 2841, 2914, 2.5),
    "lex315": (264, 0, 33, 10269, 10566, 10566, 0.0),
    "loader": (491, 0, 77, 5445, 6013, 6321, 4.9),
    "part": (521, 0, 311, 6540, 7372, 7429, 0.8),
    "simulator": (1921, 0, 634, 175268, 177823, 179383, 0.9),
    "span": (320, 0, 473, 3092, 3885, 4050, 4.1),
    "yacr2": (1174, 0, 141, 36204, 37519, 40264, 6.8),
}

FIGURE6_TOTAL = (10505, 15, 4984, 750370, 765874, 781344, 2.0)

#: Figure 7, spurious-pairs half: (path, referent) -> percent.
#: "<0.1" cells are recorded as 0.05.
FIGURE7_SPURIOUS: Dict[Tuple[str, str], Optional[float]] = {
    ("offset", "function"): 0.0,
    ("offset", "local"): 0.0,
    ("offset", "global"): 0.05,
    ("offset", "heap"): 0.1,
    ("local", "function"): 0.0,
    ("local", "local"): 0.0,
    ("local", "global"): 34.1,
    ("local", "heap"): 8.1,
    ("global", "function"): 0.0,
    ("global", "local"): 0.0,
    ("global", "global"): 3.1,
    ("global", "heap"): 29.9,
    ("heap", "function"): 0.0,
    ("heap", "local"): 0.1,
    ("heap", "global"): 5.1,
    ("heap", "heap"): 19.5,
}

#: Figure 7, all-CI-pairs half: only the heap row is legible in the
#: available scan; the other rows are None (not compared).
FIGURE7_ALL: Dict[Tuple[str, str], Optional[float]] = {
    ("heap", "function"): 0.0,
    ("heap", "local"): 0.05,
    ("heap", "global"): 5.6,
    ("heap", "heap"): 16.8,
}

#: Section 4.2 / 4.3 text claims.
TEXT_CLAIMS = {
    # "this optimization applies to 87% of the indirect reads and
    # writes in our test programs"
    "single_location_fraction": 0.87,
    # "only 9% of the indirect reads and 7% of the indirect writes need
    # to introduce assumptions"
    "reads_needing_assumptions": 0.09,
    "writes_needing_assumptions": 0.07,
    # "executes only slightly more (10%) transfer functions"
    "cs_transfer_ratio": 1.10,
    # "as many as 100 times more meet operations"
    "cs_meet_ratio_max": 100.0,
    # "2-3 orders of magnitude slower ... on our larger test programs"
    "cs_slowdown_orders": (2, 3),
    # Figure 6 totals: CS finds 2.0% fewer pairs overall.
    "percent_spurious_overall": 2.0,
    # "the average indirect memory operation is found to
    # reference/modify approximately 1.2 memory locations" (prior work)
    "prior_work_avg_locations": 1.2,
    # "procedures average 4.2 callers, 54% of procedures have only one
    # caller" (§5.1.2)
    "avg_callers": 4.2,
    "single_caller_fraction": 0.54,
}

#: The paper's qualitative claims, checked by tests and benches.
HEADLINES = [
    "context-sensitive results at indirect memory operations are "
    "identical to context-insensitive results on every benchmark",
    "the context-sensitive analysis generates on average ~2% fewer "
    "points-to pairs",
    "spurious pairs skew toward local paths and heap referents",
    "most indirect operations are single-target, enabling the §4.2 "
    "pruning optimizations",
]
