"""Experiment drivers: one per table/figure in the paper's evaluation.

Each ``figN_rows`` function returns (headers, rows) for the measured
reproduction of that figure over our suite; ``render_experiment`` turns
an experiment id into printable text.  :class:`SuiteRunner` caches the
lowered programs and both analysis results so benches that regenerate
several figures don't re-analyze.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.common import AnalysisResult
from ..analysis.compare import compare_results, spurious_breakdown
from ..analysis.flowinsensitive import analyze_flowinsensitive
from ..analysis.insensitive import analyze_insensitive
from ..analysis.sensitive import analyze_sensitive
from ..analysis.stats import (
    PATH_CATEGORIES,
    REFERENT_CATEGORIES,
    breakdown_percentages,
    indirect_op_stats,
    pair_breakdown,
    pair_census,
    program_sizes,
    pruning_coverage,
    structure_stats,
)
from ..errors import ReproError
from ..ir.graph import Program
from ..suite.adversarial import load_cs_wins
from ..suite.registry import PROGRAM_NAMES, load_program
from . import paper
from .tables import render_table

EXPERIMENT_IDS = ("fig2", "fig3", "fig4", "fig6", "fig7", "cost",
                  "opt42", "perf43", "struct51", "gap", "checkers",
                  "slicing")


class SuiteRunner:
    """Loads and analyzes suite programs once, caching everything.

    ``jobs`` > 1 makes the first access :meth:`prime` the whole suite
    through :func:`repro.runner.run_suite_report`, fanning program
    analyses across worker processes; later accesses hit the in-memory
    cache.  ``cache`` is the persistent lowering cache switch.

    Failures are isolated: with ``fail_fast=False`` (default) a
    program whose worker raises or dies is recorded in :attr:`errors`
    and dropped from :attr:`names`, so the remaining experiments run
    over the survivors; ``fail_fast=True`` restores raise-on-first-
    failure.  Telemetry records for everything analyzed (including
    error records) are available via :meth:`telemetry_records`.
    """

    def __init__(self, names: Optional[Sequence[str]] = None,
                 jobs: Optional[int] = 1,
                 cache: object = True,
                 fail_fast: bool = False,
                 schedule: str = "batched",
                 parallel_scc: bool = False) -> None:
        self.names: List[str] = list(names) if names is not None \
            else list(PROGRAM_NAMES)
        self.jobs = jobs
        self.cache = cache
        self.fail_fast = fail_fast
        self.schedule = schedule
        self.parallel_scc = parallel_scc
        #: :class:`repro.runner.TaskError` per failed program.
        self.errors: List = []
        self._records: List[dict] = []
        self._primed = False
        self._programs: Dict[str, Program] = {}
        self._ci: Dict[str, AnalysisResult] = {}
        self._cs: Dict[str, AnalysisResult] = {}
        self._fi: Dict[str, AnalysisResult] = {}

    def prime(self) -> None:
        """Analyze every suite program up front, possibly in parallel.

        Each worker ships back its program together with the CI and CS
        results in one message, so the graph the results reference is
        the graph this runner serves from :meth:`program`.  Failed
        programs land in :attr:`errors` and are removed from
        :attr:`names` so later table passes skip them.
        """
        if self._primed:
            return
        self._primed = True
        from ..runner import run_suite_report

        report = run_suite_report(names=self.names, jobs=self.jobs,
                                  cache=self.cache,
                                  fail_fast=self.fail_fast,
                                  schedule=self.schedule,
                                  parallel_scc=self.parallel_scc)
        self.errors = report.errors
        self._records = report.records
        for name, by_flavor in report.results.items():
            ci = by_flavor["insensitive"]
            self._programs[name] = ci.program
            self._ci[name] = ci
            self._cs[name] = by_flavor["sensitive"]
        failed = {error.name for error in self.errors}
        if failed:
            self.names = [n for n in self.names if n not in failed]

    def telemetry_records(self) -> List[dict]:
        """Telemetry records for every analyzed program/flavor.

        Parallel runners return the records their workers shipped back
        (one per flavor, plus error records); inline runners render
        records from the cached results on demand.
        """
        if self._want_parallel():
            self.prime()
        if self._primed:
            return list(self._records)
        from ..telemetry import result_records

        records: List[dict] = []
        for name in self.names:
            results = {"insensitive": self.ci(name),
                       "sensitive": self.cs(name)}
            records.extend(result_records(name, results, self.schedule))
        return records

    def _want_parallel(self) -> bool:
        return self.jobs is None or self.jobs > 1

    def program(self, name: str) -> Program:
        if name not in self._programs:
            if self._want_parallel():
                self.prime()
            if name not in self._programs:
                self._programs[name] = load_program(name, cache=self.cache)
        return self._programs[name]

    def ci(self, name: str) -> AnalysisResult:
        if name not in self._ci:
            if self._want_parallel():
                self.prime()
            if name not in self._ci:
                self._ci[name] = analyze_insensitive(
                    self.program(name), schedule=self.schedule,
                    parallel_scc=self.parallel_scc)
        return self._ci[name]

    def cs(self, name: str) -> AnalysisResult:
        if name not in self._cs:
            if self._want_parallel():
                self.prime()
            if name not in self._cs:
                self._cs[name] = analyze_sensitive(
                    self.program(name), ci_result=self.ci(name),
                    schedule=self.schedule)
        return self._cs[name]

    def fi(self, name: str) -> AnalysisResult:
        """Flow-insensitive baseline result.

        The parallel primer only ships CI and CS results back from the
        workers, so FI is always computed inline on first use and then
        cached — only the ``slicing`` experiment needs it.
        """
        if name not in self._fi:
            self._fi[name] = analyze_flowinsensitive(
                self.program(name), schedule=self.schedule)
        return self._fi[name]


# ---------------------------------------------------------------------------
# Figure 2: benchmark sizes
# ---------------------------------------------------------------------------


def fig2_rows(runner: SuiteRunner):
    headers = ["name", "lines", "VDG nodes", "alias-related outputs"]
    rows = []
    for name in runner.names:
        sizes = program_sizes(runner.program(name))
        rows.append([name, sizes.source_lines, sizes.vdg_nodes,
                     sizes.alias_related_outputs])
    return headers, rows


# ---------------------------------------------------------------------------
# Figure 3: total context-insensitive pairs by output type
# ---------------------------------------------------------------------------


def fig3_rows(runner: SuiteRunner):
    headers = ["name", "pointer", "function", "aggregate", "store", "total"]
    rows = []
    totals = [0] * 5
    for name in runner.names:
        census = pair_census(runner.ci(name))
        row = [name, census.pointer, census.function, census.aggregate,
               census.store, census.total]
        for i in range(5):
            totals[i] += row[i + 1]
        rows.append(row)
    rows.append(["TOTAL"] + totals)
    return headers, rows


# ---------------------------------------------------------------------------
# Figure 4: indirect memory operation statistics
# ---------------------------------------------------------------------------


def fig4_rows(runner: SuiteRunner):
    headers = ["name", "type", "total", "@1", "@2", "@3", "@4+",
               "max", "avg"]
    rows = []
    totals = {"read": [0] * 6, "write": [0] * 6}
    sums = {"read": 0, "write": 0}
    maxes = {"read": 0, "write": 0}
    for name in runner.names:
        ci = runner.ci(name)
        for kind in ("read", "write"):
            stats = indirect_op_stats(ci, kind)
            rows.append([name, kind, stats.total, stats.one, stats.two,
                         stats.three, stats.four_plus,
                         stats.max_locations, stats.avg])
            bucket = totals[kind]
            bucket[0] += stats.total
            bucket[1] += stats.one
            bucket[2] += stats.two
            bucket[3] += stats.three
            bucket[4] += stats.four_plus
            sums[kind] += stats.sum_locations
            maxes[kind] = max(maxes[kind], stats.max_locations)
    for kind in ("read", "write"):
        bucket = totals[kind]
        avg = sums[kind] / bucket[0] if bucket[0] else 0.0
        rows.append(["TOTAL", kind, bucket[0], bucket[1], bucket[2],
                     bucket[3], bucket[4], maxes[kind], avg])
    return headers, rows


# ---------------------------------------------------------------------------
# Figure 6: context-sensitive pairs and percent spurious
# ---------------------------------------------------------------------------


def fig6_rows(runner: SuiteRunner):
    headers = ["name", "pointer", "function", "aggregate", "store",
               "total", "total (insens.)", "% spurious",
               "indirect ops identical"]
    rows = []
    totals = [0] * 6
    for name in runner.names:
        report = compare_results(runner.ci(name), runner.cs(name))
        census = report.cs_census
        row = [name, census.pointer, census.function, census.aggregate,
               census.store, census.total, report.total_insensitive,
               report.percent_spurious,
               report.indirect_ops_identical]
        for i in range(6):
            totals[i] += row[i + 1]
        rows.append(row)
    overall = (100.0 * (totals[5] - totals[4]) / totals[5]
               if totals[5] else 0.0)
    rows.append(["TOTAL"] + totals + [overall, None])
    return headers, rows


# ---------------------------------------------------------------------------
# Figure 7: pair breakdown by path x referent type
# ---------------------------------------------------------------------------


def fig7_rows(runner: SuiteRunner):
    all_counts: Dict[Tuple[str, str], int] = {}
    spurious_counts: Dict[Tuple[str, str], int] = {}
    for name in runner.names:
        ci, cs = runner.ci(name), runner.cs(name)
        for key, count in pair_breakdown(ci).items():
            all_counts[key] = all_counts.get(key, 0) + count
        for key, count in spurious_breakdown(ci, cs).items():
            spurious_counts[key] = spurious_counts.get(key, 0) + count
    all_pct = breakdown_percentages(all_counts)
    spurious_pct = breakdown_percentages(spurious_counts)
    headers = (["path \\ referent"]
               + [f"all:{r}" for r in REFERENT_CATEGORIES]
               + [f"spurious:{r}" for r in REFERENT_CATEGORIES])
    rows = []
    for path_cat in PATH_CATEGORIES:
        row: List = [path_cat]
        for ref_cat in REFERENT_CATEGORIES:
            row.append(all_pct.get((path_cat, ref_cat), 0.0))
        for ref_cat in REFERENT_CATEGORIES:
            row.append(spurious_pct.get((path_cat, ref_cat), 0.0))
        rows.append(row)
    return headers, rows


# ---------------------------------------------------------------------------
# Run cost accounting (the quantities behind §4.2/§4.3 and Figure 7's
# cost argument), rendered straight from the telemetry records so the
# table and ``--telemetry`` output can never disagree.
# ---------------------------------------------------------------------------


def cost_rows(runner: SuiteRunner):
    headers = ["name", "flavor", "transfers", "meets", "pairs added",
               "batches", "frontend s", "solve s", "cache"]
    rows = []
    totals = {"transfers": 0, "meets": 0, "pairs_added": 0, "batches": 0}
    total_frontend = total_solve = 0.0
    for record in runner.telemetry_records():
        if record.get("kind") != "analysis":
            # Full message is on stderr and in the telemetry stream.
            error = record.get("error", {})
            rows.append([record.get("program"),
                         f"ERROR: {error.get('kind')}",
                         None, None, None, None, None, None, None])
            continue
        counters = record["counters"]
        phases = record["phases"]
        # Frontend phases are program-level (preprocess/parse/lower,
        # or preprocess/cache_load on a hit); "solve" is this flavor's.
        frontend = sum(seconds for phase, seconds in phases.items()
                       if phase != "solve")
        solve = phases.get("solve", record["elapsed_seconds"])
        rows.append([record["program"], record["flavor"],
                     counters["transfers"], counters["meets"],
                     counters["pairs_added"], counters.get("batches"),
                     round(frontend, 4), round(solve, 4),
                     record["cache"]])
        for key in totals:
            totals[key] += counters.get(key) or 0
        total_frontend += frontend
        total_solve += solve
    rows.append(["TOTAL", None, totals["transfers"], totals["meets"],
                 totals["pairs_added"], totals["batches"],
                 round(total_frontend, 4), round(total_solve, 4), None])
    return headers, rows


# ---------------------------------------------------------------------------
# §4.2: pruning coverage
# ---------------------------------------------------------------------------


def opt42_rows(runner: SuiteRunner):
    headers = ["name", "indirect ops", "single-location",
               "% single", "% reads needing assumptions",
               "% writes needing assumptions"]
    rows = []
    agg_total = agg_single = 0
    agg_reads = agg_reads_need = agg_writes = agg_writes_need = 0
    for name in runner.names:
        cov = pruning_coverage(runner.ci(name))
        rows.append([name, cov.indirect_total, cov.single_location,
                     100.0 * cov.single_location_fraction,
                     100.0 * cov.reads_fraction,
                     100.0 * cov.writes_fraction])
        agg_total += cov.indirect_total
        agg_single += cov.single_location
        agg_reads += cov.reads_total
        agg_reads_need += cov.reads_needing_assumptions
        agg_writes += cov.writes_total
        agg_writes_need += cov.writes_needing_assumptions
    rows.append([
        "TOTAL", agg_total, agg_single,
        100.0 * agg_single / agg_total if agg_total else 0.0,
        100.0 * agg_reads_need / agg_reads if agg_reads else 0.0,
        100.0 * agg_writes_need / agg_writes if agg_writes else 0.0,
    ])
    return headers, rows


# ---------------------------------------------------------------------------
# §4.2/§4.3: cost of context-sensitivity
# ---------------------------------------------------------------------------


def perf_rows(runner: SuiteRunner):
    headers = ["name", "CI transfers", "CS transfers", "transfer ratio",
               "CI meets", "CS meets", "meet ratio",
               "CI seconds", "CS seconds", "slowdown"]
    rows = []
    for name in runner.names:
        ci, cs = runner.ci(name), runner.cs(name)
        t_ratio = (cs.counters.transfers / ci.counters.transfers
                   if ci.counters.transfers else 0.0)
        m_ratio = (cs.counters.meets / ci.counters.meets
                   if ci.counters.meets else 0.0)
        slowdown = (cs.elapsed_seconds / ci.elapsed_seconds
                    if ci.elapsed_seconds else 0.0)
        rows.append([name, ci.counters.transfers, cs.counters.transfers,
                     t_ratio, ci.counters.meets, cs.counters.meets,
                     m_ratio, round(ci.elapsed_seconds, 4),
                     round(cs.elapsed_seconds, 4), slowdown])
    return headers, rows


# ---------------------------------------------------------------------------
# §5.1.2: benchmark structure (call-graph sparsity, pointer nesting)
# ---------------------------------------------------------------------------


def struct51_rows(runner: SuiteRunner):
    headers = ["name", "procedures", "called", "call edges",
               "avg callers", "% single caller", "pointer pairs",
               "% multi-level"]
    rows = []
    agg_edges = agg_called = agg_single = 0
    agg_pairs = agg_multi = 0
    for name in runner.names:
        stats = structure_stats(runner.ci(name))
        rows.append([name, stats.procedures, stats.called_procedures,
                     stats.call_edges, stats.avg_callers,
                     100.0 * stats.single_caller_fraction,
                     stats.value_pairs,
                     100.0 * stats.multi_level_fraction])
        agg_edges += stats.call_edges
        agg_called += stats.called_procedures
        agg_single += stats.single_caller
        agg_pairs += stats.value_pairs
        agg_multi += stats.multi_level_pairs
    rows.append([
        "TOTAL", None, agg_called, agg_edges,
        agg_edges / agg_called if agg_called else 0.0,
        100.0 * agg_single / agg_called if agg_called else 0.0,
        agg_pairs,
        100.0 * agg_multi / agg_pairs if agg_pairs else 0.0,
    ])
    return headers, rows


# ---------------------------------------------------------------------------
# §5 ablation: programs where context-sensitivity wins
# ---------------------------------------------------------------------------


def gap_rows(site_counts: Sequence[int] = (2, 4, 8, 16, 32)):
    headers = ["call sites", "CI avg locations/deref",
               "CS avg locations/deref", "CI spurious pairs",
               "precision gap (x)"]
    rows = []
    for n in site_counts:
        program = load_cs_wins(n)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        report = compare_results(ci, cs)
        ci_stats = indirect_op_stats(ci, "write")
        cs_stats = indirect_op_stats(cs, "write")
        gap = (ci_stats.avg / cs_stats.avg) if cs_stats.avg else 0.0
        rows.append([n, ci_stats.avg, cs_stats.avg,
                     report.spurious_pairs, gap])
    return headers, rows


# ---------------------------------------------------------------------------
# Checker clients: per-benchmark finding counts, CI vs CS vs FI
# ---------------------------------------------------------------------------


def checkers_rows(runner: SuiteRunner):
    """Bug-report counts per benchmark under each analysis flavor.

    This is Ruf's question asked of concrete bug reports instead of
    pair counts: a CI column equal to the CS column means context
    sensitivity changed *nothing a checker user would see*; the FI
    column shows what flow-insensitivity would cost.  The programs are
    re-lowered under the hazard model (``<null>``/``<uninit>`` cells),
    so this experiment drives :func:`repro.runner.run_check_report`
    directly rather than reusing the runner's cached (hazard-free)
    results.
    """
    from ..analysis.checkers import CHECKER_IDS, count_by_checker
    from ..runner import run_check_report

    flavors = ("insensitive", "sensitive", "flowinsensitive")
    report = run_check_report(
        names=runner.names, flavors=flavors, jobs=runner.jobs,
        schedule=runner.schedule, cache=runner.cache,
        fail_fast=runner.fail_fast)
    runner.errors.extend(report.errors)

    headers = (["name"] + [f"CI {c}" for c in CHECKER_IDS]
               + ["CI total", "CS total", "FI total",
                  "CI extra vs CS", "FI extra vs CI"])
    rows = []
    width = len(CHECKER_IDS) + 5
    totals = [0] * width
    for outcome in report.outcomes:
        if not outcome.ok:
            rows.append([outcome.name, f"ERROR: {outcome.error.kind}"]
                        + [None] * (width - 1))
            continue
        ci_counts = count_by_checker(outcome.findings["insensitive"])
        ci = sum(ci_counts.values())
        cs = len(outcome.findings["sensitive"])
        fi = len(outcome.findings["flowinsensitive"])
        row = ([outcome.name] + [ci_counts[c] for c in CHECKER_IDS]
               + [ci, cs, fi, ci - cs, fi - ci])
        for i in range(width):
            totals[i] += row[i + 1]
        rows.append(row)
    rows.append(["TOTAL"] + totals)
    return headers, rows


# ---------------------------------------------------------------------------
# Slicing client: average backward slice size, CI vs CS vs FI
# ---------------------------------------------------------------------------


def _mean_backward_slice(graph) -> Tuple[int, int]:
    """(lookup count, summed backward-slice size) over every pointer
    read in ``graph`` — a plain reachability count, no digests."""
    lookups = [key for key, (_, kind, _) in graph.nodes.items()
               if kind == "lookup"]
    total = 0
    for root in lookups:
        seen = {root}
        work = [root]
        while work:
            key = work.pop()
            for neighbour, _ in graph.neighbours(key, "backward"):
                if neighbour not in seen:
                    seen.add(neighbour)
                    work.append(neighbour)
        total += len(seen)
    return len(lookups), total


def slicing_rows(runner: SuiteRunner):
    """Average backward slice size per pointer read, CI vs CS vs FI.

    Slices are the checker-facing consumer of alias precision: a
    spurious points-to pair only matters here if it drags extra
    definitions into some read's backward slice.  Matching CI and CS
    columns are Ruf's result restated for program slicing; the FI
    column shows what a flow-insensitive solution would cost the same
    client.
    """
    from ..analysis.depgraph import build_depgraph

    headers = ["name", "lookups", "CI edges", "CI avg slice",
               "CS avg slice", "FI avg slice", "FI growth %"]
    rows = []
    agg_lookups = 0
    agg = {"ci": 0, "cs": 0, "fi": 0}
    agg_edges = 0
    for name in runner.names:
        graphs = {"ci": build_depgraph(runner.ci(name)),
                  "cs": build_depgraph(runner.cs(name)),
                  "fi": build_depgraph(runner.fi(name))}
        sums = {}
        lookups = 0
        for flavor, graph in graphs.items():
            count, total = _mean_backward_slice(graph)
            sums[flavor] = total
            lookups = max(lookups, count)
        avgs = {flavor: (sums[flavor] / lookups if lookups else 0.0)
                for flavor in sums}
        growth = (100.0 * (avgs["fi"] - avgs["ci"]) / avgs["ci"]
                  if avgs["ci"] else 0.0)
        edges = graphs["ci"].stats()["edges"]
        rows.append([name, lookups, edges, avgs["ci"], avgs["cs"],
                     avgs["fi"], growth])
        agg_lookups += lookups
        agg_edges += edges
        for flavor in agg:
            agg[flavor] += sums[flavor]
    overall = {flavor: (agg[flavor] / agg_lookups if agg_lookups else 0.0)
               for flavor in agg}
    overall_growth = (100.0 * (overall["fi"] - overall["ci"])
                      / overall["ci"] if overall["ci"] else 0.0)
    rows.append(["TOTAL", agg_lookups, agg_edges, overall["ci"],
                 overall["cs"], overall["fi"], overall_growth])
    return headers, rows


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

_TITLES = {
    "fig2": "Figure 2: benchmark programs and their sizes",
    "fig3": "Figure 3: total points-to pairs (context-insensitive)",
    "fig4": "Figure 4: locations referenced by indirect reads/writes",
    "fig6": "Figure 6: context-sensitive pairs and spurious fraction",
    "fig7": "Figure 7: pairs by path type x referent type (percent)",
    "cost": "Figure 7 accounting: analysis cost (operation counts and "
            "phase times, from telemetry records)",
    "opt42": "Section 4.2: CI-based pruning coverage",
    "perf43": "Sections 4.2/4.3: cost of context-sensitivity",
    "struct51": "Section 5.1.2: benchmark structure (call-graph "
                "sparsity, pointer nesting)",
    "gap": "Section 5 ablation: constructed programs where CS wins",
    "checkers": "Section 6 extension: checker-client bug-report counts "
                "per benchmark, CI vs CS vs FI (hazard-model lowering)",
    "slicing": "Section 6 extension: average backward slice size per "
               "pointer read, CI vs CS vs FI dependence graphs",
}


def experiment_rows(experiment_id: str,
                    runner: Optional[SuiteRunner] = None):
    """(headers, rows) for one experiment by id."""
    if experiment_id not in EXPERIMENT_IDS:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; expected one of "
            f"{', '.join(EXPERIMENT_IDS)}")
    if experiment_id == "gap":
        return gap_rows()
    if runner is None:
        runner = SuiteRunner()
    return {
        "fig2": fig2_rows,
        "fig3": fig3_rows,
        "fig4": fig4_rows,
        "fig6": fig6_rows,
        "fig7": fig7_rows,
        "cost": cost_rows,
        "opt42": opt42_rows,
        "perf43": perf_rows,
        "struct51": struct51_rows,
        "checkers": checkers_rows,
        "slicing": slicing_rows,
    }[experiment_id](runner)


def render_experiment(experiment_id: str,
                      runner: Optional[SuiteRunner] = None) -> str:
    """Run one experiment by id and render its table as plain text."""
    headers, rows = experiment_rows(experiment_id, runner)
    return render_table(headers, rows, title=_TITLES[experiment_id])


def render_experiment_markdown(experiment_id: str,
                               runner: Optional[SuiteRunner] = None) -> str:
    """Run one experiment and render a markdown section."""
    from .tables import render_markdown

    headers, rows = experiment_rows(experiment_id, runner)
    return (f"## {_TITLES[experiment_id]}\n\n"
            + render_markdown(headers, rows))
