"""Reporting: the paper's published numbers, table rendering, and the
per-figure experiment drivers."""

from . import paper
from .experiments import (
    EXPERIMENT_IDS,
    SuiteRunner,
    fig2_rows,
    fig3_rows,
    fig4_rows,
    fig6_rows,
    fig7_rows,
    gap_rows,
    opt42_rows,
    perf_rows,
    render_experiment,
    struct51_rows,
)
from .export import comparison_to_dict, result_to_dict, result_to_json
from .tables import render_markdown, render_table

__all__ = [
    "EXPERIMENT_IDS",
    "SuiteRunner",
    "fig2_rows",
    "fig3_rows",
    "fig4_rows",
    "fig6_rows",
    "fig7_rows",
    "gap_rows",
    "comparison_to_dict",
    "opt42_rows",
    "paper",
    "perf_rows",
    "render_experiment",
    "render_markdown",
    "render_table",
    "result_to_dict",
    "result_to_json",
    "struct51_rows",
]
