"""JSON export of analysis results.

Serializes everything a downstream tool needs — per-output points-to
sets, per-operation location sets, the call graph, counters, and the
figure-level statistics — into plain JSON-compatible dictionaries.
Paths and locations are rendered as stable strings (base-location
``describe()`` plus access operators), so exports from two runs of the
same program are directly diffable.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..analysis.common import AnalysisResult
from ..analysis.stats import indirect_op_stats, pair_census, program_sizes
from ..ir.nodes import LookupNode, Node, OutputPort, UpdateNode
from ..memory.access import AccessPath


def path_to_string(path: AccessPath) -> str:
    base = path.base.describe() if path.base is not None else "ε"
    return base + "".join(repr(op) for op in path.ops)


def _output_key(output: OutputPort) -> str:
    node = output.node
    return f"{node.graph.name}:{node.kind}#{node.uid}.{output.name}"


def _node_key(node: Node) -> str:
    return f"{node.graph.name}:{node.kind}#{node.uid}"


def result_to_dict(result: AnalysisResult,
                   include_pairs: bool = True) -> Dict[str, Any]:
    """Serialize one analysis result."""
    program = result.program
    sizes = program_sizes(program)
    census = pair_census(result)
    payload: Dict[str, Any] = {
        "program": program.name,
        "flavor": result.flavor,
        "sizes": {
            "source_lines": sizes.source_lines,
            "vdg_nodes": sizes.vdg_nodes,
            "alias_related_outputs": sizes.alias_related_outputs,
        },
        "counters": result.counters.as_dict(),
        "elapsed_seconds": result.elapsed_seconds,
        "pair_census": {
            "pointer": census.pointer,
            "function": census.function,
            "aggregate": census.aggregate,
            "store": census.store,
            "total": census.total,
        },
    }
    payload["call_graph"] = sorted(
        ({"call": _node_key(call), "callee": callee.name}
         for call, callee in result.callgraph.edges()),
        key=lambda e: (e["call"], e["callee"]))

    for kind in ("read", "write"):
        stats = indirect_op_stats(result, kind)
        payload[f"indirect_{kind}s"] = {
            "total": stats.total,
            "at_1": stats.one,
            "at_2": stats.two,
            "at_3": stats.three,
            "at_4_plus": stats.four_plus,
            "at_0": stats.zero,
            "max": stats.max_locations,
            "avg": stats.avg,
        }

    operations: List[Dict[str, Any]] = []
    for graph in program.functions.values():
        for node in graph.memory_operations():
            operations.append({
                "op": _node_key(node),
                "kind": "read" if isinstance(node, LookupNode) else "write",
                "indirect": node.is_indirect,
                "origin": node.origin,
                "locations": sorted(path_to_string(p)
                                    for p in result.op_locations(node)),
            })
    payload["memory_operations"] = sorted(operations,
                                          key=lambda o: o["op"])

    if include_pairs:
        pairs: Dict[str, List[List[str]]] = {}
        for output, pair_set in result.solution.items():
            if not pair_set:
                continue
            pairs[_output_key(output)] = sorted(
                [path_to_string(p.path), path_to_string(p.referent)]
                for p in pair_set)
        payload["pairs"] = dict(sorted(pairs.items()))
    return payload


def comparison_to_dict(report) -> Dict[str, Any]:
    """Serialize a :class:`~repro.analysis.compare.ComparisonReport`."""
    return {
        "program": report.program_name,
        "total_insensitive": report.total_insensitive,
        "total_sensitive": report.total_sensitive,
        "spurious_pairs": report.spurious_pairs,
        "percent_spurious": report.percent_spurious,
        "indirect_ops_identical": report.indirect_ops_identical,
        "indirect_diffs": [
            {
                "op": _node_key(diff.node),
                "origin": diff.node.origin,
                "ci": sorted(path_to_string(p) for p in diff.ci_locations),
                "cs": sorted(path_to_string(p) for p in diff.cs_locations),
            }
            for diff in report.indirect_diffs
        ],
    }


def result_to_json(result: AnalysisResult, include_pairs: bool = True,
                   **json_kwargs) -> str:
    """Serialize to a JSON string (stable key order)."""
    json_kwargs.setdefault("indent", 2)
    json_kwargs.setdefault("sort_keys", False)
    return json.dumps(result_to_dict(result, include_pairs),
                      **json_kwargs)


# -- dependence graphs and slices ------------------------------------------


def depgraph_to_dict(graph) -> Dict[str, Any]:
    """Serialize a :class:`~repro.analysis.depgraph.DependenceGraph`.

    Nodes map their stable key to ``{function, kind, origin}``; edges
    are ``[src, dst, kind]`` triples in the graph's sorted order, so
    two runs that agree on the graph produce byte-identical JSON.
    """
    return {
        "program": graph.program.name,
        "flavor": graph.flavor,
        "stats": graph.stats(),
        "digest": graph.digest(),
        "nodes": {key: {"function": fn, "kind": kind, "origin": origin}
                  for key, (fn, kind, origin)
                  in sorted(graph.nodes.items())},
        "edges": [list(edge) for edge in graph.edges],
    }


def depgraph_to_json(graph, **json_kwargs) -> str:
    json_kwargs.setdefault("indent", 2)
    json_kwargs.setdefault("sort_keys", True)
    return json.dumps(depgraph_to_dict(graph), **json_kwargs)


#: Graphviz edge attributes per dependence kind.
_DOT_EDGE_STYLES = {
    "value": 'color="black"',
    "mem": 'color="red" penwidth=2',
    "call": 'color="blue" style=dashed',
    "control": 'color="darkgreen" style=dotted',
}


def _dot_quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def slice_to_dot(slice_dict: Dict[str, Any],
                 node_info: Dict[str, Dict[str, str]] = None) -> str:
    """Render one slice (``SliceResult.as_dict()``) as Graphviz DOT.

    ``node_info`` optionally maps node keys to ``{kind, origin}`` (the
    ``depgraph_to_dict`` node shape) for richer labels.  Criterion
    roots are double-bordered; edge kinds get distinct styles.  Output
    is deterministic: nodes and edges emit in sorted order.
    """
    node_info = node_info or {}
    roots = set(slice_dict.get("roots", ()))
    title = (f"{slice_dict.get('program', '')} "
             f"{slice_dict.get('direction', '')} slice")
    lines = [f"digraph {_dot_quote(title.strip() or 'slice')} {{",
             "  rankdir=TB;",
             "  node [shape=box fontsize=10];",
             f"  label={_dot_quote(slice_dict.get('criterion', ''))};"]
    for key in slice_dict.get("nodes", ()):
        info = node_info.get(key, {})
        label = key
        origin = info.get("origin", "")
        if origin:
            label += "\\n" + origin
        attrs = [f"label={_dot_quote(label)}"]
        if key in roots:
            attrs.append("peripheries=2 style=filled "
                         "fillcolor=lightyellow")
        lines.append(f"  {_dot_quote(key)} [{' '.join(attrs)}];")
    for src, dst, kind in slice_dict.get("edges", ()):
        style = _DOT_EDGE_STYLES.get(kind, "")
        attrs = f"label={_dot_quote(kind)}"
        if style:
            attrs += " " + style
        lines.append(f"  {_dot_quote(src)} -> {_dot_quote(dst)} "
                     f"[{attrs}];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def depgraph_to_dot(graph) -> str:
    """Render a whole dependence graph as DOT (same styling as
    :func:`slice_to_dot`, no roots highlighted)."""
    payload = depgraph_to_dict(graph)
    pseudo_slice = {
        "program": payload["program"],
        "direction": "full",
        "criterion": f"dependence graph ({payload['digest'][:12]})",
        "roots": [],
        "nodes": list(payload["nodes"]),
        "edges": payload["edges"],
    }
    return slice_to_dot(pseudo_slice, payload["nodes"])


#: SARIF 2.1.0 constants (the schema-shape regression test pins these).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Checker severity → SARIF reporting level.
_SARIF_LEVELS = {"error": "error", "warning": "warning"}

_RULE_DESCRIPTIONS = {
    "deadstore": "Memory write whose stored value no modeled read "
                 "can ever observe (dead store).",
    "nullderef": "Indirect memory operation whose location input may "
                 "be the null/invalid pointer.",
    "stackref": "Pointer into a callee's stack frame reachable after "
                "the frame's exit (use-after-return).",
    "uninit": "Read through, or of, a pointer that may be "
              "uninitialized.",
    "wildcall": "Indirect call whose resolved target set is empty or "
                "includes non-function cells.",
}


def findings_to_sarif(findings, tool_name: str = "repro-check",
                      flavor: str = None) -> Dict[str, Any]:
    """Render checker findings as a SARIF 2.1.0 log (one run).

    Physical locations come from the IR nodes' source spans (the
    ``origin`` each finding carries); findings without an origin emit
    only the logical location (function + node key).  Results are
    emitted in the findings' deterministic order, so two runs that
    agree on findings produce byte-identical SARIF.
    """
    rule_ids = sorted({f.checker for f in findings})
    rules = [{
        "id": rule_id,
        "name": rule_id,
        "shortDescription": {
            "text": _RULE_DESCRIPTIONS.get(rule_id, rule_id)},
    } for rule_id in rule_ids]
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    results: List[Dict[str, Any]] = []
    for f in findings:
        entry: Dict[str, Any] = {
            "ruleId": f.checker,
            "ruleIndex": rule_index[f.checker],
            "level": _SARIF_LEVELS.get(f.severity, "warning"),
            "message": {"text": f.message},
            "locations": [_sarif_location(f)],
            "partialFingerprints": {
                # Line-independent identity: survives unrelated edits.
                "reproFindingKey/v1": "|".join(f.key()),
            },
            "properties": {"flavor": f.flavor, "path": f.path},
        }
        if f.witness:
            entry["properties"]["witness"] = f.witness
        results.append(entry)

    run: Dict[str, Any] = {
        "tool": {"driver": {
            "name": tool_name,
            "informationUri": "https://example.invalid/repro",
            "rules": rules,
        }},
        "results": results,
    }
    if flavor is not None:
        run["properties"] = {"flavor": flavor}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def _sarif_location(finding) -> Dict[str, Any]:
    location: Dict[str, Any] = {
        "logicalLocations": [{
            "name": finding.function,
            "fullyQualifiedName": f"{finding.function}:{finding.node}",
            "kind": "function",
        }],
    }
    if finding.file:
        physical: Dict[str, Any] = {
            "artifactLocation": {"uri": finding.file},
        }
        if finding.line is not None:
            physical["region"] = {"startLine": finding.line}
        location["physicalLocation"] = physical
    return location


def findings_to_sarif_json(findings, **json_kwargs) -> str:
    """SARIF log as a JSON string (stable key order)."""
    json_kwargs.setdefault("indent", 2)
    json_kwargs.setdefault("sort_keys", True)
    return json.dumps(findings_to_sarif(findings), **json_kwargs)
