"""Plain-text table rendering for the experiment drivers."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(cell: Cell, float_digits: int = 2) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.{float_digits}f}"
    return str(cell)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: Optional[str] = None,
                 float_digits: int = 2) -> str:
    """Render a fixed-width table.

    The first column is left-aligned (row labels); the rest are
    right-aligned (numbers), matching the paper's figure layout.
    """
    text_rows: List[List[str]] = [
        [format_cell(cell, float_digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            if i >= len(widths):
                widths.append(len(cell))
            else:
                widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            width = widths[i] if i < len(widths) else len(cell)
            parts.append(cell.ljust(width) if i == 0 else cell.rjust(width))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(list(headers)))
    lines.append(fmt_line(["-" * w for w in widths[:len(headers)]]))
    for row in text_rows:
        lines.append(fmt_line(row))
    return "\n".join(lines)


def render_markdown(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                    float_digits: int = 2) -> str:
    """Render the same data as a GitHub-flavored markdown table."""
    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(cells) + " |"

    out = [line(list(headers)),
           line(["---"] + ["---:"] * (len(headers) - 1))]
    for row in rows:
        out.append(line([format_cell(c, float_digits) for c in row]))
    return "\n".join(out)
