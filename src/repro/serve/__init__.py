"""Analysis-as-a-service daemon (``repro serve``).

Stdlib-only asyncio HTTP/JSON front end over the same analysis code
paths the CLI drives: lowered programs, solved solutions, and SCC
summaries stay hot in bounded in-memory LRU tiers keyed by the
existing content hashes, duplicate in-flight requests coalesce onto
one computation, warm re-analysis routes through the incremental
replay engine, and cold solves run in the fault-isolated process
pool with per-request budgets.

Layout:

* :mod:`repro.serve.payload` — worker-side result rendering: the
  JSON-safe analysis payload (digests, pair census, counters) and the
  cache-tier classifier.
* :mod:`repro.serve.core` — :class:`~repro.serve.core.AnalysisService`,
  the transport-free service core (caches, coalescing, admission,
  budgets, metrics) shared by the daemon and tests.
* :mod:`repro.serve.http` — the asyncio HTTP adapter mapping
  ``POST /analyze`` / ``POST /check`` / ``POST /query`` /
  ``GET /metrics`` onto the service core.
"""

from .core import AnalysisService, ServeConfig  # noqa: F401
