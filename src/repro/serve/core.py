"""Transport-free service core for the analysis daemon.

:class:`AnalysisService` is everything ``repro serve`` does except
HTTP: request keying by the existing content hashes, a three-tier
warm path (parent-side solution payloads → worker-side SCC-summary
replay → worker-side lowering cache), coalescing of duplicate
in-flight requests onto one computation, bounded admission that sheds
excess load, per-request budgets, and the metrics the daemon reports.
The HTTP adapter (:mod:`repro.serve.http`) only parses requests and
serializes responses; tests and benchmarks drive the core directly,
so everything load-bearing is exercised without sockets.

Request handling is synchronous and blocking by design — the asyncio
front end dispatches each admitted request onto
:attr:`AnalysisService.executor` (a thread pool sized to the admission
limit, so an admitted request never queues behind a missing thread)
and the threads block on the persistent fault-isolated process pool.
Everything here is thread-safe.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..lru import LRUCache
from ..runner import (FLAVORS, WorkerPool, _check_worker,
                      _serve_analyze_worker, default_jobs)
from .payload import TIERS, check_payload


@dataclass
class ServeConfig:
    """Daemon configuration (CLI flags land here verbatim)."""

    host: str = "127.0.0.1"
    port: int = 8377
    #: Process-pool width for cold solves.
    workers: Optional[int] = None
    #: Combined budget for the in-memory LRU tiers, in MiB.
    max_memory_mb: int = 512
    #: Admission bound: in-flight + queued requests beyond this are
    #: shed with HTTP 429 instead of piling up unboundedly.
    queue_limit: int = 32
    #: Per-request wall-clock budget (enforced by the HTTP adapter;
    #: the computation continues and still warms the caches).
    timeout_seconds: float = 300.0
    #: Per-request worker address-space budget in MiB (0 = off);
    #: applied via ``REPRO_RLIMIT_MB`` in the pool workers.
    request_memory_mb: int = 0
    schedule: str = "batched"
    flavors: Tuple[str, ...] = FLAVORS
    #: Lowering/summary cache selector (``True`` → default dir).
    cache: object = True
    #: Route solves through the incremental engine so warm requests
    #: replay persisted SCC summaries instead of re-solving.
    incremental: bool = True
    parallel_scc: bool = False
    #: JSON-lines path for ``kind="serve"`` telemetry (None = off).
    telemetry: Optional[str] = None
    #: Write a telemetry snapshot every N completed requests.
    telemetry_every: int = 25


class Metrics:
    """Thread-safe service counters behind ``/metrics`` and the
    ``kind="serve"`` telemetry records."""

    #: Bounded latency sample for the percentile estimates — enough
    #: resolution for p95 without unbounded daemon growth.
    LATENCY_WINDOW = 1024

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: Dict[str, int] = {}
        self.tier_hits: Dict[str, int] = {tier: 0 for tier in TIERS}
        self.coalesced = 0
        self.shed = 0
        self.timeouts = 0
        #: Executor threads still busy on work whose request already
        #: timed out (504).  They hold real capacity, so admission
        #: counts them until the computation finishes.
        self.zombies = 0
        self.errors = 0
        self.summary_evictions = 0
        self.active = 0
        self.peak_active = 0
        self._latencies = deque(maxlen=self.LATENCY_WINDOW)

    def begin(self) -> None:
        with self._lock:
            self.active += 1
            self.peak_active = max(self.peak_active, self.active)

    def end(self) -> None:
        with self._lock:
            self.active -= 1

    def observe(self, endpoint: str, tier: Optional[str],
                seconds: float) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1
            if tier is not None:
                self.tier_hits[tier] = self.tier_hits.get(tier, 0) + 1
            self._latencies.append(seconds)

    def count(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self, caches: Optional[Dict[str, LRUCache]] = None,
                 worker_deaths: int = 0) -> Dict[str, object]:
        from ..telemetry import percentile

        with self._lock:
            sample = list(self._latencies)
            snap: Dict[str, object] = {
                "queue_depth": self.active,
                "peak_queue_depth": self.peak_active,
                "requests": dict(self.requests),
                "tier_hits": dict(self.tier_hits),
                "coalesced": self.coalesced,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "zombie_threads": self.zombies,
                "errors": self.errors,
                "summary_evictions": self.summary_evictions,
                "worker_deaths": worker_deaths,
            }
        snap["latency_p50_seconds"] = _rounded(percentile(sample, 0.50))
        snap["latency_p95_seconds"] = _rounded(percentile(sample, 0.95))
        if caches:
            snap["caches"] = {name: cache.stats()
                              for name, cache in caches.items()}
        return snap


def _rounded(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 6)


def _pickled_size(value: object) -> int:
    """Byte estimate for object-tier LRU accounting; pickle is the
    honest measure of what the object transitively holds (these
    objects already cross process pipes, so they are picklable)."""
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 1 << 20  # charge un-picklables a conservative 1 MiB


def _json_size(value: object) -> int:
    try:
        return len(json.dumps(value))
    except (TypeError, ValueError):
        return 1 << 20


class _InFlight:
    """One leader's computation that followers wait on."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.response: Optional[Tuple[int, dict]] = None


@dataclass
class _Target:
    """A resolved request target: what to analyze and its identity."""

    name: str          # suite name or source path handed to workers
    is_suite: bool
    content_key: str   # content hash (the warm-identity handle)


class ServeRequestError(Exception):
    """A malformed request (→ HTTP 400)."""


class AnalysisService:
    """The daemon's brain: caches, coalescing, admission, budgets."""

    def __init__(self, config: ServeConfig) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self.config = config
        self.metrics = Metrics()
        if config.request_memory_mb > 0:
            # Inherited by pool workers at spawn (the pool is created
            # lazily, on the first cold request).
            os.environ["REPRO_RLIMIT_MB"] = str(config.request_memory_mb)
        self.pool = WorkerPool(max_workers=config.workers or default_jobs())
        self.executor = ThreadPoolExecutor(
            max_workers=max(2, config.queue_limit),
            thread_name_prefix="repro-serve")
        budget = max(1, config.max_memory_mb) * 1024 * 1024
        # Tier budgets: payloads are small and the hottest (a hit skips
        # the pool entirely), so they get half the budget; the two
        # object tiers backing in-process /query split the rest.
        self.payloads = LRUCache(max_bytes=budget // 2,
                                 sizeof=_json_size, name="solution")
        self.programs = LRUCache(max_bytes=budget // 4,
                                 sizeof=_pickled_size, name="program")
        self.results = LRUCache(max_bytes=budget // 4,
                                sizeof=_pickled_size, name="result")
        self._inflight: Dict[tuple, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        self._spool_dir: Optional[Path] = None
        self._spool_lock = threading.Lock()
        self._telemetry = None
        self._telemetry_lock = threading.Lock()
        self._completed = 0
        if config.telemetry:
            from ..telemetry import TelemetryWriter
            self._telemetry = TelemetryWriter(config.telemetry)

    # -- admission ----------------------------------------------------

    def try_begin(self) -> bool:
        """Admit one request, or refuse (→ 429) at the queue bound.

        Called by the transport *before* dispatching to the executor,
        so shedding is immediate — an overloaded daemon answers 429 in
        microseconds rather than parking the request on a thread.
        Zombie threads (still computing for requests that already got
        their 504) count against the limit: they occupy executor
        threads, and admitting past them would queue the new request
        behind work nobody is waiting for."""
        with self.metrics._lock:
            occupied = self.metrics.active + self.metrics.zombies
            if occupied >= self.config.queue_limit:
                self.metrics.shed += 1
                return False
            self.metrics.active += 1
            self.metrics.peak_active = max(self.metrics.peak_active,
                                           self.metrics.active)
            return True

    def end(self) -> None:
        self.metrics.end()

    def note_timeout(self, future) -> None:
        """Record a 504 whose computation is still on a thread.

        The admission slot is about to be released (the transport's
        ``finally`` calls :meth:`end`), but the executor thread stays
        busy until ``future`` resolves — so it is re-counted as a
        zombie until then, keeping ``try_begin``'s invariant that an
        admitted request never queues behind a missing thread."""
        self.metrics.count("timeouts")
        self.metrics.count("zombies")
        future.add_done_callback(
            lambda _f: self.metrics.count("zombies", -1))

    # -- request handling (blocking; runs on executor threads) --------

    def handle(self, endpoint: str, body: dict) -> Tuple[int, dict]:
        """One admitted request → ``(http_status, response_payload)``."""
        start = time.perf_counter()
        try:
            if endpoint == "analyze":
                status, payload = self._analyze(body)
            elif endpoint == "check":
                status, payload = self._check(body)
            elif endpoint == "query":
                status, payload = self._query(body)
            elif endpoint == "slice":
                status, payload = self._slice(body)
            else:
                return 404, {"error": f"unknown endpoint {endpoint!r}"}
        except ServeRequestError as exc:
            self.metrics.count("errors")
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            self.metrics.count("errors")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - start
        # Followers of a coalesced computation don't re-count its tier
        # — six riders on one cold solve is one cold solve.
        tier = None
        if status == 200 and not payload.get("coalesced"):
            tier = payload.get("tier")
        self.metrics.observe(endpoint, tier, elapsed)
        if status >= 500:
            self.metrics.count("errors")
        self._maybe_snapshot()
        return status, payload

    def metrics_payload(self) -> Dict[str, object]:
        return self.metrics.snapshot(
            caches={"solution": self.payloads,
                    "program": self.programs,
                    "result": self.results},
            worker_deaths=self.pool.worker_deaths)

    # -- endpoints ----------------------------------------------------

    def _analyze(self, body: dict) -> Tuple[int, dict]:
        target = self._resolve_target(body)
        flavors = self._flavors(body)
        schedule = body.get("schedule", self.config.schedule)
        key = ("analyze", target.content_key, flavors, schedule,
               self.config.incremental, self.config.parallel_scc)
        cached = self.payloads.get(key)
        if cached is not None:
            return 200, dict(cached, tier="solution")

        def compute() -> Tuple[int, dict]:
            task = (target.name, target.is_suite, flavors, schedule,
                    self.config.cache, self.config.parallel_scc,
                    self.config.incremental)
            outcome = self.pool.run(_serve_analyze_worker, task)
            if outcome.error is not None:
                return 500, {"error": outcome.error.message,
                             "error_kind": outcome.error.kind,
                             "program": target.name}
            payload = outcome.payload
            self._note_summary_evictions(payload)
            self.payloads.put(key, payload)
            return 200, payload

        return self._coalesced(key, compute)

    def _check(self, body: dict) -> Tuple[int, dict]:
        target = self._resolve_target(body)
        flavors = self._flavors(body)
        schedule = body.get("schedule", self.config.schedule)
        checkers = body.get("checkers")
        if checkers is not None:
            if (not isinstance(checkers, list)
                    or not all(isinstance(c, str) for c in checkers)):
                raise ServeRequestError(
                    "'checkers' must be a list of checker-id strings")
            # Validate ids here so a typo is a 400, not a worker-side
            # 500 — mirrors run_check_report's parent-side validation.
            from ..analysis.checkers import REGISTRY
            from ..errors import AnalysisError
            try:
                REGISTRY.get(checkers)
            except AnalysisError as exc:
                raise ServeRequestError(str(exc)) from None
        checker_key = tuple(checkers) if checkers else None
        key = ("check", target.content_key, flavors, schedule,
               checker_key, self.config.incremental)
        cached = self.payloads.get(key)
        if cached is not None:
            return 200, dict(cached, tier="solution")

        def compute() -> Tuple[int, dict]:
            # digest_only: finding lists stay worker-side; the response
            # carries digests and counts, never pickled findings.
            task = (target.name, target.is_suite, flavors, schedule,
                    self.config.cache, checkers, False,
                    self.config.parallel_scc, self.config.incremental,
                    True)
            outcome = self.pool.run(_check_worker, task)
            if outcome.error is not None:
                return 500, {"error": outcome.error.message,
                             "error_kind": outcome.error.kind,
                             "program": target.name}
            payload = check_payload(target.name, outcome.digests or {},
                                    outcome.records, schedule)
            self.payloads.put(key, payload)
            return 200, payload

        return self._coalesced(key, compute)

    def _query(self, body: dict) -> Tuple[int, dict]:
        """Location-set query over one program's solved result.

        Runs in-process (the answer needs the object-level solution,
        which never crosses the pool pipe) against the ``program`` /
        ``result`` LRU tiers; a doubly-cold query lowers and solves
        here, then both tiers are warm for the next one.
        """
        target = self._resolve_target(body)
        flavor = body.get("flavor", "insensitive")
        if flavor not in FLAVORS:
            raise ServeRequestError(
                f"unknown flavor {flavor!r}; expected one of {FLAVORS}")
        schedule = body.get("schedule", self.config.schedule)
        function = body.get("function")
        line = body.get("line")
        # The solved result is filter-independent, so the LRU tiers key
        # on (program, flavor, schedule) alone — but the *response* is
        # shaped by the function/line filters, so coalescing must key
        # on them too or a follower would inherit the leader's filtered
        # operations verbatim.
        result_key = ("query", target.content_key, flavor, schedule)
        key = result_key + (function, line)

        def compute() -> Tuple[int, dict]:
            result, tier = self._solved_result(target, flavor, schedule)
            operations: List[dict] = []
            for name, graph in sorted(result.program.functions.items()):
                if function is not None and name != function:
                    continue
                for node in graph.memory_operations():
                    if not node.is_indirect:
                        continue
                    origin = node.origin or ""
                    if line is not None:
                        if origin.rsplit(":", 1)[-1] != str(line):
                            continue
                    locations = sorted(
                        repr(p) for p in result.op_locations(node))
                    operations.append({"function": name,
                                       "kind": node.kind,
                                       "origin": origin,
                                       "locations": locations})
            return 200, {"program": target.name, "flavor": flavor,
                         "schedule": schedule, "tier": tier,
                         "operations": operations}

        return self._coalesced(key, compute)

    def _slice(self, body: dict) -> Tuple[int, dict]:
        """Dependence-graph slice over one program's solved result.

        In-process like ``/query`` — the graph walk needs the
        object-level solution — and ``file:line`` slices share
        ``/query``'s solved-result LRU tier exactly (same
        ``("query", content, flavor, schedule)`` key), so a warm query
        makes the next slice a solution-tier hit and vice versa.
        Finding-keyed slices solve under the hazard-model lowering
        (the model findings are reported against) in a sibling tier
        entry.
        """
        from ..analysis.slicing import DIRECTIONS

        target = self._resolve_target(body)
        flavor = body.get("flavor", "insensitive")
        if flavor not in FLAVORS:
            raise ServeRequestError(
                f"unknown flavor {flavor!r}; expected one of {FLAVORS}")
        schedule = body.get("schedule", self.config.schedule)
        criterion = body.get("criterion")
        finding = body.get("finding")
        direction = body.get("direction", "backward")
        if direction not in DIRECTIONS:
            raise ServeRequestError(
                f"unknown direction {direction!r}; expected one of "
                f"{DIRECTIONS}")
        if (criterion is None) == (finding is None):
            raise ServeRequestError(
                "provide exactly one of 'criterion' (file:line) and "
                "'finding' (a check finding key)")
        for field_name, value in (("criterion", criterion),
                                  ("finding", finding)):
            if value is not None and (not isinstance(value, str)
                                      or not value):
                raise ServeRequestError(
                    f"{field_name!r} must be a non-empty string")
        hazard = finding is not None
        prefix = "query-hazard" if hazard else "query"
        result_key = (prefix, target.content_key, flavor, schedule)
        key = ("slice",) + result_key + (criterion, finding, direction)

        def compute() -> Tuple[int, dict]:
            from ..analysis.depgraph import build_depgraph
            from ..analysis.slicing import (resolve_finding,
                                            slice_criterion,
                                            slice_for_finding)
            from ..errors import AnalysisError

            result, tier = self._solved_result(target, flavor, schedule,
                                               hazard=hazard)
            graph = build_depgraph(result)
            try:
                if hazard:
                    from ..analysis.checkers import run_checkers
                    resolved = resolve_finding(run_checkers(result),
                                               finding)
                    slice_result = slice_for_finding(graph, resolved,
                                                     direction)
                else:
                    slice_result = slice_criterion(graph, criterion,
                                                   direction)
            except AnalysisError as exc:
                # A criterion matching nothing is the client's mistake.
                return 400, {"error": str(exc)}
            slice_dict = slice_result.as_dict()
            members = set(slice_dict["nodes"])
            node_info = {k: {"function": fn, "kind": kind,
                             "origin": origin}
                         for k, (fn, kind, origin)
                         in sorted(graph.nodes.items())
                         if k in members}
            return 200, {"program": target.name, "flavor": flavor,
                         "schedule": schedule, "tier": tier,
                         "slice": slice_dict,
                         "graph": {"stats": graph.stats(),
                                   "digest": graph.digest()},
                         "node_info": node_info}

        return self._coalesced(key, compute)

    # -- plumbing -----------------------------------------------------

    def _solved_result(self, target: _Target, flavor: str,
                       schedule: str, hazard: bool = False):
        """``(result, tier)`` through the program/result LRU tiers.

        The warm path ``/query`` and ``/slice`` share: solved results
        key on ``(prefix, content, flavor, schedule)`` (the response
        shape never affects the tier), lowered programs on
        ``(prefix, content)``.  ``hazard=True`` selects the
        hazard-model lowering under sibling keys.
        """
        prefix = "query-hazard" if hazard else "query"
        result_key = (prefix, target.content_key, flavor, schedule)
        result = self.results.get(result_key)
        if result is not None:
            return result, "solution"
        from ..runner import _analyze_program
        program_key = ("program-hazard" if hazard else "program",
                       target.content_key)
        program = self.programs.get(program_key)
        tier = "lowering"
        if program is None:
            tier = "cold"
            if target.is_suite:
                from ..suite.registry import load_program
                program = load_program(target.name,
                                       cache=self.config.cache,
                                       hazard_model=hazard)
            else:
                from ..frontend.lower import lower_file
                program = lower_file(target.name,
                                     cache=self.config.cache,
                                     hazard_model=hazard)
            if program.extras.get("cache") == "hit":
                tier = "lowering"
            self.programs.put(program_key, program)
        result = _analyze_program(
            program, (flavor,), schedule, self.config.parallel_scc,
            self.config.incremental, self.config.cache)[flavor]
        self.results.put(result_key, result)
        return result, tier

    def _coalesced(self, key: tuple, compute) -> Tuple[int, dict]:
        """Run ``compute`` once per key across concurrent callers.

        The first caller becomes the leader; duplicates arriving while
        it runs block on its event and share the response verbatim —
        N identical cold requests cost one solve, not N."""
        with self._inflight_lock:
            entry = self._inflight.get(key)
            if entry is None:
                entry = _InFlight()
                self._inflight[key] = entry
                leader = True
            else:
                leader = False
        if not leader:
            entry.done.wait()
            self.metrics.count("coalesced")
            status, payload = entry.response
            if status == 200:
                payload = dict(payload, coalesced=True)
            return status, payload
        try:
            entry.response = compute()
        except Exception:
            entry.response = (500, {"error": "internal error"})
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            entry.done.set()
        return entry.response

    def _flavors(self, body: dict) -> Tuple[str, ...]:
        raw = body.get("flavors")
        if raw is None:
            return tuple(self.config.flavors)
        if isinstance(raw, str):
            raw = [raw]
        if (not isinstance(raw, list) or not raw
                or any(f not in FLAVORS for f in raw)):
            raise ServeRequestError(
                f"'flavors' must be a non-empty subset of {FLAVORS}")
        # Preserve FLAVORS order: CS piggybacks on CI when both run.
        return tuple(f for f in FLAVORS if f in raw)

    def _resolve_target(self, body: dict) -> _Target:
        if not isinstance(body, dict):
            raise ServeRequestError("request body must be a JSON object")
        given = [k for k in ("program", "file", "source") if k in body]
        if len(given) != 1:
            raise ServeRequestError(
                "provide exactly one of 'program' (suite name), "
                "'file' (path on the server), or 'source' (C text)")
        kind = given[0]
        value = body[kind]
        if not isinstance(value, str) or not value:
            raise ServeRequestError(f"{kind!r} must be a non-empty string")
        from ..frontend.cache import key_for_files
        if kind == "program":
            from ..suite.registry import SuiteError, program_path
            try:
                path = program_path(value)
            except SuiteError as exc:
                raise ServeRequestError(str(exc)) from None
            return _Target(value, True, key_for_files([path]))
        if kind == "file":
            path = Path(value)
            if not path.is_file():
                raise ServeRequestError(f"no such file: {value}")
            return _Target(str(path), False, key_for_files([path]))
        # Source text: spool to a content-named file so lower_file's
        # content-hash cache applies exactly as it does for real files
        # — the same text served twice is one lowering, ever.
        path = self._spool_source(value)
        return _Target(str(path), False, key_for_files([path]))

    def _spool_source(self, source: str) -> Path:
        import hashlib
        # One lock covers setup and the write-then-rename: concurrent
        # threads spooling the same text must not race on the tmp file
        # (same pid → same tmp name).  Spooling is tiny relative to a
        # solve, so the serialization is invisible.
        with self._spool_lock:
            if self._spool_dir is None:
                from ..frontend.cache import resolve_cache_dir
                root = resolve_cache_dir(self.config.cache)
                if root is None:
                    import tempfile
                    self._spool_dir = Path(
                        tempfile.mkdtemp(prefix="repro-serve-src-"))
                else:
                    self._spool_dir = root / "serve-src"
                self._spool_dir.mkdir(parents=True, exist_ok=True)
            sha = hashlib.sha256(source.encode()).hexdigest()[:32]
            path = self._spool_dir / f"{sha}.c"
            if not path.exists():
                tmp = path.with_suffix(f".tmp.{os.getpid()}")
                tmp.write_text(source)
                os.replace(tmp, path)
        return path

    def _note_summary_evictions(self, payload: dict) -> None:
        evicted = max((entry.get("dense", {}).get("summary_evictions", 0)
                       for entry in payload.get("flavors", {}).values()),
                      default=0)
        if evicted:
            self.metrics.count("summary_evictions", evicted)

    def _maybe_snapshot(self) -> None:
        if self._telemetry is None:
            return
        with self._telemetry_lock:
            self._completed += 1
            if self._completed % max(1, self.config.telemetry_every):
                return
        self.write_snapshot()

    def write_snapshot(self) -> None:
        """Append one ``kind="serve"`` telemetry record now."""
        if self._telemetry is None:
            return
        from ..telemetry import serve_record
        with self._telemetry_lock:
            self._telemetry.write(serve_record(self.metrics_payload()))

    def shutdown(self) -> None:
        if self._telemetry is not None:
            self.write_snapshot()
            self._telemetry.close()
            self._telemetry = None
        self.executor.shutdown(wait=False, cancel_futures=True)
        self.pool.shutdown()
