"""Worker-side rendering of analysis results into JSON-safe payloads.

The serve daemon never ships ``Program`` objects or solutions across
the process-pool pipe — a request's answer is this payload: one
``solution_digest`` per flavor (the cross-process equality handle the
oracle and benchmarks already use), the paper's pair census, the cost
counters, and phase timings.  Because the digest is computed in the
worker from the same solved result the CLI would print, byte-equality
between served digests and fresh CLI runs is the service's correctness
gate (``benchmarks/bench_serve.py`` enforces it).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..analysis.common import AnalysisResult

#: Cache tiers, hottest first.  ``solution`` is parent-side (payload
#: LRU hit — no worker involved); the rest are classified from the
#: worker's own result: ``summary`` when every SCC replayed from the
#: summary store, ``lowering`` when only the frontend cache hit, and
#: ``cold`` when the program was lowered from source.
TIERS = ("solution", "summary", "lowering", "cold")


def analysis_payload(name: str,
                     results: Mapping[str, AnalysisResult],
                     schedule: Optional[str] = None) -> dict:
    """The JSON response body for one analyzed program."""
    from ..analysis.stats import pair_census
    from ..fuzz.oracle import solution_digest

    flavors: Dict[str, dict] = {}
    for flavor, result in results.items():
        census = pair_census(result)
        entry = {
            "digest": solution_digest(result),
            "pairs": {
                "pointer": census.pointer,
                "function": census.function,
                "aggregate": census.aggregate,
                "store": census.store,
                "other": census.other,
                "total": census.total,
            },
            "counters": result.counters.as_dict(extended=True),
            "phases": {phase: round(seconds, 6)
                       for phase, seconds in result.phases.items()},
            "elapsed_seconds": round(result.elapsed_seconds, 6),
            "cache": result.cache_status,
        }
        dense = result.extras.get("dense")
        if dense is not None:
            entry["dense"] = dict(dense)
        flavors[flavor] = entry
    return {
        "program": str(name),
        "schedule": schedule,
        "flavors": flavors,
        "tier": worker_tier(flavors),
    }


def worker_tier(flavors: Mapping[str, dict]) -> str:
    """Classify which cache tier satisfied a worker-side solve.

    ``summary`` means the incremental engine replayed every SCC from
    stored summaries for at least one flavor (``sccs_resolved == 0``
    with a nonzero SCC total); ``lowering`` means the frontend cache
    hit but solving ran; ``cold`` means the program was lowered from
    source.  The reported tier is the hottest any flavor achieved —
    flavors share one lowering, so they agree on everything below it.
    """
    best = "cold"
    for entry in flavors.values():
        if entry.get("cache") != "hit":
            continue
        dense = entry.get("dense") or {}
        if (dense.get("summary_scc_total", 0) > 0
                and dense.get("sccs_resolved", 1) == 0):
            return "summary"
        best = "lowering"
    return best


def check_payload(name: str, digests: Mapping[str, str],
                  records, schedule: Optional[str] = None) -> dict:
    """The JSON response body for one checked program.

    Built parent-side from a ``digest_only`` check outcome: the finding
    lists never left the worker, only their digests and the per-flavor
    count-carrying telemetry records.
    """
    flavors: Dict[str, dict] = {}
    for record in records:
        if record.get("kind") != "check":
            continue
        flavor = record["flavor"]
        flavors[flavor] = {
            "digest": digests.get(flavor),
            "findings": record.get("findings", 0),
            "by_checker": record.get("by_checker", {}),
            "by_severity": record.get("by_severity", {}),
            "elapsed_seconds": record.get("elapsed_seconds"),
            "cache": record.get("cache"),
        }
        if record.get("dense") is not None:
            flavors[flavor]["dense"] = dict(record["dense"])
    tier = "cold"
    if flavors and all(entry.get("cache") == "hit"
                       for entry in flavors.values()):
        tier = "lowering"
    return {
        "program": str(name),
        "schedule": schedule,
        "flavors": flavors,
        "tier": tier,
    }
