"""Stdlib asyncio HTTP/1.1 adapter for the analysis service.

A deliberately small server — request line, headers, Content-Length
body, JSON in / JSON out, keep-alive — because the daemon's API is
five routes and its clients are benchmarks, CI smoke, and curl:

* ``POST /analyze`` — solve a program, return per-flavor digests,
  pair census, counters, and the cache ``tier`` that satisfied it.
* ``POST /check`` — run the bug-finding checkers, return per-flavor
  finding digests and counts (findings stay worker-side).
* ``POST /query`` — location sets for indirect memory operations.
* ``POST /slice`` — dependence-graph slices from a ``file:line``
  criterion or a checker finding key (shares ``/query``'s
  solved-result cache tier).
* ``GET /metrics`` — service counters (queue depth, tier hits,
  coalesced/shed counts, latency percentiles, cache stats).

Flow control lives in the service core: the adapter checks admission
*before* dispatching to the executor (shed requests get their 429 in
microseconds), applies the per-request timeout around the executor
future, and maps malformed inputs to 400/404/405/413.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from .core import AnalysisService, ServeConfig

#: Reject request bodies beyond this many bytes (HTTP 413).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Maximum bytes for the request line + headers block.
MAX_HEAD_BYTES = 64 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 504: "Gateway Timeout"}

_POST_ROUTES = ("analyze", "check", "query", "slice")


def _response_bytes(status: int, payload: dict,
                    keep_alive: bool) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode()
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n")
    return head.encode() + body


async def _read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
    try:
        return await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None  # client closed between requests — normal
    except asyncio.LimitOverrunError:
        return b""   # head too large — report 413


def _parse_head(head: bytes):
    """(method, path, headers, keep_alive) or None for garbage."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 total
        return None
    lines = text.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        return None
    method, path, version = parts
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    connection = headers.get("connection", "").lower()
    keep_alive = (version == "HTTP/1.1" and connection != "close") \
        or connection == "keep-alive"
    return method, path, headers, keep_alive


async def _handle_connection(service: AnalysisService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    loop = asyncio.get_running_loop()
    try:
        while True:
            head = await _read_head(reader)
            if head is None:
                break
            if not head:
                writer.write(_response_bytes(
                    413, {"error": "request head too large"}, False))
                break
            parsed = _parse_head(head)
            if parsed is None:
                writer.write(_response_bytes(
                    400, {"error": "malformed request"}, False))
                break
            method, path, headers, keep_alive = parsed
            status, payload = await _route(service, loop, reader,
                                           method, path, headers)
            writer.write(_response_bytes(status, payload, keep_alive))
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionError, asyncio.CancelledError,
            asyncio.IncompleteReadError):
        # IncompleteReadError: client hung up mid-body — nothing left
        # to answer; treat like any other peer-initiated disconnect.
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


async def _route(service: AnalysisService, loop,
                 reader: asyncio.StreamReader, method: str, path: str,
                 headers: dict) -> Tuple[int, dict]:
    endpoint = path.lstrip("/").split("?", 1)[0]
    if endpoint == "metrics":
        if method != "GET":
            return 405, {"error": "metrics is GET-only"}
        return 200, service.metrics_payload()
    if endpoint not in _POST_ROUTES:
        return 404, {"error": f"no such endpoint: /{endpoint}"}
    if method != "POST":
        return 405, {"error": f"/{endpoint} is POST-only"}
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        return 400, {"error": "bad Content-Length"}
    if length < 0:
        return 400, {"error": "bad Content-Length"}
    if length > MAX_BODY_BYTES:
        return 413, {"error": "request body too large"}
    body_bytes = await reader.readexactly(length) if length else b""
    try:
        body = json.loads(body_bytes or b"{}")
    except ValueError:
        return 400, {"error": "request body is not valid JSON"}
    if not isinstance(body, dict):
        return 400, {"error": "request body must be a JSON object"}
    if not service.try_begin():
        return 429, {"error": "service overloaded; retry later",
                     "queue_limit": service.config.queue_limit}
    try:
        future = loop.run_in_executor(service.executor, service.handle,
                                      endpoint, body)
        timeout = service.config.timeout_seconds or None
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            # The computation keeps running on its thread and will
            # still populate the caches — a retry after the budget
            # expires is typically a solution-tier hit.  note_timeout
            # keeps the busy thread counted against admission (as a
            # zombie) until the future actually resolves.
            service.note_timeout(future)
            return 504, {"error": "request exceeded the time budget",
                         "timeout_seconds": timeout}
    finally:
        service.end()


async def start_server(service: AnalysisService):
    """Bind and return the ``asyncio.Server`` (caller owns lifetime)."""

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(
        handler, service.config.host, service.config.port,
        limit=MAX_HEAD_BYTES)


def run_server(config: ServeConfig, ready=None) -> int:
    """Run the daemon until interrupted; the ``repro serve`` entry.

    ``ready`` (optional callable) receives the bound ``(host, port)``
    once the socket is listening — the smoke harness and tests use it
    instead of parsing stdout.
    """
    service = AnalysisService(config)

    async def main() -> None:
        server = await start_server(service)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"repro-serve listening on http://{host}:{port} "
              f"(workers={service.pool.max_workers}, "
              f"queue_limit={config.queue_limit})", flush=True)
        if ready is not None:
            ready((host, port))
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
    return 0
