"""Lightweight phase timing for benchmarks and drivers.

:class:`PhaseTimer` accumulates named wall-clock phases; `best_of`
repeats a callable and keeps the fastest run (the usual way to quote a
throughput number that is dominated by the work, not by scheduler
noise).  Nothing here imports the analyses — the benchmarks under
``benchmarks/`` compose these with the solver entry points.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Tuple


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    >>> timer = PhaseTimer()
    >>> with timer.phase("lower"):
    ...     pass
    >>> sorted(timer.as_dict()) == ["lower"]
    True

    Re-entering a phase name accumulates, so per-item loops can time
    a shared phase without bookkeeping.
    """

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def total(self) -> float:
        return sum(self.phases.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self.phases)


def best_of(fn: Callable[[], object], repeats: int = 3
            ) -> Tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (fastest seconds, that
    run's return value)."""
    best = float("inf")
    best_result: object = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, best_result = elapsed, result
    return best, best_result
