"""Structured run telemetry: machine-readable cost records.

The paper argues its CI-vs-CS verdict through cost accounting —
transfer functions executed, meet operations performed, analysis wall
time (Figure 7) — so the reproduction records exactly those quantities
as first-class data instead of ad-hoc prints.  Every analysis run
(inline, parallel worker, or benchmark) can be rendered as one JSON
record per ``(program, flavor)``; drivers concatenate them into a
JSON-lines stream (``--telemetry PATH`` on the CLI).

Record schema (``schema`` = :data:`SCHEMA_VERSION`):

``kind="analysis"`` records::

    {
      "schema": 1, "kind": "analysis", "status": "ok",
      "program": "anagram", "flavor": "insensitive",
      "schedule": "batched",
      "counters": {"transfers": N, "meets": N, "pairs_added": N,
                   "batches": N},          # Counters.as_dict(extended)
      "phases":   {"preprocess": s, "parse": s, "lower": s, "solve": s},
                   # or {"preprocess": s, "cache_load": s, "solve": s}
                   # frontend phases are program-level (shared by every
                   # flavor of the same program); "solve" is per-flavor
      "elapsed_seconds": s,                # solver wall time
      "cache": "hit" | "miss" | "off",     # lowering-cache outcome
      "worker_pid": 1234,                  # process that ran the solve
      "peak_rss_kb": 45678,                # that process's peak RSS
      "rss_scope": "worker" | "process",   # whose memory that is
      "rss_delta_kb": 123                  # process-scope records only
    }

Records produced through :func:`repro.runner.run_tasks` carry
``rss_scope``: ``"worker"`` means ``peak_rss_kb`` measured a pool
process that ran (approximately) only that task; ``"process"`` means
the task ran inline in the driver, whose cumulative peak covers every
earlier task too — read ``rss_delta_kb`` (growth of the process peak
over the pre-task baseline, 0 when the task fit under the existing
high-water mark) for the per-task attribution.

``kind="error"`` records replace ``flavor``/``counters``/``phases``
with an ``error`` object ``{"kind", "message", "traceback"}`` naming
the failing task — a crashed worker still yields one line.

``kind="fuzz"`` records (one per generated program checked by
``repro fuzz``) carry ``seed`` — enough to regenerate the program —
plus oracle ``stats``, the ``violations`` list (empty when
``status="ok"``), the active ``mutation`` if any, and
``shrunk_lines`` for minimized failures.

``kind="check"`` records (one per (program, flavor) pass of ``repro
check``) carry the finding count, per-checker and per-severity
breakdowns, the deterministic finding ``digest``, checker wall time,
and a ``dense`` object with ``decode_calls_before``/``_after`` around
the checker sweep.

``kind="slice"`` records (one per ``repro slice`` computation) carry
the criterion and direction, the slice size / origin count / digest,
the dependence graph's node and per-kind edge counts and digest, and a
``dense`` object with ``decode_calls_before``/``_after`` around graph
construction — the evidence that mem-edge resolution stayed on the
bitset representation.

``kind="serve"`` records (periodic snapshots from ``repro serve``)
carry the daemon's request counters — queue depth, cache hits by tier
(``solution``/``summary``/``lowering`` vs ``cold``), coalesced and
shed request counts, per-tier evictions, and nearest-rank p50/p95
request latencies.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional

from .analysis.common import AnalysisResult

#: Bump when a record's field layout changes incompatibly.
SCHEMA_VERSION = 1


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of *this* process in KiB, or ``None``
    where the ``resource`` module is unavailable (non-POSIX)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only container
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        rss //= 1024
    return int(rss)


def result_record(program: str, result: AnalysisResult,
                  schedule: Optional[str] = None) -> Dict[str, object]:
    """One ``kind="analysis"`` record for a finished analysis run.

    Counters come straight from ``result.counters.as_dict``; phases
    merge the program-level frontend timings (preprocess/parse/lower or
    cache_load, recorded by :func:`repro.frontend.lower.lower_file`)
    with the solver's own ``solve`` phase.  Runs of the dense bitset
    engine additionally carry a ``"dense"`` object — fact ids
    allocated, total 64-bit bitset words in the solution, bitset→object
    decode calls, and (under the SCC schedule) the condensation's
    component count.  These describe the *representation*, not the
    analysis: unlike the paper counters they may vary between processes
    with differently warmed fact tables.
    """
    record = {
        "schema": SCHEMA_VERSION,
        "kind": "analysis",
        "status": "ok",
        "program": str(program),
        "flavor": result.flavor,
        "schedule": schedule,
        "counters": result.counters.as_dict(extended=True),
        "phases": {name: round(seconds, 6)
                   for name, seconds in result.phases.items()},
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "cache": result.cache_status,
        "worker_pid": os.getpid(),
        "peak_rss_kb": peak_rss_kb(),
    }
    dense = result.extras.get("dense")
    if dense is not None:
        record["dense"] = dict(dense)
    return record


def result_records(program: str,
                   results: Mapping[str, AnalysisResult],
                   schedule: Optional[str] = None
                   ) -> List[Dict[str, object]]:
    """Records for every flavor of one program, in mapping order."""
    return [result_record(program, result, schedule)
            for result in results.values()]


def fuzz_record(outcome, mutation: Optional[str] = None
                ) -> Dict[str, object]:
    """One ``kind="fuzz"`` record for a checked generated program.

    ``outcome`` is a :class:`repro.fuzz.driver.FuzzOutcome`; the record
    carries the seed (sufficient to regenerate the program), the
    oracle's size stats, and — on failure — every violation plus the
    shrunk reproducer's line count.
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": "fuzz",
        "status": "ok" if outcome.ok else "violation",
        "program": outcome.name,
        "seed": outcome.seed,
        "mutation": mutation,
        "stats": dict(outcome.stats),
        "violations": [{"kind": v.kind, "line": v.line,
                        "detail": v.detail}
                       for v in outcome.violations],
        "shrunk_lines": outcome.shrunk_lines,
        "elapsed_seconds": round(outcome.elapsed_seconds, 6),
        "worker_pid": os.getpid(),
        "peak_rss_kb": peak_rss_kb(),
    }


def check_record(program: str, flavor: str, findings,
                 elapsed_seconds: float,
                 schedule: Optional[str] = None,
                 dense: Optional[Mapping[str, object]] = None,
                 cache: Optional[str] = None
                 ) -> Dict[str, object]:
    """One ``kind="check"`` record per (program, flavor) checker run.

    Carries the per-checker and per-severity finding counts, the
    witness-free finding digest (the cross-schedule / cross-jobs
    comparison handle), checker wall time, and — when supplied — a
    ``"dense"`` object with the fact table's ``decode_calls`` counter
    before and after the checker sweep, showing how much of the run
    stayed on the bitset representation.  ``cache`` is the *lowering*
    cache status of the checked program; a ``check --flavor all``
    invocation lowers the hazard model once per task, so each flavor's
    record carries the same status — the explicit evidence that
    flavors share one lowering rather than re-lowering per flavor.
    """
    from .analysis.checkers import count_by_checker, findings_digest

    by_severity: Dict[str, int] = {}
    for finding in findings:
        by_severity[finding.severity] = \
            by_severity.get(finding.severity, 0) + 1
    record = {
        "schema": SCHEMA_VERSION,
        "kind": "check",
        "status": "ok",
        "program": str(program),
        "flavor": flavor,
        "schedule": schedule,
        "findings": len(findings),
        "by_checker": count_by_checker(findings),
        "by_severity": by_severity,
        "digest": findings_digest(findings),
        "elapsed_seconds": round(elapsed_seconds, 6),
        "worker_pid": os.getpid(),
        "peak_rss_kb": peak_rss_kb(),
    }
    if cache is not None:
        record["cache"] = cache
    if dense is not None:
        record["dense"] = dict(dense)
    return record


def slice_record(program: str, flavor: str, slice_dict: Mapping[str, object],
                 graph_stats: Mapping[str, int], graph_digest: str,
                 elapsed_seconds: float,
                 schedule: Optional[str] = None,
                 dense: Optional[Mapping[str, object]] = None,
                 cache: Optional[str] = None) -> Dict[str, object]:
    """One ``kind="slice"`` record per computed slice.

    ``slice_dict`` is ``SliceResult.as_dict()``; ``graph_stats`` /
    ``graph_digest`` describe the dependence graph the slice ran over
    (node count, per-kind edge counts, content digest — the
    cross-schedule / cross-jobs comparison handles).  ``dense`` carries
    the fact table's ``decode_calls`` counter before and after graph
    construction, showing mem-edge resolution stayed mask-level.
    """
    record = {
        "schema": SCHEMA_VERSION,
        "kind": "slice",
        "status": "ok",
        "program": str(program),
        "flavor": flavor,
        "schedule": schedule,
        "criterion": slice_dict["criterion"],
        "direction": slice_dict["direction"],
        "slice_size": slice_dict["size"],
        "slice_origins": len(slice_dict["origins"]),
        "slice_digest": slice_dict["digest"],
        "graph": dict(graph_stats, digest=graph_digest),
        "elapsed_seconds": round(elapsed_seconds, 6),
        "worker_pid": os.getpid(),
        "peak_rss_kb": peak_rss_kb(),
    }
    if cache is not None:
        record["cache"] = cache
    if dense is not None:
        record["dense"] = dict(dense)
    return record


def percentile(values, fraction: float) -> Optional[float]:
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1]),
    or ``None`` for an empty sample.  Nearest-rank (not interpolated)
    so the reported latency is always one a real request paid."""
    ordered = sorted(values)
    if not ordered:
        return None
    rank = max(0, min(len(ordered) - 1,
                      int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def serve_record(stats: Mapping[str, object]) -> Dict[str, object]:
    """One ``kind="serve"`` record: a daemon metrics snapshot.

    Written by ``repro serve`` on each request completion batch (and on
    shutdown), carrying the service counters that matter for capacity
    planning — queue depth, per-tier cache hits (``solution`` /
    ``summary`` / ``lowering`` vs ``cold``), coalesced duplicate
    requests, shed (429) requests, eviction counts per LRU tier, and
    nearest-rank p50/p95 request latency.  ``stats`` is
    ``repro.serve.core.Metrics.snapshot()``; the record embeds it
    verbatim under the standard envelope so the JSON-lines stream stays
    self-describing.
    """
    record: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "kind": "serve",
        "status": "ok",
        "worker_pid": os.getpid(),
        "peak_rss_kb": peak_rss_kb(),
    }
    record.update(stats)
    return record


def error_record(program: str, kind: str, message: str,
                 traceback_text: Optional[str] = None
                 ) -> Dict[str, object]:
    """One ``kind="error"`` record naming a failed task."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "error",
        "status": "error",
        "program": str(program),
        "flavor": None,
        "error": {
            "kind": kind,
            "message": message,
            "traceback": traceback_text,
        },
        "worker_pid": os.getpid(),
        "peak_rss_kb": peak_rss_kb(),
    }


class TelemetryWriter:
    """Writes records as JSON lines to a path (``"-"`` for stdout).

    Usable as a context manager; ``write`` flushes per record so a
    crash mid-run still leaves every completed record on disk.
    """

    def __init__(self, path) -> None:
        self.path = path
        if str(path) == "-":
            self._fh = sys.stdout
            self._owns_fh = False
        else:
            target = Path(path)
            if target.parent != Path(""):
                target.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(target, "w")
            self._owns_fh = True
        self.written = 0

    def write(self, record: Mapping[str, object]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.written += 1

    def write_all(self, records: Iterable[Mapping[str, object]]) -> int:
        for record in records:
            self.write(record)
        return self.written

    def close(self) -> None:
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_jsonl(path, records: Iterable[Mapping[str, object]]) -> int:
    """Write ``records`` to ``path`` as JSON lines; returns the count."""
    with TelemetryWriter(path) as writer:
        return writer.write_all(records)


def read_jsonl(path) -> List[Dict[str, object]]:
    """Load a JSON-lines telemetry stream (skipping blank lines)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
