"""Benchmark suite: the 13 Figure 2 programs plus adversarial
generators where context-sensitivity provably wins."""

from .adversarial import (
    assumption_chain_source,
    cs_wins_source,
    deep_chain_source,
    load_assumption_chain,
    load_cs_wins,
    load_deep_chain,
    load_swap_cells,
    swap_cells_source,
)
from .registry import (
    PROGRAM_NAMES,
    load_all,
    load_program,
    program_path,
    source_text,
)

__all__ = [
    "PROGRAM_NAMES",
    "assumption_chain_source",
    "cs_wins_source",
    "deep_chain_source",
    "load_all",
    "load_assumption_chain",
    "load_cs_wins",
    "load_deep_chain",
    "load_program",
    "load_swap_cells",
    "program_path",
    "source_text",
    "swap_cells_source",
]
