"""The benchmark suite: 13 programs named after the paper's Figure 2.

The original benchmarks (from Landi, Austin, the FSF, and SPEC92) are
not redistributable; these are synthetic stand-ins written for this
reproduction with the same names, domains, and pointer-usage character
— see DESIGN.md's substitution table for why that preserves the
evaluation's shape.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from ..errors import SuiteError
from ..ir.graph import Program
from ..frontend.lower import lower_file

#: Figure 2's benchmark names, in the paper's order.
PROGRAM_NAMES: List[str] = [
    "allroots",
    "anagram",
    "assembler",
    "backprop",
    "bc",
    "compiler",
    "compress",
    "lex315",
    "loader",
    "part",
    "simulator",
    "span",
    "yacr2",
]

_PROGRAMS_DIR = Path(__file__).parent / "programs"


def program_path(name: str) -> Path:
    """Path to a suite program's C source."""
    if name not in PROGRAM_NAMES:
        raise SuiteError(
            f"unknown suite program {name!r}; expected one of "
            f"{', '.join(PROGRAM_NAMES)}")
    path = _PROGRAMS_DIR / f"{name}.c"
    if not path.is_file():
        raise SuiteError(f"suite program source missing: {path}")
    return path


def source_text(name: str) -> str:
    """The C source of a suite program."""
    return program_path(name).read_text()


def load_program(name: str, cache: object = True, **options) -> Program:
    """Preprocess, parse, and lower one suite program.

    Suite sources are immutable single files, so the persistent
    lowering cache is on by default (a content-hash key still catches
    local edits); pass ``cache=False`` or set ``REPRO_NO_CACHE=1`` to
    lower from scratch.
    """
    return lower_file(program_path(name), cache=cache, **options)


def load_all(cache: object = True, **options) -> Dict[str, Program]:
    """Lower the entire suite, keyed by program name."""
    return {name: load_program(name, cache=cache, **options)
            for name in PROGRAM_NAMES}


def fuzz_corpus(seed: int = 0, count: int = 20, max_nodes: int = 80):
    """A deterministic corpus of generated pointer programs.

    Thin wrapper over :func:`repro.fuzz.generator.generate_program`
    so tests and benchmarks can ask the suite layer for synthetic
    inputs the same way they ask for the Figure 2 stand-ins.  The
    corpus is a pure function of ``(seed, count, max_nodes)``.
    """
    from ..fuzz.generator import generate_program

    return [generate_program(seed + i, max_nodes=max_nodes)
            for i in range(count)]
