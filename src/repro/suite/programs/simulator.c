/* simulator -- an instruction-level simulator for a small register
 * machine.
 *
 * Pointer character (after the Landi original): a decoded-instruction
 * cache of structs, register-file and memory arrays accessed through
 * operand pointers that may designate either (multi-target reads and
 * writes), and a dispatch table of function pointers — the paper notes
 * its benchmarks "make only light use of indirect function calls", and
 * this is the suite's one user of them.
 */

extern void *malloc(unsigned long n);
extern int printf(const char *fmt, ...);

#define NREGS 8
#define MEMWORDS 64
#define MAXPROG 32

/* Opcodes. */
#define OP_NOP 0
#define OP_LI 1     /* rd <- imm */
#define OP_MOV 2    /* rd <- rs */
#define OP_ADD 3    /* rd <- rd + rs */
#define OP_LD 4     /* rd <- mem[rs] */
#define OP_ST 5     /* mem[rd] <- rs */
#define OP_BNZ 6    /* if (rd) pc <- imm */
#define OP_OUT 7    /* print rd */
#define NOPCODES 8

struct machine {
    int regs[NREGS];
    int memory[MEMWORDS];
    int pc;
    int halted;
    long cycles;
};

struct decoded {
    int opcode;
    int rd, rs, imm;
};

static struct machine cpu;
static struct decoded icache[MAXPROG];
static int program_len;

/* Operand resolution: a register or a memory cell, selected by the
 * addressing mode — the returned pointer may designate either array. */
static int *operand_cell(struct machine *m, int is_mem, int index)
{
    if (is_mem)
        return &m->memory[index & (MEMWORDS - 1)];
    return &m->regs[index & (NREGS - 1)];
}

/* -- one handler per opcode, dispatched through function pointers ----- */

static void do_nop(struct machine *m, struct decoded *d)
{
    (void)d;
    m->pc = m->pc + 1;
}

static void do_li(struct machine *m, struct decoded *d)
{
    int *rd = operand_cell(m, 0, d->rd);
    *rd = d->imm;
    m->pc = m->pc + 1;
}

static void do_mov(struct machine *m, struct decoded *d)
{
    int *rd = operand_cell(m, 0, d->rd);
    int *rs = operand_cell(m, 0, d->rs);
    *rd = *rs;
    m->pc = m->pc + 1;
}

static void do_add(struct machine *m, struct decoded *d)
{
    int *rd = operand_cell(m, 0, d->rd);
    int *rs = operand_cell(m, 0, d->rs);
    *rd = *rd + *rs;
    m->pc = m->pc + 1;
}

static void do_ld(struct machine *m, struct decoded *d)
{
    int *rd = operand_cell(m, 0, d->rd);
    int *addr = operand_cell(m, 0, d->rs);
    int *cell = operand_cell(m, 1, *addr);
    *rd = *cell;
    m->pc = m->pc + 1;
}

static void do_st(struct machine *m, struct decoded *d)
{
    int *addr = operand_cell(m, 0, d->rd);
    int *cell = operand_cell(m, 1, *addr);
    int *rs = operand_cell(m, 0, d->rs);
    *cell = *rs;
    m->pc = m->pc + 1;
}

static void do_bnz(struct machine *m, struct decoded *d)
{
    int *rd = operand_cell(m, 0, d->rd);
    if (*rd)
        m->pc = d->imm;
    else
        m->pc = m->pc + 1;
}

static void do_out(struct machine *m, struct decoded *d)
{
    int *rd = operand_cell(m, 0, d->rd);
    printf("out: %d\n", *rd);
    m->pc = m->pc + 1;
}

typedef void (*handler_fn)(struct machine *m, struct decoded *d);

static handler_fn dispatch[NOPCODES] = {
    do_nop, do_li, do_mov, do_add, do_ld, do_st, do_bnz, do_out,
};

/* -- program assembly into the decoded cache -------------------------------- */

static void instr(int opcode, int rd, int rs, int imm)
{
    struct decoded *d = &icache[program_len];
    d->opcode = opcode;
    d->rd = rd;
    d->rs = rs;
    d->imm = imm;
    program_len = program_len + 1;
}

/* sum = 1 + 2 + ... + 10, stored to memory cell 0. */
static void build_program(void)
{
    program_len = 0;
    instr(OP_LI, 0, 0, 0);    /* r0 = 0   (sum)      */
    instr(OP_LI, 1, 0, 10);   /* r1 = 10  (counter)  */
    instr(OP_LI, 2, 0, 0);    /* r2 = 0   (mem addr) */
    instr(OP_LI, 3, 0, -1);   /* r3 = -1             */
    instr(OP_ADD, 0, 1, 0);   /* loop: sum += counter */
    instr(OP_ADD, 1, 3, 0);   /* counter -= 1        */
    instr(OP_BNZ, 1, 0, 4);   /* if counter, branch to loop */
    instr(OP_ST, 2, 0, 0);    /* mem[r2] = sum       */
    instr(OP_OUT, 0, 0, 0);
    instr(OP_NOP, 0, 0, 0);
}

static void reset(struct machine *m)
{
    int i;
    for (i = 0; i < NREGS; i++)
        m->regs[i] = 0;
    for (i = 0; i < MEMWORDS; i++)
        m->memory[i] = 0;
    m->pc = 0;
    m->halted = 0;
    m->cycles = 0;
}

static long run(struct machine *m, long max_cycles)
{
    while (m->pc < program_len && m->cycles < max_cycles) {
        struct decoded *d = &icache[m->pc];
        handler_fn h = dispatch[d->opcode & (NOPCODES - 1)];
        h(m, d);
        m->cycles = m->cycles + 1;
    }
    return m->cycles;
}

int main(void)
{
    long cycles;
    build_program();
    reset(&cpu);
    cycles = run(&cpu, 1000);
    printf("ran %ld cycles, mem[0] = %d, sum reg = %d\n",
           cycles, cpu.memory[0], cpu.regs[0]);
    return cpu.memory[0] == 55 ? 0 : 1;
}
