/* allroots -- find all real roots of a polynomial by recursive
 * bisection over sign changes of the derivative chain.
 *
 * Pointer character (matching the original Landi benchmark): arrays of
 * coefficients passed by pointer, output parameters for roots, and
 * pointer walks over coefficient vectors.
 */

extern int printf(const char *fmt, ...);
extern void *malloc(unsigned long n);
extern double fabs(double x);

#define MAXDEG 16
#define MAXROOTS 64
#define EPS 1e-9

/* Evaluate a polynomial (degree n, coefficients c[0..n]) at x. */
static double poly_eval(double *c, int n, double x)
{
    double acc = 0.0;
    double *p = c + n;
    int i;
    for (i = n; i >= 0; i--) {
        acc = acc * x + *p;
        p--;
    }
    return acc;
}

/* Differentiate: write the derivative's coefficients into d. */
static int poly_deriv(double *c, int n, double *d)
{
    int i;
    for (i = 1; i <= n; i++)
        d[i - 1] = c[i] * (double)i;
    return n - 1;
}

/* Bisect a bracketing interval down to EPS; store the root through
 * the output pointer and report success. */
static int bisect(double *c, int n, double lo, double hi, double *root)
{
    double flo = poly_eval(c, n, lo);
    double fhi = poly_eval(c, n, hi);
    double mid, fmid;
    int iter;

    if (flo == 0.0) { *root = lo; return 1; }
    if (fhi == 0.0) { *root = hi; return 1; }
    if ((flo < 0.0) == (fhi < 0.0))
        return 0;
    for (iter = 0; iter < 200; iter++) {
        mid = 0.5 * (lo + hi);
        fmid = poly_eval(c, n, mid);
        if (fabs(fmid) < EPS || hi - lo < EPS) {
            *root = mid;
            return 1;
        }
        if ((fmid < 0.0) == (flo < 0.0)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    *root = 0.5 * (lo + hi);
    return 1;
}

/* Find all roots of c (degree n) in [lo, hi], using the roots of the
 * derivative as bracket boundaries.  Returns the number of roots
 * appended through the roots pointer. */
static int all_roots(double *c, int n, double lo, double hi,
                     double *roots)
{
    double deriv[MAXDEG + 1];
    double crit[MAXROOTS];
    double bounds[MAXROOTS + 2];
    int ncrit, nbounds, nroots, dn, i;
    double r;

    if (n <= 0)
        return 0;
    if (n == 1) {
        if (fabs(c[1]) < EPS)
            return 0;
        r = -c[0] / c[1];
        if (r >= lo && r <= hi) {
            roots[0] = r;
            return 1;
        }
        return 0;
    }
    dn = poly_deriv(c, n, deriv);
    ncrit = all_roots(deriv, dn, lo, hi, crit);

    bounds[0] = lo;
    for (i = 0; i < ncrit; i++)
        bounds[i + 1] = crit[i];
    bounds[ncrit + 1] = hi;
    nbounds = ncrit + 2;

    nroots = 0;
    for (i = 0; i + 1 < nbounds; i++) {
        if (bisect(c, n, bounds[i], bounds[i + 1], &r)) {
            if (nroots == 0 || fabs(roots[nroots - 1] - r) > EPS) {
                roots[nroots] = r;
                nroots++;
            }
        }
    }
    return nroots;
}

/* A small battery of test polynomials. */
static double case1[4] = { -6.0, 11.0, -6.0, 1.0 };   /* (x-1)(x-2)(x-3) */
static double case2[3] = { -2.0, 0.0, 1.0 };          /* x^2 - 2 */
static double case3[5] = { 0.0, -1.0, 0.0, 1.0, 0.0 };/* x^3 - x (deg 4 pad) */

static void report(const char *name, double *roots, int count)
{
    int i;
    printf("%s: %d roots:", name, count);
    for (i = 0; i < count; i++)
        printf(" %f", roots[i]);
    printf("\n");
}

/* Coefficients are staged into this working vector before each run,
 * so the evaluator's pointer walks see at most the working vector and
 * the derivative chain's (recursive-local) storage. */
static double work[MAXDEG + 1];

static int solve(const char *name, double *source, int degree)
{
    double roots[MAXROOTS];
    int count, i;
    for (i = 0; i <= degree; i++)
        work[i] = source[i];
    count = all_roots(work, degree, -10.0, 10.0, roots);
    report(name, roots, count);
    return count;
}

int main(void)
{
    int total = 0;
    total += solve("case1", case1, 3);  /* roots 1, 2, 3       */
    total += solve("case2", case2, 2);  /* roots ±sqrt(2)      */
    total += solve("case3", case3, 3);  /* roots -1, 0, 1      */
    return total == 8 ? 0 : 1;
}
