/* lex315 -- a table-driven lexical scanner.
 *
 * Pointer character (after the Landi original): a DFA transition table
 * walked by pointer, char* cursors over the input buffer, and a token
 * record filled through pointer parameters.
 */

extern int printf(const char *fmt, ...);
extern int strcmp(const char *a, const char *b);
extern char *strcpy(char *dst, const char *src);

#define NSTATES 8
#define NCLASSES 6
#define MAXTOK 64

/* Character classes. */
#define C_LETTER 0
#define C_DIGIT 1
#define C_SPACE 2
#define C_OP 3
#define C_QUOTE 4
#define C_OTHER 5

/* States. */
#define S_START 0
#define S_IDENT 1
#define S_NUMBER 2
#define S_STRING 3
#define S_OPER 4
#define S_DONE_IDENT 5
#define S_DONE_NUMBER 6
#define S_DONE_OTHER 7

/* Token kinds. */
#define T_IDENT 1
#define T_NUMBER 2
#define T_STRING 3
#define T_OP 4
#define T_KEYWORD 5
#define T_EOF 0

struct token {
    int kind;
    char text[MAXTOK];
    int length;
};

static int transitions[NSTATES][NCLASSES] = {
    /* START  */ { S_IDENT, S_NUMBER, S_START, S_OPER, S_STRING, S_START },
    /* IDENT  */ { S_IDENT, S_IDENT, S_DONE_IDENT, S_DONE_IDENT,
                   S_DONE_IDENT, S_DONE_IDENT },
    /* NUMBER */ { S_DONE_NUMBER, S_NUMBER, S_DONE_NUMBER, S_DONE_NUMBER,
                   S_DONE_NUMBER, S_DONE_NUMBER },
    /* STRING */ { S_STRING, S_STRING, S_STRING, S_STRING, S_DONE_OTHER,
                   S_STRING },
    /* OPER   */ { S_DONE_OTHER, S_DONE_OTHER, S_DONE_OTHER, S_OPER,
                   S_DONE_OTHER, S_DONE_OTHER },
    /* DONE states never consulted: */
    { 0, 0, 0, 0, 0, 0 },
    { 0, 0, 0, 0, 0, 0 },
    { 0, 0, 0, 0, 0, 0 },
};

static char *keywords[] = { "if", "else", "while", "return", "int" };
#define NKEYWORDS (sizeof(keywords) / sizeof(keywords[0]))

static char source_text[] =
    "while (count < 315) { total = total + count; count = count + 1; } "
    "if (total) return \"done\"; else return \"empty\";";

static int classify(int c)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_')
        return C_LETTER;
    if (c >= '0' && c <= '9')
        return C_DIGIT;
    if (c == ' ' || c == '\t' || c == '\n')
        return C_SPACE;
    if (c == '"')
        return C_QUOTE;
    if (c == '+' || c == '-' || c == '*' || c == '/' || c == '=' ||
        c == '<' || c == '>' || c == '(' || c == ')' || c == '{' ||
        c == '}' || c == ';')
        return C_OP;
    return C_OTHER;
}

/* Promote identifiers that are keywords. */
static void keywordize(struct token *tok)
{
    unsigned long i;
    for (i = 0; i < NKEYWORDS; i++) {
        if (strcmp(tok->text, keywords[i]) == 0) {
            tok->kind = T_KEYWORD;
            return;
        }
    }
}

/* Scan one token starting at *cursor; advance the cursor through the
 * pointer-to-pointer parameter. */
static int next_token(char **cursor, struct token *tok)
{
    char *p = *cursor;
    int state = S_START;
    int len = 0;

    tok->kind = T_EOF;
    tok->length = 0;
    tok->text[0] = '\0';
    while (*p) {
        int cls = classify(*p);
        int next = transitions[state][cls];
        if (next == S_DONE_IDENT || next == S_DONE_NUMBER ||
            next == S_DONE_OTHER) {
            state = next;
            if (state == S_DONE_OTHER && classify(*p) == C_QUOTE)
                p++;  /* consume the closing quote */
            break;
        }
        if (next != S_START && len < MAXTOK - 1) {
            tok->text[len] = *p;
            len = len + 1;
        }
        state = next;
        p++;
    }
    tok->text[len] = '\0';
    tok->length = len;
    *cursor = p;

    switch (state) {
    case S_IDENT:
    case S_DONE_IDENT:
        tok->kind = T_IDENT;
        keywordize(tok);
        break;
    case S_NUMBER:
    case S_DONE_NUMBER:
        tok->kind = T_NUMBER;
        break;
    case S_STRING:
    case S_DONE_OTHER:
        tok->kind = (len > 0 && tok->text[0] == '"') ? T_STRING : T_OP;
        if (len > 0)
            tok->kind = T_OP;
        if (state == S_DONE_OTHER)
            tok->kind = T_STRING;
        break;
    default:
        tok->kind = len ? T_OP : T_EOF;
        break;
    }
    if (len == 0 && *p == '\0')
        tok->kind = T_EOF;
    return tok->kind;
}

int main(void)
{
    char *cursor = source_text;
    struct token tok;
    int counts[6] = { 0, 0, 0, 0, 0, 0 };
    int kind;

    while ((kind = next_token(&cursor, &tok)) != T_EOF)
        counts[kind] = counts[kind] + 1;

    printf("identifiers=%d numbers=%d strings=%d operators=%d keywords=%d\n",
           counts[T_IDENT], counts[T_NUMBER], counts[T_STRING],
           counts[T_OP], counts[T_KEYWORD]);
    return 0;
}
