/* anagram -- group a word list into anagram classes.
 *
 * Pointer character (after the Landi original): char* heavy — a static
 * dictionary of string literals, heap-copied words, letter-count
 * signatures, and a linked list of anagram classes each carrying a
 * list of member words.
 */

extern void *malloc(unsigned long n);
extern int printf(const char *fmt, ...);
extern unsigned long strlen(const char *s);
extern int strcmp(const char *a, const char *b);
extern char *strcpy(char *dst, const char *src);

#define ALPHA 26

struct word {
    char *text;
    struct word *next;
};

struct class {
    int counts[ALPHA];
    struct word *members;
    int size;
    struct class *next;
};

static struct class *classes;

static char *dictionary[] = {
    "listen", "silent", "enlist", "tinsel",
    "rat", "tar", "art",
    "stone", "tones", "notes", "onset",
    "pale", "leap", "peal", "plea",
    "spot",
};

#define NWORDS (sizeof(dictionary) / sizeof(dictionary[0]))

/* Copy a word into the heap (one site for all word text). */
static char *save_text(const char *s)
{
    char *copy = malloc(strlen(s) + 1);
    strcpy(copy, s);
    return copy;
}

/* Letter-count signature of a word, written through the out array. */
static void signature(const char *s, int *counts)
{
    int i;
    const char *p;
    for (i = 0; i < ALPHA; i++)
        counts[i] = 0;
    for (p = s; *p; p++) {
        int c = *p - 'a';
        if (c >= 0 && c < ALPHA)
            counts[c] = counts[c] + 1;
    }
}

static int same_signature(int *a, int *b)
{
    int i;
    for (i = 0; i < ALPHA; i++)
        if (a[i] != b[i])
            return 0;
    return 1;
}

/* Find the class with this signature, or create one. */
static struct class *find_class(int *counts)
{
    struct class *c;
    int i;
    for (c = classes; c; c = c->next)
        if (same_signature(c->counts, counts))
            return c;
    c = malloc(sizeof(struct class));
    for (i = 0; i < ALPHA; i++)
        c->counts[i] = counts[i];
    c->members = 0;
    c->size = 0;
    c->next = classes;
    classes = c;
    return c;
}

static void add_word(struct class *c, char *text)
{
    struct word *w = malloc(sizeof(struct word));
    w->text = text;
    w->next = c->members;
    c->members = w;
    c->size = c->size + 1;
}

/* A class summary returned by value: an aggregate carrying pointers
 * flows through the call as a first-class value. */
struct summary {
    char *longest;
    int members;
};

static struct summary summarize(struct class *c)
{
    struct summary s;
    struct word *w;
    s.longest = 0;
    s.members = c->size;
    for (w = c->members; w; w = w->next)
        if (!s.longest || strlen(w->text) > strlen(s.longest))
            s.longest = w->text;
    return s;
}

int main(void)
{
    unsigned long i;
    int sig[ALPHA];
    struct class *c;
    int groups = 0;

    classes = 0;
    for (i = 0; i < NWORDS; i++) {
        char *text = save_text(dictionary[i]);
        signature(text, sig);
        add_word(find_class(sig), text);
    }
    for (c = classes; c; c = c->next) {
        if (c->size > 1) {
            struct summary s = summarize(c);
            struct word *w;
            groups = groups + 1;
            printf("class of %d (longest %s):", s.members, s.longest);
            for (w = c->members; w; w = w->next)
                printf(" %s", w->text);
            printf("\n");
        }
    }
    printf("%d anagram groups\n", groups);
    return 0;
}
