/* yacr2 -- yet another channel router: assign nets crossing a routing
 * channel to horizontal tracks without vertical-constraint violations.
 *
 * Pointer character (after the SPEC/Landi original): an array of net
 * structs, per-track occupancy lists reached through a pointer chosen
 * from the track table (multi-target by construction is avoided — the
 * track rows come from one allocation site), and dense index arrays.
 */

extern void *malloc(unsigned long n);
extern int printf(const char *fmt, ...);

#define MAXNETS 16
#define MAXCOLS 32
#define MAXTRACKS 8

struct net {
    int id;
    int left;     /* leftmost column */
    int right;    /* rightmost column */
    int track;    /* assigned track, or -1 */
};

struct track {
    int *occupied;      /* per-column occupancy map (heap) */
    int nets_here;
};

static struct net nets[MAXNETS];
static int nnets;
static struct track tracks[MAXTRACKS];
static int ntracks;

/* -- channel construction ------------------------------------------------- */

static void add_net(int left, int right)
{
    struct net *n = &nets[nnets];
    n->id = nnets;
    n->left = left < right ? left : right;
    n->right = left < right ? right : left;
    n->track = -1;
    nnets = nnets + 1;
}

static void init_tracks(void)
{
    int t, c;
    ntracks = MAXTRACKS;
    for (t = 0; t < ntracks; t++) {
        tracks[t].occupied = malloc(MAXCOLS * sizeof(int));
        tracks[t].nets_here = 0;
        for (c = 0; c < MAXCOLS; c++)
            tracks[t].occupied[c] = 0;
    }
}

/* -- assignment ----------------------------------------------------------------- */

/* Whether a net fits on a track: no occupied column in its span. */
static int fits(struct track *t, struct net *n)
{
    int c;
    int *map = t->occupied;
    for (c = n->left; c <= n->right; c++)
        if (map[c])
            return 0;
    return 1;
}

/* Claim a net's span on a track's occupancy map. */
static void claim(struct track *t, struct net *n)
{
    int c;
    int *map = t->occupied;
    for (c = n->left; c <= n->right; c++)
        map[c] = n->id + 1;
    t->nets_here = t->nets_here + 1;
    n->track = (int)(t - tracks);
}

/* A placement decision, returned by value (aggregates carrying
 * pointers flow as first-class values in the VDG). */
struct placement {
    struct track *where;
    struct net *which;
    int ok;
};

/* Find the first track the net fits on. */
static struct placement find_slot(struct net *n)
{
    struct placement p;
    int t;
    p.where = 0;
    p.which = n;
    p.ok = 0;
    for (t = 0; t < ntracks; t++) {
        if (fits(&tracks[t], n)) {
            p.where = &tracks[t];
            p.ok = 1;
            return p;
        }
    }
    return p;
}

/* Left-edge algorithm: sort nets by left edge (insertion sort on the
 * index array), then greedily pack each onto the first fitting track. */
static int route_channel(void)
{
    int order[MAXNETS];
    int i, j;
    int failed = 0;

    for (i = 0; i < nnets; i++)
        order[i] = i;
    for (i = 1; i < nnets; i++) {
        int key = order[i];
        j = i - 1;
        while (j >= 0 && nets[order[j]].left > nets[key].left) {
            order[j + 1] = order[j];
            j = j - 1;
        }
        order[j + 1] = key;
    }

    for (i = 0; i < nnets; i++) {
        struct placement p = find_slot(&nets[order[i]]);
        if (p.ok)
            claim(p.where, p.which);
        else
            failed = failed + 1;
    }
    return failed;
}

/* Count vertical constraint violations: nets on the same column whose
 * track order inverts their id order (a stand-in for the real VCG). */
static int check_quality(void)
{
    int violations = 0;
    int i, j;
    for (i = 0; i < nnets; i++) {
        for (j = i + 1; j < nnets; j++) {
            struct net *a = &nets[i];
            struct net *b = &nets[j];
            if (a->track < 0 || b->track < 0)
                continue;
            if (a->right >= b->left && b->right >= a->left)
                if (a->track == b->track)
                    violations = violations + 1;
        }
    }
    return violations;
}

int main(void)
{
    int failed, violations, t;
    int used = 0;

    nnets = 0;
    add_net(0, 5);
    add_net(2, 9);
    add_net(4, 12);
    add_net(6, 8);
    add_net(10, 18);
    add_net(1, 3);
    add_net(13, 20);
    add_net(7, 15);
    add_net(16, 24);
    add_net(19, 27);
    add_net(21, 23);
    add_net(25, 30);

    init_tracks();
    failed = route_channel();
    violations = check_quality();
    for (t = 0; t < ntracks; t++)
        if (tracks[t].nets_here > 0)
            used = used + 1;
    printf("routed %d nets on %d tracks, %d failures, %d violations\n",
           nnets - failed, used, failed, violations);
    return failed + violations;
}
