/* compress -- LZW-style compressor over an in-memory buffer.
 *
 * Pointer character (after the SPEC92 original): a code table of
 * (prefix, suffix) entries indexed by hash probing, char* cursors over
 * input and output buffers, and a decompressor stacking suffixes.
 */

extern int printf(const char *fmt, ...);
extern void *malloc(unsigned long n);

#define TABLE_SIZE 512
#define CODE_LIMIT 256
#define FIRST_CODE 257
#define INPUT_LEN 96

static int prefix_of[TABLE_SIZE];
static int suffix_of[TABLE_SIZE];
static int code_of[TABLE_SIZE];

static char input_data[INPUT_LEN + 1] =
    "the rain in spain stays mainly in the plain "
    "the rain in spain stays mainly in the plain";

static int output_codes[INPUT_LEN * 2];
static int output_count;

static char recovered[INPUT_LEN * 4];

/* Probe the table for (prefix, suffix); returns slot index. */
static int probe(int prefix, int suffix)
{
    int h = ((prefix << 3) ^ suffix) & (TABLE_SIZE - 1);
    while (code_of[h] != -1) {
        if (prefix_of[h] == prefix && suffix_of[h] == suffix)
            return h;
        h = (h + 1) & (TABLE_SIZE - 1);
    }
    return h;
}

static void table_reset(void)
{
    int i;
    for (i = 0; i < TABLE_SIZE; i++) {
        code_of[i] = -1;
        prefix_of[i] = -1;
        suffix_of[i] = -1;
    }
}

/* Emit one output code through the shared cursor. */
static void emit(int *sink, int *count, int code)
{
    sink[*count] = code;
    *count = *count + 1;
}

static int compress_buffer(char *src)
{
    int next_code = FIRST_CODE;
    int prefix;
    char *p = src;

    table_reset();
    output_count = 0;
    if (*p == '\0')
        return 0;
    prefix = *p;
    p++;
    while (*p) {
        int suffix = *p;
        int slot = probe(prefix, suffix);
        if (code_of[slot] != -1) {
            prefix = code_of[slot];
        } else {
            emit(output_codes, &output_count, prefix);
            if (next_code < TABLE_SIZE) {
                code_of[slot] = next_code;
                prefix_of[slot] = prefix;
                suffix_of[slot] = suffix;
                next_code = next_code + 1;
            }
            prefix = suffix;
        }
        p++;
    }
    emit(output_codes, &output_count, prefix);
    return output_count;
}

/* Decompression tables, rebuilt from the code stream. */
static int dec_prefix[TABLE_SIZE];
static int dec_suffix[TABLE_SIZE];

/* Expand one code onto a character stack; returns the stack depth. */
static int expand(int code, char *stack)
{
    int depth = 0;
    while (code >= FIRST_CODE) {
        stack[depth] = (char)dec_suffix[code];
        depth = depth + 1;
        code = dec_prefix[code];
    }
    stack[depth] = (char)code;
    return depth + 1;
}

static int decompress_buffer(int *codes, int ncodes, char *dst)
{
    char stack[TABLE_SIZE];
    int next_code = FIRST_CODE;
    int i, k, depth;
    int prev;
    char *out = dst;

    if (ncodes == 0) {
        *out = '\0';
        return 0;
    }
    prev = codes[0];
    depth = expand(prev, stack);
    for (k = depth - 1; k >= 0; k--) {
        *out = stack[k];
        out++;
    }
    for (i = 1; i < ncodes; i++) {
        int code = codes[i];
        int first;
        if (code < next_code) {
            depth = expand(code, stack);
        } else {
            /* The tricky LZW case: code not yet in the table. */
            depth = expand(prev, stack);
            first = stack[depth - 1];
            k = depth;
            while (k > 0) {
                stack[k] = stack[k - 1];
                k = k - 1;
            }
            stack[0] = (char)first;
            depth = depth + 1;
        }
        for (k = depth - 1; k >= 0; k--) {
            *out = stack[k];
            out++;
        }
        if (next_code < TABLE_SIZE) {
            dec_prefix[next_code] = prev;
            /* The new entry's suffix is the FIRST character of the
             * current output string (top of the reversed stack). */
            dec_suffix[next_code] = stack[depth - 1];
            next_code = next_code + 1;
        }
        prev = code;
    }
    *out = '\0';
    return (int)(out - dst);
}

int main(void)
{
    int ncodes = compress_buffer(input_data);
    int nchars = decompress_buffer(output_codes, ncodes, recovered);
    int ok = 1;
    int i;
    for (i = 0; input_data[i]; i++)
        if (recovered[i] != input_data[i])
            ok = 0;
    printf("compressed %d chars to %d codes (%d recovered), "
           "round-trip %s\n",
           INPUT_LEN, ncodes, nchars, ok ? "ok" : "FAILED");
    return ok ? 0 : 1;
}
