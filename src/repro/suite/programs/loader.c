/* loader -- link and relocate a set of toy object modules.
 *
 * Pointer character (after the Landi original): module descriptors
 * with segment arrays, a chained global symbol table, relocation
 * records processed through pointers that select the target segment
 * (multi-target writes), and module lists.
 */

extern void *malloc(unsigned long n);
extern int printf(const char *fmt, ...);
extern int strcmp(const char *a, const char *b);
extern char *strcpy(char *dst, const char *src);

#define MAXNAME 12
#define SEGWORDS 64
#define NBUCKETS 16

/* Relocation kinds. */
#define R_ABS 0   /* add the module's text base */
#define R_SYM 1   /* add a global symbol's address */

struct reloc {
    int kind;
    int offset;            /* word index within the module's text */
    char symbol[MAXNAME];  /* for R_SYM */
    struct reloc *next;
};

struct module {
    char name[MAXNAME];
    int text[SEGWORDS];
    int text_len;
    int base;              /* assigned load address */
    struct reloc *relocs;
    struct module *next;
};

struct gsym {
    char name[MAXNAME];
    int address;
    struct gsym *next;
};

static struct module *modules;
static struct gsym *buckets[NBUCKETS];
static int core[SEGWORDS * 4];
static int core_used;

/* -- global symbol table ------------------------------------------------ */

static int hash_sym(const char *name)
{
    int h = 0;
    while (*name) {
        h = (h * 17 + *name) & (NBUCKETS - 1);
        name++;
    }
    return h;
}

static struct gsym *gsym_find(const char *name)
{
    struct gsym *g;
    for (g = buckets[hash_sym(name)]; g; g = g->next)
        if (strcmp(g->name, name) == 0)
            return g;
    return 0;
}

static void gsym_define(const char *name, int address)
{
    struct gsym *g = gsym_find(name);
    int h;
    if (!g) {
        g = malloc(sizeof(struct gsym));
        strcpy(g->name, name);
        h = hash_sym(name);
        g->next = buckets[h];
        buckets[h] = g;
    }
    g->address = address;
}

/* -- module construction --------------------------------------------------- */

static struct module *new_module(const char *name)
{
    struct module *m = malloc(sizeof(struct module));
    int i;
    strcpy(m->name, name);
    m->text_len = 0;
    m->base = -1;
    m->relocs = 0;
    for (i = 0; i < SEGWORDS; i++)
        m->text[i] = 0;
    m->next = modules;
    modules = m;
    return m;
}

static void mod_word(struct module *m, int value)
{
    m->text[m->text_len] = value;
    m->text_len = m->text_len + 1;
}

static void mod_reloc(struct module *m, int kind, int offset,
                      const char *symbol)
{
    struct reloc *r = malloc(sizeof(struct reloc));
    r->kind = kind;
    r->offset = offset;
    r->symbol[0] = '\0';
    if (symbol)
        strcpy(r->symbol, symbol);
    r->next = m->relocs;
    m->relocs = r;
}

/* -- loading ------------------------------------------------------------------ */

/* Assign load addresses and export each module's name as a symbol. */
static void assign_bases(void)
{
    struct module *m;
    int base = 0;
    for (m = modules; m; m = m->next) {
        m->base = base;
        gsym_define(m->name, base);
        base = base + m->text_len;
    }
    core_used = base;
}

/* Copy a module's words into the core image through a destination
 * cursor. */
static void copy_segment(int *dst, int *src, int len)
{
    int i;
    for (i = 0; i < len; i++)
        dst[i] = src[i];
}

/* Resolve a symbol into a caller-provided slot (§5.2's out-parameter
 * paradigm: each caller looks only at its own slot). */
static int resolve_into(const char *name, struct gsym **out)
{
    *out = gsym_find(name);
    return *out != 0;
}

/* Apply one relocation: patch the word at (module base + offset).
 * The patch target pointer may land in any module's core region. */
static int apply_reloc(struct module *m, struct reloc *r)
{
    int *target = &core[m->base + r->offset];
    if (r->kind == R_ABS) {
        *target = *target + m->base;
        return 1;
    }
    if (r->kind == R_SYM) {
        struct gsym *found;
        if (!resolve_into(r->symbol, &found)) {
            printf("undefined symbol %s in %s\n", r->symbol, m->name);
            return 0;
        }
        *target = *target + found->address;
        return 1;
    }
    return 0;
}

/* Report every module's load address through the same resolver. */
static void dump_map(void)
{
    struct module *m;
    for (m = modules; m; m = m->next) {
        struct gsym *entry;
        if (resolve_into(m->name, &entry))
            printf("  %s @ %d\n", m->name, entry->address);
    }
}

static int link_all(void)
{
    struct module *m;
    int errors = 0;
    assign_bases();
    for (m = modules; m; m = m->next)
        copy_segment(&core[m->base], m->text, m->text_len);
    for (m = modules; m; m = m->next) {
        struct reloc *r;
        for (r = m->relocs; r; r = r->next)
            if (!apply_reloc(m, r))
                errors = errors + 1;
    }
    return errors;
}

/* -- a linked program: three modules calling across boundaries ------------------ */

static void build_modules(void)
{
    struct module *m;

    m = new_module("main");
    mod_word(m, 100);          /* call lib+0 */
    mod_reloc(m, R_SYM, 0, "lib");
    mod_word(m, 5);            /* local jump */
    mod_reloc(m, R_ABS, 1, 0);
    mod_word(m, 0);

    m = new_module("lib");
    mod_word(m, 200);          /* call util+0 */
    mod_reloc(m, R_SYM, 0, "util");
    mod_word(m, 7);

    m = new_module("util");
    mod_word(m, 300);
    mod_word(m, 2);            /* local jump */
    mod_reloc(m, R_ABS, 1, 0);
}

int main(void)
{
    int errors;
    int i;
    int checksum = 0;

    modules = 0;
    for (i = 0; i < NBUCKETS; i++)
        buckets[i] = 0;

    build_modules();
    errors = link_all();
    dump_map();
    for (i = 0; i < core_used; i++)
        checksum = checksum * 31 + core[i];
    printf("linked %d words, %d errors, checksum %d\n",
           core_used, errors, checksum);
    return errors;
}
