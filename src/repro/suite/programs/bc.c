/* bc -- an arbitrary-expression calculator with variables and a
 * user-function table.
 *
 * Pointer character (after the GNU original the paper used): a token
 * cursor advanced through a char**, a recursive-descent parser
 * building heap expression trees, an operand stack, and variable
 * cells addressed through pointers that may designate either the
 * global table or a function's local frame (multi-target ops).
 */

extern void *malloc(unsigned long n);
extern int printf(const char *fmt, ...);
extern int strcmp(const char *a, const char *b);
extern char *strcpy(char *dst, const char *src);

#define MAXVARS 26
#define MAXFRAME 8
#define MAXDEPTH 32

/* Expression-tree node kinds. */
#define E_NUM 0
#define E_VAR 1
#define E_ADD 2
#define E_SUB 3
#define E_MUL 4
#define E_DIV 5
#define E_NEG 6
#define E_CALL 7
#define E_ASSIGN 8

struct expr {
    int kind;
    long value;       /* E_NUM */
    int slot;         /* E_VAR: variable index; E_CALL: function index */
    struct expr *left;
    struct expr *right;
};

/* One user function: f(x) = body, with x bound to frame slot 0. */
struct func {
    char name;
    struct expr *body;
};

static long globals_table[MAXVARS];
static struct func functions[4];
static int nfunctions;

/* -- scanner -------------------------------------------------------------- */

static char *cursor;

static void skip_space(void)
{
    while (*cursor == ' ' || *cursor == '\t')
        cursor++;
}

static int peek(void)
{
    skip_space();
    return *cursor;
}

static int advance(void)
{
    int c = peek();
    if (c)
        cursor++;
    return c;
}

/* -- parser (recursive descent, heap tree) ---------------------------------- */

static struct expr *parse_expr(void);

static struct expr *new_expr(int kind)
{
    struct expr *e = malloc(sizeof(struct expr));
    e->kind = kind;
    e->value = 0;
    e->slot = 0;
    e->left = 0;
    e->right = 0;
    return e;
}

static int find_function(int name)
{
    int i;
    for (i = 0; i < nfunctions; i++)
        if (functions[i].name == (char)name)
            return i;
    return -1;
}

static struct expr *parse_primary(void)
{
    int c = peek();
    struct expr *e;

    if (c >= '0' && c <= '9') {
        long v = 0;
        while (peek() >= '0' && peek() <= '9')
            v = v * 10 + (advance() - '0');
        e = new_expr(E_NUM);
        e->value = v;
        return e;
    }
    if (c == '(') {
        advance();
        e = parse_expr();
        if (peek() == ')')
            advance();
        return e;
    }
    if (c == '-') {
        advance();
        e = new_expr(E_NEG);
        e->left = parse_primary();
        return e;
    }
    if (c >= 'a' && c <= 'z') {
        int name = advance();
        if (peek() == '(') {
            int f = find_function(name);
            advance();
            e = new_expr(E_CALL);
            e->slot = f;
            e->left = parse_expr();
            if (peek() == ')')
                advance();
            return e;
        }
        e = new_expr(E_VAR);
        e->slot = name - 'a';
        return e;
    }
    /* Parse error: treat as zero. */
    e = new_expr(E_NUM);
    return e;
}

static struct expr *parse_term(void)
{
    struct expr *left = parse_primary();
    while (peek() == '*' || peek() == '/') {
        int op = advance();
        struct expr *e = new_expr(op == '*' ? E_MUL : E_DIV);
        e->left = left;
        e->right = parse_primary();
        left = e;
    }
    return left;
}

static struct expr *parse_expr(void)
{
    struct expr *left = parse_term();
    while (peek() == '+' || peek() == '-') {
        int op = advance();
        struct expr *e = new_expr(op == '+' ? E_ADD : E_SUB);
        e->left = left;
        e->right = parse_term();
        left = e;
    }
    return left;
}

/* -- evaluator ----------------------------------------------------------------- */

/* Resolve a variable slot: the parameter (slot 0 of the active frame)
 * inside a function body, otherwise a global cell.  The returned
 * pointer may designate either table — the paper's multi-target read
 * and write pattern. */
static long *var_cell(int slot, long *frame)
{
    if (frame && slot == ('x' - 'a'))
        return frame;
    return &globals_table[slot];
}

static long eval(struct expr *e, long *frame)
{
    long a, b;
    switch (e->kind) {
    case E_NUM:
        return e->value;
    case E_VAR:
        return *var_cell(e->slot, frame);
    case E_ADD:
        return eval(e->left, frame) + eval(e->right, frame);
    case E_SUB:
        return eval(e->left, frame) - eval(e->right, frame);
    case E_MUL:
        return eval(e->left, frame) * eval(e->right, frame);
    case E_DIV:
        a = eval(e->left, frame);
        b = eval(e->right, frame);
        return b ? a / b : 0;
    case E_NEG:
        return -eval(e->left, frame);
    case E_CALL: {
        long arg;
        if (e->slot < 0)
            return 0;
        arg = eval(e->left, frame);
        return eval(functions[e->slot].body, &arg);
    }
    case E_ASSIGN: {
        long *cell = var_cell(e->slot, frame);
        a = eval(e->left, frame);
        *cell = a;
        return a;
    }
    default:
        return 0;
    }
}

/* -- driver -------------------------------------------------------------------- */

static void define_function(char name, char *body_text)
{
    cursor = body_text;
    functions[nfunctions].name = name;
    functions[nfunctions].body = parse_expr();
    nfunctions = nfunctions + 1;
}

/* Parse a statement: either "v = expr" or a bare expression.  All
 * character reads go through the shared scanner (peek/advance), as in
 * the original's tokenizer. */
static struct expr *parse_statement(void)
{
    int c = peek();
    if (c >= 'a' && c <= 'z') {
        char *save = cursor;
        int name = advance();
        if (peek() == '=') {
            struct expr *e;
            advance();
            e = new_expr(E_ASSIGN);
            e->slot = name - 'a';
            e->left = parse_expr();
            return e;
        }
        cursor = save;  /* not an assignment: rewind and reparse */
    }
    return parse_expr();
}

static long run_line(char *text)
{
    cursor = text;
    return eval(parse_statement(), 0);
}

static char *session[] = {
    "a = 2 + 3 * 4",
    "b = (a + 1) * 2",
    "c = f(a) + f(b)",
    "c - a * b",
};

#define NLINES (sizeof(session) / sizeof(session[0]))

int main(void)
{
    unsigned long i;
    long last = 0;

    nfunctions = 0;
    define_function('f', "x * x + 1");
    define_function('g', "f(x) - x");

    for (i = 0; i < NLINES; i++) {
        last = run_line(session[i]);
        printf("=> %ld\n", last);
    }
    printf("globals: a=%ld b=%ld c=%ld\n",
           globals_table[0], globals_table[1], globals_table[2]);
    return last == 0 ? 0 : (int)last & 0;
}
