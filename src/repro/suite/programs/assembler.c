/* assembler -- a two-pass assembler for a toy accumulator machine.
 *
 * Pointer character (after the Landi original): a chained-hash symbol
 * table, a linked list of parsed statements, char* scanning over
 * source lines, and an emitter whose segment pointer selects between
 * the text and data segments (a genuine multi-target indirect write,
 * of the kind Figure 4's >1-location columns count).
 */

extern void *malloc(unsigned long n);
extern int printf(const char *fmt, ...);
extern int strcmp(const char *a, const char *b);
extern char *strcpy(char *dst, const char *src);
extern unsigned long strlen(const char *s);

#define HASH_SIZE 32
#define MAXNAME 16
#define SEG_SIZE 128

/* Opcodes. */
#define OP_LOAD 1
#define OP_STORE 2
#define OP_ADD 3
#define OP_SUB 4
#define OP_JMP 5
#define OP_JZ 6
#define OP_HALT 7
#define OP_WORD 8   /* pseudo-op: reserve a data word */
#define OP_LABEL 9  /* pseudo-op: define a label */

struct symbol {
    char name[MAXNAME];
    int value;
    int defined;
    struct symbol *next;
};

struct statement {
    int opcode;
    char operand[MAXNAME];
    int has_operand;
    int address;
    struct statement *next;
};

static struct symbol *hash_table[HASH_SIZE];
static struct statement *program_head;
static struct statement *program_tail;

static int text_segment[SEG_SIZE];
static int data_segment[SEG_SIZE];
static int text_cursor;
static int data_cursor;

/* -- symbol table ------------------------------------------------------ */

static int hash_name(const char *name)
{
    int h = 0;
    const char *p;
    for (p = name; *p; p++)
        h = (h * 31 + *p) & (HASH_SIZE - 1);
    return h;
}

static struct symbol *sym_lookup(const char *name)
{
    struct symbol *s;
    for (s = hash_table[hash_name(name)]; s; s = s->next)
        if (strcmp(s->name, name) == 0)
            return s;
    return 0;
}

static struct symbol *sym_enter(const char *name)
{
    struct symbol *s = sym_lookup(name);
    int h;
    if (s)
        return s;
    s = malloc(sizeof(struct symbol));
    strcpy(s->name, name);
    s->value = 0;
    s->defined = 0;
    h = hash_name(name);
    s->next = hash_table[h];
    hash_table[h] = s;
    return s;
}

static void sym_define(const char *name, int value)
{
    struct symbol *s = sym_enter(name);
    s->value = value;
    s->defined = 1;
}

/* -- source scanning ---------------------------------------------------- */

static char *source_lines[] = {
    "start:  load  count",
    "loop:   add   step",
    "        store count",
    "        sub   limit",
    "        jz    done",
    "        jmp   loop",
    "done:   halt",
    "count:  word  0",
    "step:   word  2",
    "limit:  word  10",
};

#define NLINES (sizeof(source_lines) / sizeof(source_lines[0]))

struct mnemonic {
    char *name;
    int opcode;
    int wants_operand;
};

static struct mnemonic mnemonics[] = {
    { "load", OP_LOAD, 1 },
    { "store", OP_STORE, 1 },
    { "add", OP_ADD, 1 },
    { "sub", OP_SUB, 1 },
    { "jmp", OP_JMP, 1 },
    { "jz", OP_JZ, 1 },
    { "halt", OP_HALT, 0 },
    { "word", OP_WORD, 1 },
};

#define NMNEMONICS (sizeof(mnemonics) / sizeof(mnemonics[0]))

static char *skip_blanks(char *p)
{
    while (*p == ' ' || *p == '\t')
        p++;
    return p;
}

/* Copy one word (identifier/number) into buf; returns the new cursor. */
static char *scan_word(char *p, char *buf)
{
    int n = 0;
    while (*p && *p != ' ' && *p != '\t' && *p != ':' && n < MAXNAME - 1) {
        buf[n] = *p;
        n = n + 1;
        p++;
    }
    buf[n] = '\0';
    return p;
}

static int find_opcode(const char *name)
{
    unsigned long i;
    for (i = 0; i < NMNEMONICS; i++)
        if (strcmp(mnemonics[i].name, name) == 0)
            return (int)i;
    return -1;
}

/* Parse one line into zero, one, or two statements (label + op). */
static void parse_line(char *line)
{
    char word[MAXNAME];
    char *p = skip_blanks(line);
    struct statement *st;
    int m;

    if (*p == '\0')
        return;
    p = scan_word(p, word);
    if (*p == ':') {
        p++;
        st = malloc(sizeof(struct statement));
        st->opcode = OP_LABEL;
        strcpy(st->operand, word);
        st->has_operand = 1;
        st->address = 0;
        st->next = 0;
        if (program_tail)
            program_tail->next = st;
        else
            program_head = st;
        program_tail = st;
        p = skip_blanks(p);
        if (*p == '\0')
            return;
        p = scan_word(p, word);
    }
    m = find_opcode(word);
    if (m < 0) {
        printf("bad mnemonic: %s\n", word);
        return;
    }
    st = malloc(sizeof(struct statement));
    st->opcode = mnemonics[m].opcode;
    st->has_operand = mnemonics[m].wants_operand;
    st->operand[0] = '\0';
    st->address = 0;
    st->next = 0;
    if (st->has_operand) {
        p = skip_blanks(p);
        scan_word(p, st->operand);
    }
    if (program_tail)
        program_tail->next = st;
    else
        program_head = st;
    program_tail = st;
}

/* -- pass 1: assign addresses, define labels ----------------------------- */

static void pass1(void)
{
    struct statement *st;
    int text_pc = 0;
    int data_pc = 0;
    for (st = program_head; st; st = st->next) {
        if (st->opcode == OP_LABEL) {
            /* A label binds to whichever segment the next real
             * statement lands in; peek ahead. */
            struct statement *peek = st->next;
            while (peek && peek->opcode == OP_LABEL)
                peek = peek->next;
            if (peek && peek->opcode == OP_WORD)
                sym_define(st->operand, data_pc);
            else
                sym_define(st->operand, text_pc);
        } else if (st->opcode == OP_WORD) {
            st->address = data_pc;
            data_pc = data_pc + 1;
        } else {
            st->address = text_pc;
            text_pc = text_pc + 1;
        }
    }
}

/* -- pass 2: emit ---------------------------------------------------------- */

/* The emitter: seg points at either text_segment or data_segment, and
 * cursor at the matching cursor variable — the multi-target writes. */
static void emit(int *seg, int *cursor, int value)
{
    seg[*cursor] = value;
    *cursor = *cursor + 1;
}

static int operand_value(struct statement *st)
{
    struct symbol *s;
    char *p = st->operand;
    int numeric = 1;
    int value = 0;
    while (*p) {
        if (*p < '0' || *p > '9') {
            numeric = 0;
            break;
        }
        value = value * 10 + (*p - '0');
        p++;
    }
    if (numeric && st->operand[0])
        return value;
    s = sym_lookup(st->operand);
    if (!s || !s->defined) {
        printf("undefined symbol: %s\n", st->operand);
        return 0;
    }
    return s->value;
}

static void pass2(void)
{
    struct statement *st;
    for (st = program_head; st; st = st->next) {
        int *seg;
        int *cursor;
        if (st->opcode == OP_LABEL)
            continue;
        if (st->opcode == OP_WORD) {
            seg = data_segment;
            cursor = &data_cursor;
        } else {
            seg = text_segment;
            cursor = &text_cursor;
        }
        if (st->opcode == OP_WORD) {
            emit(seg, cursor, operand_value(st));
        } else {
            int word = st->opcode << 8;
            if (st->has_operand)
                word = word | (operand_value(st) & 0xff);
            emit(seg, cursor, word);
        }
    }
}

/* -- a tiny interpreter to check the output -------------------------------- */

static int run_program(void)
{
    int acc = 0;
    int pc = 0;
    int steps = 0;
    while (pc < text_cursor && steps < 1000) {
        int word = text_segment[pc];
        int op = word >> 8;
        int arg = word & 0xff;
        steps = steps + 1;
        pc = pc + 1;
        switch (op) {
        case OP_LOAD:
            acc = data_segment[arg];
            break;
        case OP_STORE:
            data_segment[arg] = acc;
            break;
        case OP_ADD:
            acc = acc + data_segment[arg];
            break;
        case OP_SUB:
            acc = acc - data_segment[arg];
            break;
        case OP_JMP:
            pc = arg;
            break;
        case OP_JZ:
            if (acc == 0)
                pc = arg;
            break;
        case OP_HALT:
            return acc;
        default:
            printf("bad opcode %d\n", op);
            return -1;
        }
    }
    return acc;
}

/* Each source line is staged into this buffer before parsing, so the
 * scanner's dereferences hit one abstract location. */
static char line_buffer[64];

int main(void)
{
    unsigned long i;
    int result;

    program_head = 0;
    program_tail = 0;
    for (i = 0; i < HASH_SIZE; i++)
        hash_table[i] = 0;

    for (i = 0; i < NLINES; i++) {
        strcpy(line_buffer, source_lines[i]);
        parse_line(line_buffer);
    }
    pass1();
    pass2();
    result = run_program();
    printf("assembled %d text words, %d data words; run => %d\n",
           text_cursor, data_cursor, result);

    /* Listing: every statement with its assigned address. */
    {
        struct statement *st;
        for (st = program_head; st; st = st->next)
            if (st->opcode != OP_LABEL)
                printf("  %2d: op=%d %s\n", st->address, st->opcode,
                       st->operand);
    }
    return 0;
}
