/* compiler -- a tiny one-pass compiler: scanner, recursive-descent
 * parser to a heap AST, constant folder, and stack-machine code
 * generator into a code buffer.
 *
 * Pointer character (after the Landi original): heap tree nodes from a
 * single site, recursive tree walks, a char* scanner, and an emit
 * cursor.  Like the paper's compiler row, every indirect access
 * resolves to one abstract location.
 */

extern void *malloc(unsigned long n);
extern int printf(const char *fmt, ...);

/* AST node kinds. */
#define N_CONST 0
#define N_VAR 1
#define N_ADD 2
#define N_SUB 3
#define N_MUL 4

/* Stack-machine opcodes. */
#define I_PUSH 0
#define I_LOADV 1
#define I_ADD 2
#define I_SUB 3
#define I_MUL 4

#define CODE_SIZE 256
#define NVARS 26

struct ast {
    int kind;
    int value;        /* N_CONST: literal; N_VAR: variable index */
    struct ast *left;
    struct ast *right;
};

struct instruction {
    int opcode;
    int operand;
};

static struct instruction code[CODE_SIZE];
static int code_len;
static int var_values[NVARS];

/* -- scanner --------------------------------------------------------------- */

static char *scan_cursor;

static int scan_peek(void)
{
    while (*scan_cursor == ' ')
        scan_cursor++;
    return *scan_cursor;
}

static int scan_next(void)
{
    int c = scan_peek();
    if (c)
        scan_cursor++;
    return c;
}

/* -- parser ----------------------------------------------------------------- */

static struct ast *parse_sum(void);

static struct ast *node(int kind, int value, struct ast *left,
                        struct ast *right)
{
    struct ast *n = malloc(sizeof(struct ast));
    n->kind = kind;
    n->value = value;
    n->left = left;
    n->right = right;
    return n;
}

static struct ast *parse_atom(void)
{
    int c = scan_peek();
    if (c == '(') {
        struct ast *inner;
        scan_next();
        inner = parse_sum();
        if (scan_peek() == ')')
            scan_next();
        return inner;
    }
    if (c >= '0' && c <= '9') {
        int v = 0;
        while (scan_peek() >= '0' && scan_peek() <= '9')
            v = v * 10 + (scan_next() - '0');
        return node(N_CONST, v, 0, 0);
    }
    if (c >= 'a' && c <= 'z')
        return node(N_VAR, scan_next() - 'a', 0, 0);
    return node(N_CONST, 0, 0, 0);
}

static struct ast *parse_product(void)
{
    struct ast *left = parse_atom();
    while (scan_peek() == '*') {
        scan_next();
        left = node(N_MUL, 0, left, parse_atom());
    }
    return left;
}

static struct ast *parse_sum(void)
{
    struct ast *left = parse_product();
    while (scan_peek() == '+' || scan_peek() == '-') {
        int op = scan_next();
        left = node(op == '+' ? N_ADD : N_SUB, 0, left, parse_product());
    }
    return left;
}

/* -- constant folding --------------------------------------------------------- */

static int is_const(struct ast *n)
{
    return n->kind == N_CONST;
}

static struct ast *fold(struct ast *n)
{
    if (n->kind == N_CONST || n->kind == N_VAR)
        return n;
    n->left = fold(n->left);
    n->right = fold(n->right);
    if (is_const(n->left) && is_const(n->right)) {
        int a = n->left->value;
        int b = n->right->value;
        int v = n->kind == N_ADD ? a + b
              : n->kind == N_SUB ? a - b : a * b;
        return node(N_CONST, v, 0, 0);
    }
    /* Identities: x+0, x*1, x*0. */
    if (n->kind == N_ADD && is_const(n->right) && n->right->value == 0)
        return n->left;
    if (n->kind == N_MUL && is_const(n->right)) {
        if (n->right->value == 1)
            return n->left;
        if (n->right->value == 0)
            return n->right;
    }
    return n;
}

/* -- code generation ------------------------------------------------------------ */

static void emit(int opcode, int operand)
{
    if (code_len < CODE_SIZE) {
        code[code_len].opcode = opcode;
        code[code_len].operand = operand;
        code_len = code_len + 1;
    }
}

static void generate(struct ast *n)
{
    switch (n->kind) {
    case N_CONST:
        emit(I_PUSH, n->value);
        break;
    case N_VAR:
        emit(I_LOADV, n->value);
        break;
    case N_ADD:
        generate(n->left);
        generate(n->right);
        emit(I_ADD, 0);
        break;
    case N_SUB:
        generate(n->left);
        generate(n->right);
        emit(I_SUB, 0);
        break;
    case N_MUL:
        generate(n->left);
        generate(n->right);
        emit(I_MUL, 0);
        break;
    default:
        break;
    }
}

/* -- the virtual machine ---------------------------------------------------------- */

static int execute(void)
{
    int stack[64];
    int sp = 0;
    int pc;
    for (pc = 0; pc < code_len; pc++) {
        int op = code[pc].opcode;
        int arg = code[pc].operand;
        switch (op) {
        case I_PUSH:
            stack[sp] = arg;
            sp = sp + 1;
            break;
        case I_LOADV:
            stack[sp] = var_values[arg];
            sp = sp + 1;
            break;
        case I_ADD:
            sp = sp - 1;
            stack[sp - 1] = stack[sp - 1] + stack[sp];
            break;
        case I_SUB:
            sp = sp - 1;
            stack[sp - 1] = stack[sp - 1] - stack[sp];
            break;
        case I_MUL:
            sp = sp - 1;
            stack[sp - 1] = stack[sp - 1] * stack[sp];
            break;
        default:
            break;
        }
    }
    return sp > 0 ? stack[sp - 1] : 0;
}

/* -- driver ------------------------------------------------------------------------- */

extern char *strcpy(char *dst, const char *src);

/* All scanning happens over this one buffer (each expression is staged
 * into it first), so the scanner's dereferences resolve to a single
 * abstract location — the property §3.2 reports for compiler. */
static char program_text[128];

static int compile_and_run(const char *text)
{
    struct ast *tree;
    strcpy(program_text, text);
    scan_cursor = program_text;
    tree = fold(parse_sum());
    code_len = 0;
    generate(tree);
    return execute();
}

int main(void)
{
    int i;
    var_values['a' - 'a'] = 6;
    var_values['b' - 'a'] = 7;
    var_values['x' - 'a'] = 3;

    printf("a*b = %d\n", compile_and_run("a * b"));
    printf("poly = %d\n", compile_and_run("x*x*x + 2*x*x + x + 5"));
    printf("folded = %d\n", compile_and_run("(2+3)*(4+1) + x*0 + a*1"));
    for (i = 0; i < 3; i++)
        printf("series %d = %d\n", i, compile_and_run("x + x*x"));
    return 0;
}
