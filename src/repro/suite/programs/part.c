/* part -- partition particles between two cells, reproducing the
 * paper's §5.2 anecdote: the program "independently constructs two
 * linked lists that are both manipulated via the same set of routines
 * ... early in its execution, the program exchanges elements between
 * the lists, forcing each list's locations to model all of the values
 * held by the other list's locations."
 *
 * Context-insensitive analysis cross-pollinates the two lists through
 * the shared routines; the exchange makes that pollution harmless.
 */

extern void *malloc(unsigned long n);
extern int printf(const char *fmt, ...);

struct particle {
    double x, v;
    int id;
    struct particle *next;
};

struct cell {
    struct particle *head;
    int count;
};

static struct cell left_cell;
static struct cell right_cell;

/* Shared routine #1: push a particle onto a cell's list. */
static void cell_push(struct cell *c, struct particle *p)
{
    p->next = c->head;
    c->head = p;
    c->count = c->count + 1;
}

/* Shared routine #2: pop a particle off a cell's list. */
static struct particle *cell_pop(struct cell *c)
{
    struct particle *p = c->head;
    if (p) {
        c->head = p->next;
        c->count = c->count - 1;
    }
    return p;
}

/* Shared routine #3: total momentum of a cell. */
static double cell_momentum(struct cell *c)
{
    double total = 0.0;
    struct particle *p;
    for (p = c->head; p; p = p->next)
        total = total + p->v;
    return total;
}

/* Allocate one particle (a single heap site serving both lists). */
static struct particle *make_particle(int id, double x, double v)
{
    struct particle *p = malloc(sizeof(struct particle));
    p->id = id;
    p->x = x;
    p->v = v;
    p->next = 0;
    return p;
}

/* Build one cell's worth of particles. */
static void fill_cell(struct cell *c, int base, int n, double v)
{
    int i;
    for (i = 0; i < n; i++)
        cell_push(c, make_particle(base + i, (double)i, v));
}

/* Shared routine #4: pop into a caller-provided slot — the
 * out-parameter paradigm §5.2 describes ("callers pass addresses of
 * pointer-valued local storage to a procedure which then modifies
 * that storage"); each caller inspects only its own slot, so the
 * cross-caller pollution this creates is harmless. */
static int pop_into(struct cell *c, struct particle **out)
{
    *out = c->head;
    if (*out) {
        c->head = (*out)->next;
        c->count = c->count - 1;
        return 1;
    }
    return 0;
}

/* The exchange: particles crossing the boundary switch cells. */
static void exchange(struct cell *a, struct cell *b)
{
    struct particle *p;
    struct particle *q;
    int got_p = pop_into(a, &p);
    int got_q = pop_into(b, &q);
    if (got_p)
        cell_push(b, p);
    if (got_q)
        cell_push(a, q);
}

/* One simulation step: drift every particle, then exchange movers. */
static void step(struct cell *a, struct cell *b, double dt)
{
    struct particle *p;
    for (p = a->head; p; p = p->next)
        p->x = p->x + p->v * dt;
    for (p = b->head; p; p = p->next)
        p->x = p->x + p->v * dt;
    exchange(a, b);
}

int main(void)
{
    int t;

    left_cell.head = 0;
    left_cell.count = 0;
    right_cell.head = 0;
    right_cell.count = 0;

    fill_cell(&left_cell, 0, 8, 1.0);
    fill_cell(&right_cell, 100, 8, -1.0);

    for (t = 0; t < 10; t++)
        step(&left_cell, &right_cell, 0.25);

    printf("left: %d particles, momentum %f\n",
           left_cell.count, cell_momentum(&left_cell));
    printf("right: %d particles, momentum %f\n",
           right_cell.count, cell_momentum(&right_cell));

    /* Drain both cells through the shared pop routine. */
    {
        int drained = 0;
        while (cell_pop(&left_cell))
            drained = drained + 1;
        while (cell_pop(&right_cell))
            drained = drained + 1;
        printf("drained %d particles\n", drained);
    }
    return 0;
}
