/* span -- minimum spanning tree over an adjacency-list graph.
 *
 * Pointer character: heap-allocated edge nodes chained per vertex, a
 * parent array for union-find, and list walks.  Like the original,
 * every indirect memory operation references a single abstract
 * location (one heap site per list kind), so context-sensitivity has
 * nothing to add (paper §3.2 names span among the three programs with
 * no multi-target indirect loads or stores).
 */

extern void *malloc(unsigned long n);
extern int printf(const char *fmt, ...);

#define NVERT 12

struct edge {
    int to;
    int weight;
    struct edge *next;
};

static struct edge *adjacency[NVERT];
static int parent[NVERT];
static int rank_of[NVERT];

/* All edge nodes come from this single allocation site, so every list
 * walk resolves to one abstract location. */
static struct edge *make_edge(int to, int w, struct edge *next)
{
    struct edge *e = malloc(sizeof(struct edge));
    e->to = to;
    e->weight = w;
    e->next = next;
    return e;
}

/* Add an undirected edge. */
static void add_edge(int a, int b, int w)
{
    adjacency[a] = make_edge(b, w, adjacency[a]);
    adjacency[b] = make_edge(a, w, adjacency[b]);
}

static int find_root(int v)
{
    while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
    }
    return v;
}

static int unite(int a, int b)
{
    int ra = find_root(a);
    int rb = find_root(b);
    if (ra == rb)
        return 0;
    if (rank_of[ra] < rank_of[rb]) {
        int t = ra;
        ra = rb;
        rb = t;
    }
    parent[rb] = ra;
    if (rank_of[ra] == rank_of[rb])
        rank_of[ra] = rank_of[ra] + 1;
    return 1;
}

/* Prim-flavored scan: repeatedly take the lightest edge that joins two
 * components.  Quadratic, like the tiny original. */
static int span_tree(void)
{
    int total = 0;
    int joined = 1;
    while (joined) {
        struct edge *best = 0;
        int best_from = -1;
        int v;
        joined = 0;
        for (v = 0; v < NVERT; v++) {
            struct edge *e;
            for (e = adjacency[v]; e; e = e->next) {
                if (find_root(v) == find_root(e->to))
                    continue;
                if (!best || e->weight < best->weight) {
                    best = e;
                    best_from = v;
                }
            }
        }
        if (best) {
            unite(best_from, best->to);
            total = total + best->weight;
            joined = 1;
        }
    }
    return total;
}

static void build_graph(void)
{
    int v;
    for (v = 0; v < NVERT; v++) {
        adjacency[v] = 0;
        parent[v] = v;
        rank_of[v] = 0;
    }
    add_edge(0, 1, 4);
    add_edge(0, 7, 8);
    add_edge(1, 2, 8);
    add_edge(1, 7, 11);
    add_edge(2, 3, 7);
    add_edge(2, 8, 2);
    add_edge(2, 5, 4);
    add_edge(3, 4, 9);
    add_edge(3, 5, 14);
    add_edge(4, 5, 10);
    add_edge(5, 6, 2);
    add_edge(6, 7, 1);
    add_edge(6, 8, 6);
    add_edge(7, 8, 7);
    add_edge(8, 9, 3);
    add_edge(9, 10, 5);
    add_edge(10, 11, 12);
    add_edge(9, 11, 6);
}

int main(void)
{
    int total;
    build_graph();
    total = span_tree();
    printf("spanning tree weight: %d\n", total);
    return 0;
}
