/* backprop -- train a two-layer perceptron by backpropagation.
 *
 * Pointer character (matching Todd Austin's original): heap-allocated
 * weight matrices reached through double** rows, activation vectors
 * passed by pointer, and tight numeric loops.  Pointers are strictly
 * single-level-per-deref and every indirect access resolves to one
 * abstract location — the paper lists backprop among the programs
 * where a context-sensitive analysis can add nothing for mod/ref
 * clients.
 */

extern void *malloc(unsigned long n);
extern int printf(const char *fmt, ...);
extern double exp(double x);

#define NIN 4
#define NHID 5
#define NOUT 3
#define ETA 0.25

/* Allocate a rows x cols matrix as an array of row pointers. */
static double **alloc_matrix(int rows, int cols)
{
    double **m = malloc((unsigned long)rows * sizeof(double *));
    int r, c;
    for (r = 0; r < rows; r++) {
        m[r] = malloc((unsigned long)cols * sizeof(double));
        for (c = 0; c < cols; c++)
            m[r][c] = 0.01 * (double)((r * 7 + c * 3) % 13 - 6);
    }
    return m;
}

static double *alloc_vector(int n)
{
    double *v = malloc((unsigned long)n * sizeof(double));
    int i;
    for (i = 0; i < n; i++)
        v[i] = 0.0;
    return v;
}

static double squash(double x)
{
    return 1.0 / (1.0 + exp(-x));
}

/* Forward pass: layer activation from inputs and a weight matrix. */
static void forward(double *in, int nin, double **w, double *out, int nout)
{
    int j, i;
    for (j = 0; j < nout; j++) {
        double sum = 0.0;
        for (i = 0; i < nin; i++)
            sum = sum + w[j][i] * in[i];
        out[j] = squash(sum);
    }
}

/* Output-layer deltas. */
static void output_error(double *out, double *target, double *delta, int n)
{
    int j;
    for (j = 0; j < n; j++)
        delta[j] = out[j] * (1.0 - out[j]) * (target[j] - out[j]);
}

/* Hidden-layer deltas folded back through the output weights. */
static void hidden_error(double *hid, int nhid, double **w_out,
                         double *delta_out, int nout, double *delta_hid)
{
    int i, j;
    for (i = 0; i < nhid; i++) {
        double sum = 0.0;
        for (j = 0; j < nout; j++)
            sum = sum + delta_out[j] * w_out[j][i];
        delta_hid[i] = hid[i] * (1.0 - hid[i]) * sum;
    }
}

/* Gradient step on one weight matrix. */
static void adjust(double **w, double *delta, double *activ,
                   int nto, int nfrom)
{
    int j, i;
    for (j = 0; j < nto; j++)
        for (i = 0; i < nfrom; i++)
            w[j][i] = w[j][i] + ETA * delta[j] * activ[i];
}

static double patterns[4][NIN] = {
    { 0.0, 0.0, 1.0, 0.0 },
    { 0.0, 1.0, 0.0, 1.0 },
    { 1.0, 0.0, 0.0, 1.0 },
    { 1.0, 1.0, 1.0, 0.0 },
};

static double targets[4][NOUT] = {
    { 1.0, 0.0, 0.0 },
    { 0.0, 1.0, 0.0 },
    { 0.0, 0.0, 1.0 },
    { 1.0, 0.0, 1.0 },
};

int main(void)
{
    double **w_hid = alloc_matrix(NHID, NIN);
    double **w_out = alloc_matrix(NOUT, NHID);
    double *in_vec = alloc_vector(NIN);
    double *tgt_vec = alloc_vector(NOUT);
    double *hid = alloc_vector(NHID);
    double *out = alloc_vector(NOUT);
    double *delta_out = alloc_vector(NOUT);
    double *delta_hid = alloc_vector(NHID);
    int epoch, p, j, i;
    double err;

    for (epoch = 0; epoch < 50; epoch++) {
        err = 0.0;
        for (p = 0; p < 4; p++) {
            /* Stage the pattern into heap vectors so every routine
             * sees a single abstract input location. */
            for (i = 0; i < NIN; i++)
                in_vec[i] = patterns[p][i];
            for (j = 0; j < NOUT; j++)
                tgt_vec[j] = targets[p][j];
            forward(in_vec, NIN, w_hid, hid, NHID);
            forward(hid, NHID, w_out, out, NOUT);
            output_error(out, tgt_vec, delta_out, NOUT);
            hidden_error(hid, NHID, w_out, delta_out, NOUT, delta_hid);
            adjust(w_out, delta_out, hid, NOUT, NHID);
            adjust(w_hid, delta_hid, in_vec, NHID, NIN);
            for (j = 0; j < NOUT; j++) {
                double d = tgt_vec[j] - out[j];
                err = err + d * d;
            }
        }
    }
    printf("final squared error: %f\n", err);
    return 0;
}
