"""Generated programs where context-sensitivity *does* win.

Section 5 of the paper: "it is easy to construct programs where
context-sensitivity provides an arbitrarily large benefit."  These
generators build exactly such programs, parameterized by size, so the
benchmark harness can show the inverse result — CI imprecision growing
linearly while CS stays exact — demonstrating that the reproduction's
equal-precision finding on the suite is a property of the programs, not
a blindness of the harness.
"""

from __future__ import annotations

from io import StringIO

from ..ir.graph import Program
from ..frontend.lower import lower_source


def cs_wins_source(n_sites: int) -> str:
    """A program with one identity function called from ``n_sites``
    call sites, each passing (and then dereferencing) the address of a
    distinct global.

    Context-insensitive analysis merges all actuals at ``id``'s formal,
    so every dereference sees all ``n_sites`` globals; the
    context-sensitive analysis keeps each site exact (1 location).
    """
    if n_sites < 1:
        raise ValueError("need at least one call site")
    out = StringIO()
    out.write("/* generated: context-sensitivity wins, N = %d */\n"
              % n_sites)
    for i in range(n_sites):
        out.write(f"int g{i};\n")
    out.write("\nint *id(int *p) { return p; }\n\n")
    out.write("int main(void) {\n")
    out.write("    int total = 0;\n")
    for i in range(n_sites):
        out.write(f"    int *p{i} = id(&g{i});\n")
        out.write(f"    *p{i} = {i};\n")
        out.write(f"    total = total + *p{i};\n")
    out.write("    return total;\n}\n")
    return out.getvalue()


def deep_chain_source(depth: int) -> str:
    """A chain of ``depth`` wrappers around the identity function, with
    two roots passing distinct globals.

    Each wrapper level is another opportunity for a context-insensitive
    analysis to conflate the two flows; a context-sensitive analysis
    tracks them separately through the whole chain.
    """
    if depth < 1:
        raise ValueError("need at least one wrapper level")
    out = StringIO()
    out.write("/* generated: %d-deep wrapper chain */\n" % depth)
    out.write("int ga, gb;\n\n")
    out.write("int *w0(int *p) { return p; }\n")
    for i in range(1, depth + 1):
        out.write(f"int *w{i}(int *p) {{ return w{i - 1}(p); }}\n")
    out.write("\nint main(void) {\n")
    out.write(f"    int *pa = w{depth}(&ga);\n")
    out.write(f"    int *pb = w{depth}(&gb);\n")
    out.write("    *pa = 1;\n")
    out.write("    *pb = 2;\n")
    out.write("    return *pa + *pb;\n}\n")
    return out.getvalue()


def swap_cells_source(n_pairs: int) -> str:
    """``n_pairs`` disjoint pointer cells updated through one shared
    store routine — context-insensitive analysis cross-pollinates the
    cells' contents, context-sensitive analysis keeps each cell exact.
    """
    if n_pairs < 1:
        raise ValueError("need at least one pair")
    out = StringIO()
    out.write("/* generated: %d cells through one store routine */\n"
              % n_pairs)
    for i in range(n_pairs):
        out.write(f"int v{i};\nint *cell{i};\n")
    out.write("\nvoid put(int **cell, int *value) { *cell = value; }\n\n")
    out.write("int main(void) {\n")
    for i in range(n_pairs):
        out.write(f"    put(&cell{i}, &v{i});\n")
    for i in range(n_pairs):
        out.write(f"    *cell{i} = {i};\n")
    out.write("    return v0;\n}\n")
    return out.getvalue()


def assumption_chain_source(chain_length: int, n_sites: int = 3) -> str:
    """A callee with a chain of ``chain_length`` strong updates through
    pointer formals, called from ``n_sites`` sites with distinct
    globals, while an unrelated store pair must survive the chain.

    This is §4.1's combinatorial explosion made concrete: a surviving
    store pair must be qualified by one assumption per non-overwriting
    location ("we must enumerate all of the ways in which the input
    pair could fail to be overwritten.  A chain of such update nodes
    quickly yields a large combinatorial explosion").  Both analyses
    compute the same answer at every dereference; only the cost
    differs — and §4.2's CI-based prunings collapse it, which is the
    speedup the paper could not measure ("the unoptimized algorithm
    could only be applied to very small examples").
    """
    if chain_length < 1:
        raise ValueError("need at least one update in the chain")
    if not 1 <= n_sites <= 26:
        raise ValueError("n_sites must be between 1 and 26")
    out = StringIO()
    out.write("/* generated: %d-deep strong-update chain, %d sites */\n"
              % (chain_length, n_sites))
    out.write("int held_target;\nint *held;\n")
    suffixes = "abcdefghijklmnopqrstuvwxyz"[:n_sites]
    for i in range(chain_length):
        for s in suffixes:
            out.write(f"int t{i}_{s};\n")
    params = ", ".join(f"int *q{i}" for i in range(chain_length))
    out.write(f"\nvoid chain({params}) {{\n")
    for i in range(chain_length):
        out.write(f"    *q{i} = {i};\n")
    out.write("}\n\nint main(void) {\n")
    out.write("    held = &held_target;\n")
    for s in suffixes:
        args = ", ".join(f"&t{i}_{s}" for i in range(chain_length))
        out.write(f"    chain({args});\n")
    out.write("    return *held;\n}\n")
    return out.getvalue()


def copy_chain_source(n_pointers: int, n_targets: int) -> str:
    """A chain of ``n_pointers`` global pointer cells, the first
    assigned the addresses of ``n_targets`` globals (under branches),
    each subsequent cell copied from its predecessor, and every cell
    dereferenced.

    Points-to facts number ``n_pointers × n_targets``, making this the
    scaling workload for Section 3.1's complexity claim: O(n³) worst
    case, "O(n²) in the average case, in which each pointer has only a
    small constant number of referents".
    """
    if n_pointers < 1 or n_targets < 1:
        raise ValueError("need at least one pointer and one target")
    out = StringIO()
    out.write("/* generated: %d-cell copy chain, %d targets */\n"
              % (n_pointers, n_targets))
    for i in range(n_targets):
        out.write(f"int g{i};\n")
    for i in range(n_pointers):
        out.write(f"int *c{i};\n")
    out.write("\nint main(int argc, char **argv) {\n")
    out.write("    int selector = argc;\n")
    for i in range(n_targets):
        out.write(f"    if (selector == {i}) c0 = &g{i};\n")
    for i in range(1, n_pointers):
        out.write(f"    c{i} = c{i - 1};\n")
    out.write("    int total = 0;\n")
    for i in range(n_pointers):
        out.write(f"    if (c{i}) total = total + *c{i};\n")
    out.write("    return total;\n}\n")
    return out.getvalue()


def load_cs_wins(n_sites: int, **options) -> Program:
    return lower_source(cs_wins_source(n_sites),
                        name=f"cs_wins_{n_sites}", **options)


def load_deep_chain(depth: int, **options) -> Program:
    return lower_source(deep_chain_source(depth),
                        name=f"deep_chain_{depth}", **options)


def load_swap_cells(n_pairs: int, **options) -> Program:
    return lower_source(swap_cells_source(n_pairs),
                        name=f"swap_cells_{n_pairs}", **options)


def load_assumption_chain(chain_length: int, n_sites: int = 3,
                          **options) -> Program:
    return lower_source(assumption_chain_source(chain_length, n_sites),
                        name=f"assumption_chain_{chain_length}", **options)


def load_copy_chain(n_pointers: int, n_targets: int, **options) -> Program:
    return lower_source(copy_chain_source(n_pointers, n_targets),
                        name=f"copy_chain_{n_pointers}x{n_targets}",
                        **options)
