"""Interned access paths.

An access path (paper Section 2) is an optional base-location followed
by a sequence of access operators, each denoting a structure/union
member access or an array access:

* paths **with** a base-location are *locations* and denote indirection
  through the store;
* paths with an **empty** base are *offsets* and denote relative
  addressing into aggregate values (they appear on value outputs).

"Careful interning of access operators ensures that an access path is
aliased only to its prefixes" — we guarantee this by (a) interning
every path so structural equality is identity, and (b) having the type
elaborator collapse all members of a union onto a single field slot, so
static union aliasing reduces to path equality.

Array accesses are summaries: one :class:`IndexOp` stands for every
element, per the paper's caveat that no array dependence analysis is
performed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from .base import BaseLocation


class AccessOp:
    """Abstract access operator.  Interned; equality is identity."""

    __slots__ = ()

    @property
    def is_index(self) -> bool:
        raise NotImplementedError


class FieldOp(AccessOp):
    """Selection of a struct member (or the collapsed union slot).

    ``owner`` is an opaque key identifying the aggregate type (so that
    ``.x`` of two different struct types are distinct operators) and
    ``name`` the member name — or the sentinel ``"<union>"`` for the
    single slot shared by all members of a union.
    """

    __slots__ = ("owner", "name")
    _interned: dict[tuple, "FieldOp"] = {}

    def __new__(cls, owner: object, name: str) -> "FieldOp":
        key = (owner, name)
        op = cls._interned.get(key)
        if op is None:
            op = super().__new__(cls)
            object.__setattr__(op, "owner", owner)
            object.__setattr__(op, "name", name)
            cls._interned[key] = op
        return op

    def __setattr__(self, key, value):  # immutable after interning
        raise AttributeError("FieldOp is immutable")

    def __reduce__(self):
        # Route unpickling through __new__ so deserialized operators
        # unify with the process-wide interned instances (equality is
        # identity throughout the analysis).
        return (FieldOp, (self.owner, self.name))

    @property
    def is_index(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f".{self.name}"


class IndexOp(AccessOp):
    """Array element access, collapsed over all indices.

    There is exactly one instance: the analysis keeps a single
    approximation for all values stored in an array.
    """

    __slots__ = ()
    _instance: Optional["IndexOp"] = None

    def __new__(cls) -> "IndexOp":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (IndexOp, ())

    @property
    def is_index(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "[*]"


INDEX = IndexOp()


class AccessPath:
    """An interned (base, operators) pair.

    Use :func:`make_path` / :meth:`extend` / :meth:`append` /
    :meth:`subtract` to construct paths; never instantiate directly.
    Equality and hashing are identity, which is sound because of
    interning.
    """

    __slots__ = ("base", "ops")
    _interned: dict[tuple, "AccessPath"] = {}

    def __new__(cls, base: Optional[BaseLocation],
                ops: Tuple[AccessOp, ...]) -> "AccessPath":
        key = (id(base), ops)
        path = cls._interned.get(key)
        if path is None:
            path = super().__new__(cls)
            object.__setattr__(path, "base", base)
            object.__setattr__(path, "ops", ops)
            cls._interned[key] = path
        return path

    def __setattr__(self, key, value):
        raise AttributeError("AccessPath is immutable")

    def __reduce__(self):
        # Re-intern on load: the pickle memo keeps base-location
        # identity consistent within one stream, and __new__ then
        # guarantees one AccessPath per (base, ops) in the loading
        # process, preserving the identity-equality invariant.
        return (AccessPath, (self.base, self.ops))

    # No __hash__/__eq__: interning makes structural equality identity,
    # so the inherited id-based hashing is exact — and C-speed, which
    # matters because every solver set operation hashes paths.

    # -- classification ------------------------------------------------

    @property
    def is_offset(self) -> bool:
        """True for relative paths (no base), used on value outputs."""
        return self.base is None

    @property
    def is_location(self) -> bool:
        """True for absolute paths that denote storage."""
        return self.base is not None

    @property
    def is_empty_offset(self) -> bool:
        return self.base is None and not self.ops

    @property
    def strongly_updateable(self) -> bool:
        """Whether a write through exactly this path kills old contents.

        Paper definitions box: a path is strongly updateable when its
        base-location denotes a single storage location and none of its
        access operators are array dereferences.
        """
        if self.base is None or self.base.multi_instance:
            return False
        return not any(op.is_index for op in self.ops)

    @property
    def report_category(self) -> str:
        """Figure 7 category of this path: offset/function/local/global/heap."""
        if self.base is None:
            return "offset"
        return self.base.report_category

    # -- construction --------------------------------------------------

    def extend(self, op: AccessOp) -> "AccessPath":
        """Append a single access operator."""
        return AccessPath(self.base, self.ops + (op,))

    def append(self, offset: "AccessPath") -> "AccessPath":
        """The paper's ``+``: attach an offset path to this path.

        ``loc + offset`` resolves relative addressing: writing an
        aggregate value whose member ``offset`` holds a pointer into
        location ``loc`` creates contents at ``loc + offset``.
        """
        if offset.base is not None:
            raise ValueError(f"cannot append non-offset path {offset!r}")
        if not offset.ops:
            return self
        return AccessPath(self.base, self.ops + offset.ops)

    def subtract(self, prefix: "AccessPath") -> "AccessPath":
        """The paper's ``−``: remove ``prefix``, yielding an offset.

        Requires ``dom(prefix, self)``; the result is the relative path
        from ``prefix`` down to ``self``.
        """
        if prefix.base is not self.base:
            raise ValueError(f"{prefix!r} is not a prefix of {self!r}")
        n = len(prefix.ops)
        if self.ops[:n] != prefix.ops:
            raise ValueError(f"{prefix!r} is not a prefix of {self!r}")
        return AccessPath(None, self.ops[n:])

    # -- display --------------------------------------------------------

    def __repr__(self) -> str:
        base = self.base.describe() if self.base else "ε" if not self.ops else ""
        return base + "".join(repr(op) for op in self.ops)


#: The empty offset path, written ε: a plain (non-aggregate) value.
EMPTY_OFFSET = AccessPath(None, ())


def make_path(base: Optional[BaseLocation],
              ops: Iterable[AccessOp] = ()) -> AccessPath:
    """Intern and return the access path ``base . ops...``."""
    return AccessPath(base, tuple(ops))


def location_path(base: BaseLocation,
                  ops: Iterable[AccessOp] = ()) -> AccessPath:
    """Intern a location path; ``base`` must be a real base-location."""
    if base is None:
        raise ValueError("location paths require a base-location")
    return AccessPath(base, tuple(ops))
