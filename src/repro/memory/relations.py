"""The paper's ``dom`` and ``strong-dom`` relations on access paths.

From the definitions box of Figure 1:

* ``A dom B``: a read (write) of ``A`` *may* observe (modify) a value
  written to ``B``.  In the path representation this holds iff ``A`` is
  a prefix of ``B``.

* ``A strong-dom B``: a read (write) of ``A`` *must* observe (modify) a
  value written to ``B``.  This holds iff ``A`` is strongly updateable
  (its base denotes a single storage location and none of its operators
  are array dereferences) and ``A`` is a prefix of ``B``.

Prefixing is the only aliasing the representation admits because access
operators are interned and union members collapse to one slot.
"""

from __future__ import annotations

from typing import Optional

from .access import AccessPath, make_path
from .facttable import FactTable, iter_bits


def is_prefix(a: AccessPath, b: AccessPath) -> bool:
    """Whether path ``a`` is a (non-strict) prefix of path ``b``."""
    if a.base is not b.base:
        return False
    n = len(a.ops)
    return len(b.ops) >= n and b.ops[:n] == a.ops


def dom(a: AccessPath, b: AccessPath) -> bool:
    """May-alias: a read/write of ``a`` may see a value written to ``b``."""
    return is_prefix(a, b)


def strong_dom(a: AccessPath, b: AccessPath) -> bool:
    """Must-alias: a write of ``a`` definitely overwrites ``b``'s value."""
    return a.strongly_updateable and is_prefix(a, b)


def may_alias(a: AccessPath, b: AccessPath) -> bool:
    """Symmetric may-alias: either path dominates the other."""
    return is_prefix(a, b) or is_prefix(b, a)


def meet(a: AccessPath, b: AccessPath) -> Optional[AccessPath]:
    """Greatest lower bound in the ``dom`` prefix order.

    With ``x ⊑ y`` defined as ``is_prefix(x, y)``, two paths over the
    same base always meet at their longest common prefix; paths over
    different bases share no lower bound at all (the order has no
    bottom), so the meet is ``None``.
    """
    if a.base is not b.base:
        return None
    n = 0
    for x, y in zip(a.ops, b.ops):
        if x != y:
            break
        n += 1
    return make_path(a.base, a.ops[:n])


# -- bitset-domain equivalents (dense-id fact engine) ----------------------
#
# The dense engine (see repro.memory.facttable) manipulates access
# paths through their table ids.  These mirrors keep the two
# representations verifiably in lockstep: each is defined by decoding,
# applying the object-level relation, and re-encoding, and the
# lattice-law property tests assert the id domain satisfies the same
# laws the object domain does.


def meet_ids(table: FactTable, a_id: int, b_id: int) -> Optional[int]:
    """GLB of two paths in the id domain: the id of ``meet(a, b)``,
    or ``None`` when the paths share no lower bound."""
    glb = meet(table.path_of(a_id), table.path_of(b_id))
    if glb is None:
        return None
    return table.path_id(glb)


def meet_mask(table: FactTable, a_mask: int, b_mask: int) -> int:
    """Pointwise meet of two path *sets* encoded as bitsets: the set
    of all defined ``meet(a, b)`` with ``a`` drawn from ``a_mask`` and
    ``b`` from ``b_mask``."""
    out = 0
    a_ids = list(iter_bits(a_mask))
    for b_id in iter_bits(b_mask):
        b_path = table.path_of(b_id)
        for a_id in a_ids:
            glb = meet(table.path_of(a_id), b_path)
            if glb is not None:
                out |= 1 << table.path_id(glb)
    return out
