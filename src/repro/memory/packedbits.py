"""Word-packed bitset kernels for the dense fact engine.

The dense engine of :mod:`repro.memory.facttable` encodes fact sets as
Python big-int bitsets.  Big ints are immutable: every join allocates
a fresh object, every decode walks the number a byte at a time in
Python, and nothing about the representation is addressable by a
vectorized kernel.  This module supplies the missing layer:

* :class:`PackedBits` — a fact set stored as a **fixed-width buffer of
  64-bit words** (numpy ``uint64``), sized by the owning table's
  interned-id universe and grown geometrically.  ``or_mask`` /
  ``and_not_mask`` / ``intersect_mask`` are in-place kernels: the join
  that used to reallocate an ever-wider big int mutates one buffer and
  hands back only the *delta*.  Narrow sets (below
  :data:`SWITCH_WORDS` words) stay in the big-int representation —
  a 40-word OR is a single C loop already, and the buffer only pays
  for itself once sets are wide enough for vector units to matter.
* ``decode_ids`` — the set-bit positions of a mask as one vectorized
  ``unpackbits``/``flatnonzero`` pass, replacing the per-byte Python
  loop of ``facttable.iter_bits`` on decode-heavy paths.
* ``scatter_ids`` — the inverse kernel: a bitset from a sequence of
  bit positions (vectorized ``packbits`` for large batches, a bit-OR
  loop for small ones).

Every kernel is **bit-identical** to its big-int counterpart — the
property tests in ``tests/memory/test_packedbits.py`` drive both
implementations over random masks, including zero and word-boundary
widths — so the engine can select a representation purely on cost.

When numpy is absent (or ``REPRO_NO_NUMPY=1`` is set, the test hook),
every entry point falls back to the plain big-int engine: the module
still imports, :data:`HAVE_NUMPY` is False, and behavior is unchanged
from the pre-packed representation.
"""

from __future__ import annotations

import os
from typing import Iterable, List

WORD_BITS = 64

#: Test hook: set to a non-empty value (other than ``"0"``) to force
#: the big-int fallback engine even when numpy is importable.
NO_NUMPY_ENV = "REPRO_NO_NUMPY"


def _import_numpy():
    if os.environ.get(NO_NUMPY_ENV, "") not in ("", "0"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy baked into the image
        return None
    return numpy


_np = _import_numpy()
HAVE_NUMPY = _np is not None

#: A stored set narrower than this many words stays a big int; at or
#: beyond it, :class:`PackedBits` switches to the word buffer.  Big-int
#: ``|``/``& ~`` are single C loops — the buffer's win is avoiding the
#: per-join reallocation and feeding numpy kernels, which only pays
#: once sets span hundreds of words.
SWITCH_WORDS = 128

#: Id batches at or above this size scatter through ``packbits``;
#: smaller batches use a Python bit-OR loop (lower fixed overhead).
_SCATTER_VECTOR_MIN = 32

#: Masks with at most this many set bits decode with the lsb-peeling
#: loop; numpy's fixed per-call cost (buffer round-trip, unpackbits,
#: flatnonzero) only amortizes on denser masks.
_DECODE_VECTOR_MIN = 48

#: Bit positions set in each byte value (shared with facttable's
#: fallback decode loop).
_BYTE_BITS = tuple(tuple(bit for bit in range(8) if value >> bit & 1)
                   for value in range(256))


def words_for(nbits: int) -> int:
    """64-bit words needed to hold ``nbits`` bit positions."""
    return (nbits + WORD_BITS - 1) >> 6


def _decode_ids_sparse(mask: int) -> List[int]:
    """lsb-peeling decode: fastest when few bits are set."""
    out: List[int] = []
    append = out.append
    while mask:
        lsb = mask & -mask
        append(lsb.bit_length() - 1)
        mask ^= lsb
    return out


def _decode_ids_py(mask: int) -> List[int]:
    if mask.bit_count() <= _DECODE_VECTOR_MIN:
        return _decode_ids_sparse(mask)
    out: List[int] = []
    append = out.append
    offset = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
        if byte:
            for bit in _BYTE_BITS[byte]:
                append(offset + bit)
        offset += 8
    return out


def _decode_ids_np(mask: int) -> List[int]:
    nbytes = (mask.bit_length() + 7) // 8
    if not nbytes:
        return []
    raw = _np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=_np.uint8)
    # tolist() hands back plain Python ints: callers shift by these
    # positions (``1 << ident``), which would overflow numpy's int64.
    return _np.flatnonzero(
        _np.unpackbits(raw, bitorder="little")).tolist()


def _scatter_ids_py(ids: Iterable[int]) -> int:
    mask = 0
    for ident in ids:
        mask |= 1 << ident
    return mask


def _scatter_ids_np(ids) -> int:
    ids = _np.asarray(ids)
    n = len(ids)
    if not n:
        return 0
    if n < _SCATTER_VECTOR_MIN:
        mask = 0
        for ident in ids.tolist():
            mask |= 1 << ident
        return mask
    top = int(ids.max())
    flags = _np.zeros(((top >> 3) + 1) << 3, dtype=_np.uint8)
    flags[ids] = 1
    return int.from_bytes(
        _np.packbits(flags, bitorder="little").tobytes(), "little")


if HAVE_NUMPY:
    def decode_ids(mask: int) -> List[int]:
        """Set-bit positions of ``mask``, ascending.  Sparse masks
        peel bits in Python (no fixed numpy cost); dense masks take
        the vectorized unpackbits path."""
        if mask.bit_count() <= _DECODE_VECTOR_MIN:
            return _decode_ids_sparse(mask)
        return _decode_ids_np(mask)

    def scatter_ids(ids) -> int:
        """Bitset with exactly the given bit positions set."""
        return _scatter_ids_np(ids)
else:
    decode_ids = _decode_ids_py
    scatter_ids = _scatter_ids_py


class PackedBits:
    """One fact set: big int while narrow, u64 word buffer once wide.

    The public currency stays Python ints (compact, hashable, pickle-
    friendly): ``or_mask`` takes and returns int masks, and
    ``to_mask`` renders the stored set (cached between mutations).
    Only the *storage* switches representation, so every kernel is
    drop-in bit-identical with the pure big-int engine.
    """

    __slots__ = ("_int", "_words", "_nwords", "_cached")

    def __init__(self, mask: int = 0) -> None:
        self._int = mask       # canonical while _words is None
        self._words = None     # numpy uint64 buffer once wide
        self._nwords = 0       # words in use (buffer may be larger)
        self._cached = mask    # int rendering; None when stale

    # -- representation management ----------------------------------------

    def _widen(self, nwords: int) -> None:
        """Move to (or grow) the word buffer, geometrically."""
        capacity = max(nwords, SWITCH_WORDS)
        if self._words is not None:
            capacity = max(capacity, 2 * len(self._words))
            used = self._words[:self._nwords]
            buf = _np.zeros(capacity, dtype=_np.uint64)
            buf[:self._nwords] = used
        else:
            capacity = max(capacity, 2 * nwords)
            buf = _np.zeros(capacity, dtype=_np.uint64)
            if self._int:
                existing = words_for(self._int.bit_length())
                buf[:existing] = _np.frombuffer(
                    self._int.to_bytes(existing * 8, "little"),
                    dtype="<u8")
                self._nwords = existing
            self._int = 0
        self._words = buf

    @property
    def is_packed(self) -> bool:
        return self._words is not None

    def allocated_words(self) -> int:
        """Words of buffer backing this set (0 in big-int mode)."""
        return len(self._words) if self._words is not None else 0

    def storage_words(self) -> int:
        """64-bit words this set occupies: the buffer's allocation in
        packed mode, the spanned width in big-int mode (telemetry)."""
        if self._words is not None:
            return len(self._words)
        return words_for(self._int.bit_length())

    # -- kernels ------------------------------------------------------------

    def or_mask(self, mask: int) -> int:
        """Join ``mask`` into the set; return the delta of new bits.

        The packed path mutates the buffer in place — no reallocation
        proportional to the stored width — and materializes only the
        (typically narrow) delta as an int.
        """
        if not mask:
            return 0
        if self._words is None:
            bits = self._int
            new = mask & ~bits
            if not new:
                return 0
            bits |= new
            if HAVE_NUMPY and bits.bit_length() > SWITCH_WORDS * WORD_BITS:
                self._int = bits
                self._cached = bits
                self._widen(words_for(bits.bit_length()))
                return new
            self._int = bits
            self._cached = bits
            return new
        nwords = words_for(mask.bit_length())
        if nwords > len(self._words):
            self._widen(nwords)
        incoming = _np.frombuffer(mask.to_bytes(nwords * 8, "little"),
                                  dtype="<u8").view(_np.uint64)
        view = self._words[:nwords]
        new = incoming & ~view
        if not new.any():
            return 0
        view |= new
        self._nwords = max(self._nwords, nwords)
        self._cached = None
        return int.from_bytes(new.tobytes(), "little")

    def and_not_mask(self, mask: int) -> int:
        """The stored set minus ``mask`` (pure; no mutation)."""
        return self.to_mask() & ~mask

    def intersect_mask(self, mask: int) -> int:
        """The stored set intersected with ``mask`` (pure)."""
        if self._words is None:
            return self._int & mask
        nwords = min(words_for(mask.bit_length()), self._nwords)
        if not nwords:
            return 0
        incoming = _np.frombuffer(mask.to_bytes(nwords * 8, "little"),
                                  dtype="<u8").view(_np.uint64)
        out = incoming & self._words[:nwords]
        return int.from_bytes(out.tobytes(), "little")

    def contains_bit(self, bit_index: int) -> bool:
        if self._words is None:
            return bool(self._int >> bit_index & 1)
        word = bit_index >> 6
        if word >= self._nwords:
            return False
        return bool(int(self._words[word]) >> (bit_index & 63) & 1)

    # -- views --------------------------------------------------------------

    def to_mask(self) -> int:
        """The stored set as a big int (cached until the next join)."""
        if self._cached is None:
            self._cached = int.from_bytes(
                self._words[:self._nwords].tobytes(), "little")
        return self._cached

    def popcount(self) -> int:
        return self.to_mask().bit_count()

    def bit_length(self) -> int:
        return self.to_mask().bit_length()

    def iter_ids(self) -> List[int]:
        return decode_ids(self.to_mask())

    def __bool__(self) -> bool:
        if self._words is None:
            return bool(self._int)
        return bool(self.to_mask())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedBits):
            return self.to_mask() == other.to_mask()
        if isinstance(other, int):
            return self.to_mask() == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - not used as a key
        return hash(self.to_mask())

    def __repr__(self) -> str:
        kind = "packed" if self._words is not None else "int"
        return f"<PackedBits {kind} {self.popcount()} bits>"

    # -- pickling ------------------------------------------------------------

    def __reduce__(self):
        # Ship the int rendering: portable across numpy-less readers,
        # and the receiver re-widens lazily on its first wide join.
        return (PackedBits, (self.to_mask(),))
