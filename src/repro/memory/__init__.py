"""Storage model: base-locations, access paths, and points-to pairs.

This package implements Section 2 of the paper — the namespace of
abstract memory the analyses reason about — independent of both the C
frontend and the IR, so it can be unit-tested (and property-tested) in
isolation.
"""

from .access import (
    EMPTY_OFFSET,
    INDEX,
    AccessOp,
    AccessPath,
    FieldOp,
    IndexOp,
    location_path,
    make_path,
)
from .base import (
    BaseLocation,
    LocationKind,
    function_location,
    global_location,
    heap_location,
    local_location,
    param_location,
    string_location,
)
from .pairs import PointsToPair, classify, dereference_targets, direct, pair
from .relations import dom, is_prefix, may_alias, strong_dom

__all__ = [
    "AccessOp",
    "AccessPath",
    "BaseLocation",
    "EMPTY_OFFSET",
    "FieldOp",
    "INDEX",
    "IndexOp",
    "LocationKind",
    "PointsToPair",
    "classify",
    "dereference_targets",
    "direct",
    "dom",
    "function_location",
    "global_location",
    "heap_location",
    "is_prefix",
    "local_location",
    "location_path",
    "make_path",
    "may_alias",
    "pair",
    "param_location",
    "string_location",
    "strong_dom",
]
