"""Points-to pairs: the facts both analyses propagate.

A points-to pair ``(a, b)`` on a node output means (paper Section 2):
"in the value produced by this output, indirecting through any location
(or offset) denoted by ``a`` may return any location denoted by ``b``".
The first element is the *path*, the second the *referent*.

Shapes in practice:

* on a **store** output, the path is a location (it has a base) — the
  pair records store contents;
* on a **value** output, the path is an offset — ``(ε, b)`` means "this
  value is (a pointer to) ``b``", and ``(.f, b)`` means "member ``f`` of
  this aggregate value points to ``b``";
* the referent is always a location (or a function's code address).

Pairs are interned so that membership tests and set operations are
cheap identity comparisons.
"""

from __future__ import annotations

from typing import Optional

from .access import EMPTY_OFFSET, AccessPath


class PointsToPair:
    """An interned ``(path, referent)`` pair."""

    __slots__ = ("path", "referent")
    _interned: dict[tuple, "PointsToPair"] = {}

    def __new__(cls, path: AccessPath, referent: AccessPath) -> "PointsToPair":
        key = (path, referent)
        pair = cls._interned.get(key)
        if pair is None:
            if referent.base is None:
                raise ValueError(
                    f"points-to referent must be a location, got {referent!r}")
            pair = super().__new__(cls)
            object.__setattr__(pair, "path", path)
            object.__setattr__(pair, "referent", referent)
            cls._interned[key] = pair
        return pair

    def __setattr__(self, key, value):
        raise AttributeError("PointsToPair is immutable")

    def __reduce__(self):
        # Re-intern on load (see AccessPath.__reduce__).
        return (PointsToPair, (self.path, self.referent))

    # No __hash__/__eq__: interning makes structural equality identity,
    # so the inherited id-based hashing is exact and C-speed.

    @property
    def is_direct(self) -> bool:
        """True when the path is the empty offset: the value itself
        points at the referent (the common case for pointer values)."""
        return self.path is EMPTY_OFFSET

    def __repr__(self) -> str:
        return f"({self.path!r} -> {self.referent!r})"


def pair(path: AccessPath, referent: AccessPath) -> PointsToPair:
    """Intern and return the points-to pair ``(path, referent)``."""
    return PointsToPair(path, referent)


def direct(referent: AccessPath) -> PointsToPair:
    """The pair ``(ε, referent)``: a value that points at ``referent``."""
    return PointsToPair(EMPTY_OFFSET, referent)


def path_of(p: PointsToPair) -> AccessPath:
    return p.path


def referent_of(p: PointsToPair) -> AccessPath:
    return p.referent


def classify(p: PointsToPair) -> tuple[str, str]:
    """Figure 7 cell for a pair: (path category, referent category)."""
    return (p.path.report_category, p.referent.report_category)


def dereference_targets(pairs, offset: Optional[AccessPath] = None):
    """The locations a value's pairs say it can point to.

    With no ``offset`` (or ε), yields referents of direct pairs — what
    indirecting through the value reaches.  With an offset, yields
    referents stored at that member of an aggregate value.
    """
    if offset is None:
        offset = EMPTY_OFFSET
    for p in pairs:
        if p.path is offset:
            yield p.referent
