"""Dense integer ids for interned facts, and the bitset codec.

The solvers' hot path is set union/membership over points-to pairs.
Interning already made those identity-based; this module goes one step
further and assigns every :class:`~repro.memory.pairs.PointsToPair`
(and every :class:`~repro.memory.access.AccessPath`) a *dense* integer
id, per :class:`FactTable`.  A set of facts then becomes a Python
big-int **bitset** — bit ``i`` set iff the fact with id ``i`` is in the
set — and the solver's join/meet operations become single ``|``/``& ~``
machine loops over 30-bit digits instead of per-object hash probes.

Id assignment order is whatever order the analysis first touches each
fact; nothing downstream may depend on it.  The decoding helpers map
bitsets back to the interned objects, which is how the object-level
query API of ``PointsToSolution`` stays intact on top of the bitset
representation.

One table is attached per :class:`~repro.ir.graph.Program` (see
:meth:`FactTable.for_program`), so repeated analyses of the same
program — CI then CS, or benchmark repeats — reuse the same ids and
the encode dictionaries stay warm.  Tables pickle with their insertion
order preserved, so a solution shipped across a process boundary
decodes to the same facts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .access import AccessPath
from .pairs import PointsToPair

#: Bit positions set in each byte value, precomputed: the decode loop
#: walks a bitset bytewise instead of peeling one bit per iteration.
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1)
    for value in range(256))


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    offset = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
        if byte:
            for bit in _BYTE_BITS[byte]:
                yield offset + bit
        offset += 8


def popcount(mask: int) -> int:
    """Number of set bits (facts) in a bitset."""
    return mask.bit_count()


def bitset_words(mask: int) -> int:
    """64-bit words a bitset spans (its highest set bit rounds up)."""
    return (mask.bit_length() + 63) >> 6


class FactTable:
    """Per-program dense ids for points-to pairs and access paths.

    ``pair_id``/``path_id`` assign ids on first sight (dense, starting
    at 0); ``pair_of``/``path_of`` invert them.  ``decode_calls``
    counts bitset→object materializations — the telemetry counter that
    shows how often the lazy decoding view is actually exercised.
    """

    __slots__ = ("_pair_ids", "_pair_objects", "_path_ids", "_path_objects",
                 "_base_masks", "_direct_mask", "_target_path_ids",
                 "decode_calls")

    #: Key under which a program's table lives in ``Program.extras``.
    EXTRAS_KEY = "fact_table"

    def __init__(self) -> None:
        self._pair_ids: Dict[PointsToPair, int] = {}
        self._pair_objects: List[PointsToPair] = []
        self._path_ids: Dict[AccessPath, int] = {}
        self._path_objects: List[AccessPath] = []
        #: Global index: path base location → bitset of every pair id
        #: whose path is rooted at that base.  Maintained at id
        #: assignment (once per distinct fact, ever), it lets transfer
        #: functions slice any fact bitset down to the pairs a location
        #: could alias — ``mask & base_mask(base)`` — without decoding.
        self._base_masks: Dict[object, int] = {}
        #: Bitset of the *direct* pair ids (empty-offset path: the
        #: value itself points at the referent), and per pair id the
        #: path id of its referent (-1 for non-direct pairs).  Together
        #: they make ``targets``/``op_locations`` answerable as pure
        #: bitset arithmetic — see :meth:`targets_mask`.
        self._direct_mask = 0
        self._target_path_ids: List[int] = []
        self.decode_calls = 0

    @classmethod
    def for_program(cls, program) -> "FactTable":
        """The program's shared table, created on first request."""
        table = program.extras.get(cls.EXTRAS_KEY)
        if not isinstance(table, cls):
            table = cls()
            program.extras[cls.EXTRAS_KEY] = table
        return table

    # -- pair ids ----------------------------------------------------------

    def pair_id(self, pair: PointsToPair) -> int:
        ident = self._pair_ids.get(pair)
        if ident is None:
            ident = len(self._pair_objects)
            self._pair_ids[pair] = ident
            self._pair_objects.append(pair)
            base = pair.path.base
            masks = self._base_masks
            masks[base] = masks.get(base, 0) | (1 << ident)
            if pair.is_direct:
                self._direct_mask |= 1 << ident
                self._target_path_ids.append(self.path_id(pair.referent))
            else:
                self._target_path_ids.append(-1)
        return ident

    def base_mask(self, base: object) -> int:
        """Bitset of every known pair whose path is rooted at ``base``."""
        return self._base_masks.get(base, 0)

    @property
    def direct_mask(self) -> int:
        """Bitset of every known direct (empty-offset) pair id."""
        return self._direct_mask

    def targets_mask(self, mask: int) -> int:
        """Path-id bitset of the direct referents among ``mask``'s
        pairs: ``targets``/``op_locations`` without materializing a
        single pair or path object.  Decode the result with
        :meth:`decode_paths` only when objects are actually needed."""
        out = 0
        ids = self._target_path_ids
        for ident in iter_bits(mask & self._direct_mask):
            out |= 1 << ids[ident]
        return out

    def pair_of(self, ident: int) -> PointsToPair:
        return self._pair_objects[ident]

    def pair_count(self) -> int:
        return len(self._pair_objects)

    def pair_mask(self, pairs: Iterable[PointsToPair]) -> int:
        """Encode an iterable of pairs as a bitset."""
        mask = 0
        for pair in pairs:
            mask |= 1 << self.pair_id(pair)
        return mask

    def decode_pairs(self, mask: int) -> List[PointsToPair]:
        """Materialize a bitset back into its pair objects."""
        self.decode_calls += 1
        objects = self._pair_objects
        out: List[PointsToPair] = []
        append = out.append
        offset = 0
        for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
            if byte:
                for bit in _BYTE_BITS[byte]:
                    append(objects[offset + bit])
            offset += 8
        return out

    def decode_items(self, mask: int) -> List[Tuple[int, PointsToPair]]:
        """Like :meth:`decode_pairs` but keeps each pair's id."""
        self.decode_calls += 1
        objects = self._pair_objects
        out: List[Tuple[int, PointsToPair]] = []
        append = out.append
        offset = 0
        for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
            if byte:
                for bit in _BYTE_BITS[byte]:
                    ident = offset + bit
                    append((ident, objects[ident]))
            offset += 8
        return out

    # -- path ids ----------------------------------------------------------

    def path_id(self, path: AccessPath) -> int:
        ident = self._path_ids.get(path)
        if ident is None:
            ident = len(self._path_objects)
            self._path_ids[path] = ident
            self._path_objects.append(path)
        return ident

    def path_of(self, ident: int) -> AccessPath:
        return self._path_objects[ident]

    def path_count(self) -> int:
        return len(self._path_objects)

    def path_mask(self, paths: Iterable[AccessPath]) -> int:
        mask = 0
        for path in paths:
            mask |= 1 << self.path_id(path)
        return mask

    def decode_paths(self, mask: int) -> List[AccessPath]:
        self.decode_calls += 1
        return [self._path_objects[ident] for ident in iter_bits(mask)]

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        # The object lists alone determine the table (ids are list
        # positions); the encode dicts rebuild against the re-interned
        # objects on load.
        return {"pairs": self._pair_objects, "paths": self._path_objects,
                "decode_calls": self.decode_calls}

    def __setstate__(self, state: dict) -> None:
        self._pair_objects = state["pairs"]
        self._path_objects = state["paths"]
        self._pair_ids = {pair: ident
                          for ident, pair in enumerate(self._pair_objects)}
        self._path_ids = {path: ident
                          for ident, path in enumerate(self._path_objects)}
        self._base_masks = {}
        self._direct_mask = 0
        self._target_path_ids = []
        for ident, pair in enumerate(self._pair_objects):
            base = pair.path.base
            self._base_masks[base] = \
                self._base_masks.get(base, 0) | (1 << ident)
            if pair.is_direct:
                self._direct_mask |= 1 << ident
                self._target_path_ids.append(self.path_id(pair.referent))
            else:
                self._target_path_ids.append(-1)
        self.decode_calls = state.get("decode_calls", 0)

    def __repr__(self) -> str:
        return (f"<FactTable {len(self._pair_objects)} pairs, "
                f"{len(self._path_objects)} paths>")
