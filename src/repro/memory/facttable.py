"""Dense integer ids for interned facts, and the bitset codec.

The solvers' hot path is set union/membership over points-to pairs.
Interning already made those identity-based; this module goes one step
further and assigns every :class:`~repro.memory.pairs.PointsToPair`
(and every :class:`~repro.memory.access.AccessPath`) a *dense* integer
id, per :class:`FactTable`.  A set of facts then becomes a Python
big-int **bitset** — bit ``i`` set iff the fact with id ``i`` is in the
set — and the solver's join/meet operations become single ``|``/``& ~``
machine loops over 30-bit digits instead of per-object hash probes.

Id assignment order is whatever order the analysis first touches each
fact; nothing downstream may depend on it.  The decoding helpers map
bitsets back to the interned objects, which is how the object-level
query API of ``PointsToSolution`` stays intact on top of the bitset
representation.

One table is attached per :class:`~repro.ir.graph.Program` (see
:meth:`FactTable.for_program`), so repeated analyses of the same
program — CI then CS, or benchmark repeats — reuse the same ids and
the encode dictionaries stay warm.  Tables pickle with their insertion
order preserved, so a solution shipped across a process boundary
decodes to the same facts.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .access import AccessPath
from .packedbits import decode_ids
from .pairs import PointsToPair, direct as _direct, pair as _make_pair

#: Bit positions set in each byte value, precomputed: the decode loop
#: walks a bitset bytewise instead of peeling one bit per iteration.
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1)
    for value in range(256))


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    offset = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
        if byte:
            for bit in _BYTE_BITS[byte]:
                yield offset + bit
        offset += 8


def popcount(mask: int) -> int:
    """Number of set bits (facts) in a bitset."""
    return mask.bit_count()


class _Translation:
    """One memoized fact translation, keyed by an interned referent.

    A transfer function like lookup or update maps each *individual*
    fact id to a fixed emitted bitset — a pure function of interned
    ids, so it never changes once computed.  ``bits[id]`` records that
    per-id image (0 when the fact does not translate), ``seen`` the ids
    classified so far, and ``memo`` caches whole query masks → emitted
    unions, so a repeated query (the common case: deterministic
    schedules replay the same mask trajectory on every warm run of a
    program) costs one dict probe instead of a decode loop.
    """

    __slots__ = ("seen", "bits", "memo")

    def __init__(self) -> None:
        self.seen = 0
        self.bits: Dict[int, int] = {}
        self.memo: Dict[int, int] = {}


def bitset_words(mask: int) -> int:
    """64-bit words a bitset spans (its highest set bit rounds up)."""
    return (mask.bit_length() + 63) >> 6


class FactTable:
    """Per-program dense ids for points-to pairs and access paths.

    ``pair_id``/``path_id`` assign ids on first sight (dense, starting
    at 0); ``pair_of``/``path_of`` invert them.  ``decode_calls``
    counts bitset→object materializations — the telemetry counter that
    shows how often the lazy decoding view is actually exercised.
    """

    __slots__ = ("_pair_ids", "_pair_objects", "_path_ids", "_path_objects",
                 "_base_masks", "_direct_mask", "_target_path_ids",
                 "decode_calls", "kernel_calls", "lock",
                 "_lookup_tr", "_write_tr", "_kill_tr", "_extend_tr",
                 "_extract_tr", "_direct_refs")

    #: Key under which a program's table lives in ``Program.extras``.
    EXTRAS_KEY = "fact_table"

    def __init__(self) -> None:
        self._pair_ids: Dict[PointsToPair, int] = {}
        self._pair_objects: List[PointsToPair] = []
        self._path_ids: Dict[AccessPath, int] = {}
        self._path_objects: List[AccessPath] = []
        #: Global index: path base location → bitset of every pair id
        #: whose path is rooted at that base.  Maintained at id
        #: assignment (once per distinct fact, ever), it lets transfer
        #: functions slice any fact bitset down to the pairs a location
        #: could alias — ``mask & base_mask(base)`` — without decoding.
        self._base_masks: Dict[object, int] = {}
        #: Bitset of the *direct* pair ids (empty-offset path: the
        #: value itself points at the referent), and per pair id the
        #: path id of its referent (-1 for non-direct pairs).  Together
        #: they make ``targets``/``op_locations`` answerable as pure
        #: bitset arithmetic — see :meth:`targets_mask`.
        self._direct_mask = 0
        self._target_path_ids: List[int] = []
        self.decode_calls = 0
        #: Translation-kernel invocations — queries that reached the
        #: table's kernels (classification or mask aggregation).  The
        #: handlers' own memo fast path does not count: a warm solve
        #: showing few kernel calls ran almost entirely on memo hits.
        self.kernel_calls = 0
        #: Set by the SCC-parallel driver: guards id assignment and
        #: translation growth when handlers run on worker threads.
        #: None (the default) keeps the serial fast path lock-free.
        self.lock = None
        # Translation caches, keyed by the interned referent (or access
        # operator) that parameterizes the transfer function.  Pure
        # functions of interned ids: shared by every run over this
        # program, dropped (and lazily rebuilt) across pickling.
        self._lookup_tr: Dict[AccessPath, _Translation] = {}
        self._write_tr: Dict[AccessPath, _Translation] = {}
        self._kill_tr: Dict[AccessPath, _Translation] = {}
        self._extend_tr: Dict[object, _Translation] = {}
        self._extract_tr: Dict[object, _Translation] = {}
        #: Exact-mask memo for :meth:`direct_referents` (sound to key
        #: by mask alone: an id's directness is fixed at interning, and
        #: a mask can only contain already-interned ids).
        self._direct_refs: Dict[int, List[AccessPath]] = {}

    @classmethod
    def for_program(cls, program) -> "FactTable":
        """The program's shared table, created on first request."""
        table = program.extras.get(cls.EXTRAS_KEY)
        if not isinstance(table, cls):
            table = cls()
            program.extras[cls.EXTRAS_KEY] = table
        return table

    # -- pair ids ----------------------------------------------------------

    def pair_id(self, pair: PointsToPair) -> int:
        ident = self._pair_ids.get(pair)
        if ident is None:
            ident = len(self._pair_objects)
            self._pair_ids[pair] = ident
            self._pair_objects.append(pair)
            base = pair.path.base
            masks = self._base_masks
            masks[base] = masks.get(base, 0) | (1 << ident)
            if pair.is_direct:
                self._direct_mask |= 1 << ident
                self._target_path_ids.append(self.path_id(pair.referent))
            else:
                self._target_path_ids.append(-1)
        return ident

    def base_mask(self, base: object) -> int:
        """Bitset of every known pair whose path is rooted at ``base``."""
        return self._base_masks.get(base, 0)

    @property
    def direct_mask(self) -> int:
        """Bitset of every known direct (empty-offset) pair id."""
        return self._direct_mask

    def targets_mask(self, mask: int) -> int:
        """Path-id bitset of the direct referents among ``mask``'s
        pairs: ``targets``/``op_locations`` without materializing a
        single pair or path object.  Decode the result with
        :meth:`decode_paths` only when objects are actually needed."""
        out = 0
        ids = self._target_path_ids
        for ident in decode_ids(mask & self._direct_mask):
            out |= 1 << ids[ident]
        return out

    def direct_referents(self, mask: int) -> List[AccessPath]:
        """The referent paths of ``mask``'s direct pairs, via the
        target-path index — no pair objects decoded, ``decode_calls``
        untouched.  This is the location set a lookup/update input
        denotes, and the dense handlers' replacement for filtering a
        decoded pair list on ``path is EMPTY_OFFSET``.  Memoized per
        exact mask; callers must not mutate the returned list."""
        refs = self._direct_refs.get(mask)
        if refs is None:
            ids = self._target_path_ids
            paths = self._path_objects
            refs = [paths[ids[ident]]
                    for ident in decode_ids(mask & self._direct_mask)]
            self._direct_refs[mask] = refs
        return refs

    # -- translation kernels ------------------------------------------------
    #
    # Each transfer function's per-fact image is a pure function of
    # interned ids; these kernels classify each id once (ever, per
    # table) and serve every later query from the exact-mask memo.
    # The serial path is lock-free; the SCC-parallel driver installs
    # ``self.lock`` so classification (which interns new pairs) stays
    # race-free across worker threads.

    def _translate(self, cache: Dict, key, mask: int,
                   classify: Callable) -> int:
        if not mask:
            return 0
        tr = cache.get(key)
        if tr is None:
            tr = cache.setdefault(key, _Translation())
        self.kernel_calls += 1
        hit = tr.memo.get(mask)
        if hit is not None:
            return hit
        lock = self.lock
        if lock is not None:
            lock.acquire()
        try:
            new = mask & ~tr.seen
            if new:
                classify(tr, new, key)
                tr.seen |= new
            bits = tr.bits
            emit = 0
            for ident in decode_ids(mask):
                emit |= bits[ident]
            tr.memo[mask] = emit
            return emit
        finally:
            if lock is not None:
                lock.release()

    def _memo_of(self, cache: Dict, key) -> Dict[int, int]:
        """The exact-mask memo dict of one translation — handlers hold
        these directly so a warm-run query is a single dict probe with
        no call through the table.  Entries are pure functions of the
        (mask, key) pair and never change once written, so reading the
        live dict is safe even while classification grows it."""
        tr = cache.get(key)
        if tr is None:
            tr = cache.setdefault(key, _Translation())
        return tr.memo

    def lookup_memo(self, referent: AccessPath) -> Dict[int, int]:
        return self._memo_of(self._lookup_tr, referent)

    def write_memo(self, referent: AccessPath) -> Dict[int, int]:
        return self._memo_of(self._write_tr, referent)

    def kill_memo(self, referent: AccessPath) -> Dict[int, int]:
        return self._memo_of(self._kill_tr, referent)

    def extend_memo(self, op: object) -> Dict[int, int]:
        return self._memo_of(self._extend_tr, op)

    def extract_memo(self, op: object) -> Dict[int, int]:
        return self._memo_of(self._extract_tr, op)

    def translate_lookup(self, referent: AccessPath, mask: int) -> int:
        """Pairs emitted by dereferencing location ``referent`` against
        the store pairs in ``mask`` (CWZ90 lookup: prefix-subtract the
        referent from each dominated store path)."""
        return self._translate(self._lookup_tr, referent, mask,
                               self._classify_lookup)

    def _classify_lookup(self, tr: _Translation, new_mask: int,
                         referent: AccessPath) -> None:
        r_ops = referent.ops
        n = len(r_ops)
        bits = tr.bits
        objects = self._pair_objects
        for ident in decode_ids(new_mask):
            sp = objects[ident]
            sp_ops = sp.path.ops
            # tuple slice compare == is_prefix (a short slice never
            # equals a longer r_ops)
            if sp_ops[:n] == r_ops:
                bits[ident] = 1 << self.pair_id(_make_pair(
                    AccessPath(None, sp_ops[n:]), sp.referent))
            else:
                bits[ident] = 0

    def translate_writes(self, referent: AccessPath, mask: int) -> int:
        """Store pairs written by storing the value pairs in ``mask``
        into location ``referent`` (path-append under the referent)."""
        return self._translate(self._write_tr, referent, mask,
                               self._classify_writes)

    def _classify_writes(self, tr: _Translation, new_mask: int,
                         referent: AccessPath) -> None:
        bits = tr.bits
        objects = self._pair_objects
        for ident in decode_ids(new_mask):
            vp = objects[ident]
            bits[ident] = 1 << self.pair_id(_make_pair(
                referent.append(vp.path), vp.referent))

    def kill_mask(self, referent: AccessPath, mask: int) -> int:
        """The subset of ``mask``'s store pairs strongly updated by
        location ``referent`` (callers pre-slice to the same-base
        candidates; a bare referent kills that whole slice without a
        kernel query)."""
        return self._translate(self._kill_tr, referent, mask,
                               self._classify_kill)

    def _classify_kill(self, tr: _Translation, new_mask: int,
                       referent: AccessPath) -> None:
        r_ops = referent.ops
        n = len(r_ops)
        bits = tr.bits
        objects = self._pair_objects
        for ident in decode_ids(new_mask):
            if objects[ident].path.ops[:n] == r_ops:
                bits[ident] = 1 << ident
            else:
                bits[ident] = 0

    def translate_extend(self, op: object, mask: int) -> int:
        """FIELD/INDEX primop image: each direct pair's referent
        extended by one access operator."""
        return self._translate(self._extend_tr, op, mask,
                               self._classify_extend)

    def _classify_extend(self, tr: _Translation, new_mask: int,
                         op: object) -> None:
        bits = tr.bits
        objects = self._pair_objects
        for ident in decode_ids(new_mask):
            p = objects[ident]
            if p.is_direct:
                bits[ident] = 1 << self.pair_id(
                    _direct(p.referent.extend(op)))
            else:
                bits[ident] = 0

    def translate_extract(self, op: object, mask: int) -> int:
        """EXTRACT primop image: peel ``op`` off each value-offset
        pair whose path starts with it."""
        return self._translate(self._extract_tr, op, mask,
                               self._classify_extract)

    def _classify_extract(self, tr: _Translation, new_mask: int,
                          op: object) -> None:
        bits = tr.bits
        objects = self._pair_objects
        for ident in decode_ids(new_mask):
            p = objects[ident]
            path = p.path
            if path.base is None and path.ops and path.ops[0] is op:
                bits[ident] = 1 << self.pair_id(_make_pair(
                    AccessPath(None, path.ops[1:]), p.referent))
            else:
                bits[ident] = 0

    def pair_of(self, ident: int) -> PointsToPair:
        return self._pair_objects[ident]

    def pair_count(self) -> int:
        return len(self._pair_objects)

    def pair_mask(self, pairs: Iterable[PointsToPair]) -> int:
        """Encode an iterable of pairs as a bitset."""
        mask = 0
        for pair in pairs:
            mask |= 1 << self.pair_id(pair)
        return mask

    def decode_pairs(self, mask: int) -> List[PointsToPair]:
        """Materialize a bitset back into its pair objects (set-bit
        positions found by the vectorized kernel when available)."""
        self.decode_calls += 1
        objects = self._pair_objects
        return [objects[ident] for ident in decode_ids(mask)]

    def decode_items(self, mask: int) -> List[Tuple[int, PointsToPair]]:
        """Like :meth:`decode_pairs` but keeps each pair's id."""
        self.decode_calls += 1
        objects = self._pair_objects
        return [(ident, objects[ident]) for ident in decode_ids(mask)]

    # -- path ids ----------------------------------------------------------

    def path_id(self, path: AccessPath) -> int:
        ident = self._path_ids.get(path)
        if ident is None:
            ident = len(self._path_objects)
            self._path_ids[path] = ident
            self._path_objects.append(path)
        return ident

    def path_of(self, ident: int) -> AccessPath:
        return self._path_objects[ident]

    def path_count(self) -> int:
        return len(self._path_objects)

    def path_mask(self, paths: Iterable[AccessPath]) -> int:
        mask = 0
        for path in paths:
            mask |= 1 << self.path_id(path)
        return mask

    def decode_paths(self, mask: int) -> List[AccessPath]:
        self.decode_calls += 1
        return [self._path_objects[ident] for ident in decode_ids(mask)]

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        # The object lists alone determine the table (ids are list
        # positions); the encode dicts rebuild against the re-interned
        # objects on load.  Translation caches and the parallel lock
        # are deliberately dropped: pure functions of ids, they rebuild
        # lazily, and locks do not pickle.
        return {"pairs": self._pair_objects, "paths": self._path_objects,
                "decode_calls": self.decode_calls,
                "kernel_calls": self.kernel_calls}

    def __setstate__(self, state: dict) -> None:
        self._pair_objects = state["pairs"]
        self._path_objects = state["paths"]
        self._pair_ids = {pair: ident
                          for ident, pair in enumerate(self._pair_objects)}
        self._path_ids = {path: ident
                          for ident, path in enumerate(self._path_objects)}
        self._base_masks = {}
        self._direct_mask = 0
        self._target_path_ids = []
        for ident, pair in enumerate(self._pair_objects):
            base = pair.path.base
            self._base_masks[base] = \
                self._base_masks.get(base, 0) | (1 << ident)
            if pair.is_direct:
                self._direct_mask |= 1 << ident
                self._target_path_ids.append(self.path_id(pair.referent))
            else:
                self._target_path_ids.append(-1)
        self.decode_calls = state.get("decode_calls", 0)
        self.kernel_calls = state.get("kernel_calls", 0)
        self.lock = None
        self._lookup_tr = {}
        self._write_tr = {}
        self._kill_tr = {}
        self._extend_tr = {}
        self._extract_tr = {}
        self._direct_refs = {}

    def __repr__(self) -> str:
        return (f"<FactTable {len(self._pair_objects)} pairs, "
                f"{len(self._path_objects)} paths>")
