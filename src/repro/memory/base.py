"""Base-locations: the finite namespace of storage the analysis models.

The paper (Section 2) names allocation sites with *base-locations*:

    "a finite number of base-locations name allocation sites: there is
    one base-location for each variable, and for each static invocation
    site of memory-allocating library code such as malloc."

A base-location may model a single runtime cell (a global, or a local
of a non-recursive procedure) or many cells at once (heap allocation
sites, string literals reached from several places, locals of recursive
procedures under scheme 2 of footnote 4).  Only single-instance
locations can anchor strong updates.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional


class LocationKind(enum.Enum):
    """Storage class of a base-location, used for Figure 7 breakdowns."""

    GLOBAL = "global"      # file-scope variables and statics
    LOCAL = "local"        # automatic variables
    PARAM = "param"        # formal parameters (reported as "local" in Fig. 7)
    HEAP = "heap"          # one per static malloc/calloc/realloc site
    STRING = "string"      # string-literal storage (Fig. 7 counts as global)
    FUNCTION = "function"  # code addresses, for function pointers
    SUMMARY = "summary"    # synthetic hazard cells (<null>, <uninit>);
                           # only exist under the opt-in hazard model


#: Figure 7 collapses our six kinds into four reporting categories.
#: SUMMARY locations never appear in default lowerings; the figure
#: loops iterate fixed category lists, so "invalid" rows are skipped.
_REPORT_CATEGORY = {
    LocationKind.GLOBAL: "global",
    LocationKind.STRING: "global",
    LocationKind.LOCAL: "local",
    LocationKind.PARAM: "local",
    LocationKind.HEAP: "heap",
    LocationKind.FUNCTION: "function",
    LocationKind.SUMMARY: "invalid",
}

_uid_counter = itertools.count(1)


class BaseLocation:
    """A named allocation site.

    Instances are unique objects created by the frontend (or directly by
    tests); equality is identity.  ``multi_instance`` marks locations
    that may denote several runtime cells simultaneously and therefore
    can never be strongly updated.
    """

    __slots__ = ("kind", "name", "uid", "multi_instance", "ctype",
                 "procedure", "__weakref__")

    def __init__(self, kind: LocationKind, name: str, *,
                 multi_instance: bool | None = None,
                 ctype: Any = None,
                 procedure: Optional[str] = None) -> None:
        if multi_instance is None:
            # Heap sites and string literals summarize arbitrarily many
            # runtime objects; everything else defaults to a single cell.
            multi_instance = kind in (LocationKind.HEAP, LocationKind.STRING)
        self.kind = kind
        self.name = name
        self.uid = next(_uid_counter)
        self.multi_instance = multi_instance
        self.ctype = ctype
        self.procedure = procedure

    @property
    def report_category(self) -> str:
        """The Figure 7 category: function, local, global, or heap."""
        return _REPORT_CATEGORY[self.kind]

    @property
    def is_single_instance(self) -> bool:
        return not self.multi_instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = f"{self.procedure}::" if self.procedure else ""
        return f"<{self.kind.value} {scope}{self.name}#{self.uid}>"

    def describe(self) -> str:
        """Stable human-readable name (no uid), used in reports."""
        scope = f"{self.procedure}::" if self.procedure else ""
        return f"{scope}{self.name}"


def global_location(name: str, ctype: Any = None) -> BaseLocation:
    """Convenience constructor for a file-scope variable's location."""
    return BaseLocation(LocationKind.GLOBAL, name, ctype=ctype)


def local_location(name: str, procedure: str, *, recursive: bool = False,
                   ctype: Any = None) -> BaseLocation:
    """Location for an automatic variable.

    ``recursive=True`` applies scheme 2 of the paper's footnote 4: the
    single base-location stands for every live stack instance, so it is
    multi-instance and only weakly updateable.
    """
    return BaseLocation(LocationKind.LOCAL, name, procedure=procedure,
                        multi_instance=recursive, ctype=ctype)


def param_location(name: str, procedure: str, *, recursive: bool = False,
                   ctype: Any = None) -> BaseLocation:
    """Location for a formal parameter whose address is taken."""
    return BaseLocation(LocationKind.PARAM, name, procedure=procedure,
                        multi_instance=recursive, ctype=ctype)


def heap_location(site: str, ctype: Any = None) -> BaseLocation:
    """Location summarizing every object created at one malloc site."""
    return BaseLocation(LocationKind.HEAP, site, ctype=ctype)


def string_location(label: str) -> BaseLocation:
    """Location for one string literal's storage."""
    return BaseLocation(LocationKind.STRING, label)


def function_location(name: str) -> BaseLocation:
    """Location naming a function's code, the referent of ``&f``."""
    return BaseLocation(LocationKind.FUNCTION, name, multi_instance=False)


def null_location() -> BaseLocation:
    """Summary cell for the null/invalid pointer (hazard model).

    Multi-instance: a write whose only target may be null must not
    kill anything, and nothing legitimately lives at null.
    """
    return BaseLocation(LocationKind.SUMMARY, "<null>", multi_instance=True)


def uninit_location() -> BaseLocation:
    """Summary cell an uninitialized pointer points at (hazard model)."""
    return BaseLocation(LocationKind.SUMMARY, "<uninit>",
                        multi_instance=True)
