"""Size-capped LRU eviction, shared by every long-lived cache tier.

Two consumers need the same policy with different substrates:

* the serve daemon's **in-memory** tiers (lowered programs, solved
  results, response payloads) — :class:`LRUCache`, a thread-safe
  mapping with byte- and entry-count budgets and explicit
  hit/miss/eviction counters for telemetry;
* the **on-disk** summary store (:mod:`repro.analysis.incremental`)
  — :func:`evict_lru_files`, which applies the identical
  least-recently-*used* rule to a directory of immutable entries
  (recency is the file mtime; loaders bump it on each hit via
  :func:`touch`), so a long-lived process's store converges to its
  working set instead of growing without bound.

Both report evictions as monotone counters, surfaced in the daemon's
``/metrics`` and in ``kind="serve"`` telemetry records.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple


class LRUCache:
    """Thread-safe LRU mapping with entry-count and byte budgets.

    ``max_entries``/``max_bytes`` of ``None`` leave that budget
    unbounded.  Entry sizes come from ``sizeof`` (called once, at
    insertion — entries are treated as immutable) and default to 1,
    which makes ``max_bytes`` a second entry-count cap unless a real
    estimator is supplied.  A single oversized entry is still admitted
    (and evicts everything else): refusing it would make the tier
    useless for exactly the programs that need caching most.
    """

    def __init__(self, max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 sizeof: Optional[Callable[[object], int]] = None,
                 name: str = "lru") -> None:
        self.name = name
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._sizeof = sizeof or (lambda value: 1)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[object, Tuple[object, int]]" = \
            OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def get(self, key):
        """The cached value, refreshed to most-recent, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key, value) -> None:
        size = max(0, int(self._sizeof(value)))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size)
            self._bytes += size
            self._evict_over_budget()

    def pop(self, key) -> None:
        """Drop one entry (not counted as an eviction: the caller
        removed it deliberately, the budget didn't)."""
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped
        (counted as evictions — this is the daemon's pressure valve)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self.evictions += dropped
            return dropped

    def _evict_over_budget(self) -> None:
        # Caller holds the lock.  Never evict the just-inserted entry
        # down to zero: len > 1 keeps a lone oversized entry resident.
        while len(self._entries) > 1 and (
                (self.max_entries is not None
                 and len(self._entries) > self.max_entries)
                or (self.max_bytes is not None
                    and self._bytes > self.max_bytes)):
            _, (_, size) = self._entries.popitem(last=False)
            self._bytes -= size
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for ``/metrics`` and telemetry records."""
        with self._lock:
            return {"entries": len(self._entries),
                    "bytes": self._bytes,
                    "hits": self.hits,
                    "misses": self.misses,
                    "evictions": self.evictions}


def touch(path: Path) -> None:
    """Best-effort recency bump for a disk cache entry just served.

    ``evict_lru_files`` orders victims by mtime; without the bump, a
    hot entry written long ago would be the first evicted.
    """
    try:
        os.utime(path, None)
    except OSError:
        pass


def evict_lru_files(root: Path, max_bytes: int,
                    patterns: Iterable[str] = ("*.pkl",)) -> int:
    """Delete oldest-mtime files under ``root`` until the matched set
    fits ``max_bytes``; returns the number deleted.

    Safe against concurrent writers and readers: entries here are
    content-addressed and immutable, so deleting one can only turn a
    future load into a miss (the caller re-solves and republishes —
    the same contract corruption already has).  Stat races (a file
    deleted underneath us) are swallowed.
    """
    if max_bytes is None or max_bytes < 0:
        return 0
    files: List[Tuple[float, int, Path]] = []
    total = 0
    try:
        for pattern in patterns:
            for path in root.glob(pattern):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                files.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
    except OSError:
        return 0
    if total <= max_bytes:
        return 0
    files.sort()  # oldest first
    removed = 0
    for _, size, path in files:
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        removed += 1
    return removed
