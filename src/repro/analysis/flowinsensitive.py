"""Weihl-style flow-insensitive baseline.

The paper's introduction recalls that the earliest pointer analyses
(Weihl 1980, Coutant 1986) were completely flow-insensitive, "building
a single, global mapping between pointers and their potential
referents", and that later work found the resulting approximations
overly large.  This module implements that historical baseline over the
same IR so the precision gap is measurable:

* there is **one program-wide store**: every update contributes to it
  and every lookup reads from it, with no kills (strong updates are
  meaningless without flow);
* value outputs keep per-output sets (the IR is still a dataflow
  graph), but store-typed outputs all denote the single global store.

The result plugs into the same statistics machinery as the other two
analyses; store outputs report the global map's contents, which is why
flow-insensitive totals balloon the way the paper describes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Set

from ..errors import AnalysisError
from ..memory.access import EMPTY_OFFSET, INDEX, AccessPath
from ..memory.pairs import PointsToPair, direct, pair as make_pair
from ..memory.relations import dom
from ..ir.graph import Program
from ..ir.nodes import (
    CallNode,
    InputPort,
    LookupNode,
    MergeNode,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    ReturnNode,
    UpdateNode,
    ValueTag,
)
from .common import (
    AnalysisResult,
    BatchedWorklist,
    CallGraph,
    Counters,
    PointsToSolution,
    SCCWorklist,
    Worklist,
    check_schedule,
    resolve_function_value,
)
from .scheduling import port_scc_order
from ..memory.facttable import FactTable


class FlowInsensitiveAnalysis:
    """One run of the program-wide baseline.

    The batched schedule drains each dirty port in one pop but keeps
    per-fact transfer functions: the global store's re-fire cascade
    (``_add_store_pair`` recursing through ``flow_out``) leaves no
    batch-level set algebra to exploit in this baseline.
    """

    def __init__(self, program: Program, schedule: str = "batched") -> None:
        self.program = program
        self.schedule = check_schedule(schedule)
        self.solution = PointsToSolution(FactTable.for_program(program))
        self.callgraph = CallGraph()
        self.counters = Counters()
        if self.schedule == "scc":
            self.worklist: object = SCCWorklist(port_scc_order(program)[0])
        elif self.schedule == "batched":
            self.worklist = BatchedWorklist()
        else:
            self.worklist = Worklist()
        #: The single global store: set of (location path, referent).
        self.global_store: Set[PointsToPair] = set()
        #: All lookups, re-fired whenever the global store grows.
        self._lookups: List[LookupNode] = [
            node for g in program.functions.values()
            for node in g.nodes if isinstance(node, LookupNode)]

    def run(self) -> AnalysisResult:
        started = time.perf_counter()
        for node in self.program.address_nodes():
            self.flow_out(node.out, direct(node.path))
        for pair in self.program.initial_store:
            self._add_store_pair(pair)
        for output, pair in self.program.seeded_values:
            self.flow_out(output, pair)
        if self.schedule != "fifo":
            while self.worklist:
                input_port, facts = self.worklist.pop()
                self.counters.batches += 1
                self.counters.transfers += len(facts)
                for fact in facts:
                    self.flow_in(input_port, fact)
        else:
            while self.worklist:
                input_port, fact = self.worklist.pop()
                self.counters.transfers += 1
                self.counters.batches += 1
                self.flow_in(input_port, fact)
        # Materialize the global store onto every store-typed output so
        # the census machinery sees what a client would see.
        for graph in self.program.functions.values():
            for output in graph.outputs():
                if output.tag is ValueTag.STORE:
                    for pair in self.global_store:
                        self.solution.add(output, pair)
        elapsed = time.perf_counter() - started
        return AnalysisResult(
            program=self.program,
            solution=self.solution,
            callgraph=self.callgraph,
            counters=self.counters,
            elapsed_seconds=elapsed,
            flavor="flowinsensitive",
            extras={"phases": {"solve": elapsed},
                    "global_store_pairs": len(self.global_store)},
        )

    # -- propagation -------------------------------------------------------

    def flow_out(self, output: OutputPort, pair: PointsToPair) -> None:
        self.counters.meets += 1
        if output.tag is ValueTag.STORE:
            self._add_store_pair(pair)
            return
        if not self.solution.add(output, pair):
            return
        self.counters.pairs_added += 1
        for consumer in output.consumers:
            self.worklist.push(consumer, pair)

    def _add_store_pair(self, pair: PointsToPair) -> None:
        if pair in self.global_store:
            return
        self.global_store.add(pair)
        self.counters.pairs_added += 1
        # Every lookup in the program may now observe this pair.
        for node in self._lookups:
            for lp in list(self._value_pairs(node.loc)):
                if lp.path is not EMPTY_OFFSET:
                    continue
                if dom(lp.referent, pair.path):
                    self.flow_out(node.out,
                                  make_pair(pair.path.subtract(lp.referent),
                                            pair.referent))

    def _value_pairs(self, input_port: InputPort):
        if input_port.source is None:
            return ()
        return self.solution.raw_pairs(input_port.source)

    # -- transfer functions ----------------------------------------------------

    def flow_in(self, input_port: InputPort, fact: PointsToPair) -> None:
        node = input_port.node
        if isinstance(node, LookupNode):
            if input_port is node.loc and fact.path is EMPTY_OFFSET:
                for sp in list(self.global_store):
                    if dom(fact.referent, sp.path):
                        self.flow_out(node.out,
                                      make_pair(sp.path.subtract(fact.referent),
                                                sp.referent))
            return  # store input carries no per-edge facts here
        if isinstance(node, UpdateNode):
            if input_port is node.loc and fact.path is EMPTY_OFFSET:
                for vp in list(self._value_pairs(node.value)):
                    self._add_store_pair(
                        make_pair(fact.referent.append(vp.path), vp.referent))
            elif input_port is node.value:
                for lp in list(self._value_pairs(node.loc)):
                    if lp.path is EMPTY_OFFSET:
                        self._add_store_pair(
                            make_pair(lp.referent.append(fact.path),
                                      fact.referent))
            return
        if isinstance(node, CallNode):
            self._flow_call(node, input_port, fact)
            return
        if isinstance(node, ReturnNode):
            if input_port is node.value:
                for call in self.callgraph.callers(node.graph):
                    self.flow_out(call.out, fact)
            return
        if isinstance(node, MergeNode):
            if input_port is not node.pred and \
                    node.out.tag is not ValueTag.STORE:
                self.flow_out(node.out, fact)
            return
        if isinstance(node, PrimopNode):
            self._flow_primop(node, input_port, fact)
            return
        raise AnalysisError(f"pair arrived at unexpected node {node!r}")

    def _flow_call(self, node: CallNode, input_port: InputPort,
                   fact: PointsToPair) -> None:
        if input_port is node.fcn:
            if fact.path is not EMPTY_OFFSET:
                return
            callee = resolve_function_value(self.program, fact.referent)
            if callee is None:
                self.callgraph.unresolved.add(node)
                return
            if not self.callgraph.add_edge(node, callee):
                return
            for index, arg in enumerate(node.args):
                formal = callee.corresponding_formal(index)
                if formal is None or arg.source is None:
                    continue
                for pair in list(self.solution.raw_pairs(arg.source)):
                    self.flow_out(formal, pair)
            ret = callee.return_node
            if ret is not None and ret.value is not None \
                    and ret.value.source is not None:
                for pair in list(self.solution.raw_pairs(ret.value.source)):
                    self.flow_out(node.out, pair)
            return
        if input_port is node.store:
            return
        for index, arg in enumerate(node.args):
            if input_port is arg:
                for callee in self.callgraph.callees(node):
                    formal = callee.corresponding_formal(index)
                    if formal is not None:
                        self.flow_out(formal, fact)
                return

    def _flow_primop(self, node: PrimopNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        semantics = node.semantics
        if semantics is PrimopSemantics.OPAQUE:
            return
        if semantics is PrimopSemantics.COPY:
            if node.copy_operand is not None and \
                    input_port is not node.operands[node.copy_operand]:
                return
            self.flow_out(node.out, fact)
            return
        if semantics is PrimopSemantics.EXTRACT:
            path = fact.path
            if path.base is None and path.ops and path.ops[0] is node.field_op:
                self.flow_out(node.out,
                              make_pair(AccessPath(None, path.ops[1:]),
                                        fact.referent))
            return
        if fact.path is not EMPTY_OFFSET:
            return
        if semantics is PrimopSemantics.FIELD:
            self.flow_out(node.out, direct(fact.referent.extend(node.field_op)))
        elif semantics is PrimopSemantics.INDEX:
            self.flow_out(node.out, direct(fact.referent.extend(INDEX)))


def analyze_flowinsensitive(program: Program,
                            schedule: str = "batched",
                            parallel_scc: bool = False) -> AnalysisResult:
    """Run the Weihl-style program-wide baseline.

    ``parallel_scc`` is accepted for driver uniformity but ignored: the
    flow-insensitive solver collapses the program to a single merged
    store, so there is no SCC level structure to shard across workers.
    """
    return FlowInsensitiveAnalysis(program, schedule=schedule).run()
