"""Dead-store detection: a concrete payoff of strong updates.

A memory write is *dead* when no memory read can observe the value it
stored — either a later strong update always overwrites it first, or
nothing ever reads the written location.  The paper's framework makes
this answerable: strong updates kill store pairs, and the def/use
client (:mod:`repro.analysis.clients.defuse`) computes which reads a
write can reach.

Caveats, inherited from the may-analysis setting:

* reported writes are dead *under the analysis' model* — a write to a
  weakly-updated (heap/array/recursive-local) location is never
  reported, because some instance may still be read;
* writes whose location set is empty (dereferences of the null
  pointer) are reported separately as ``unreachable`` rather than
  dead: the paper's standard assumptions say such code never executes;
* escaping effects are visible because the walk is whole-program: a
  write read only by another procedure is *not* dead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ...ir.graph import Program
from ...ir.nodes import LookupNode, UpdateNode
from ..common import AnalysisResult
from ..depgraph import ReachingDefs
from .defuse import DefUseInfo


@dataclass
class DeadStoreReport:
    """Writes nothing can observe, per the points-to model."""

    #: Updates whose stored value no read can observe.
    dead: List[UpdateNode] = field(default_factory=list)
    #: Updates with an empty location set (null-only dereferences).
    unreachable: List[UpdateNode] = field(default_factory=list)
    #: Total writes examined.
    total: int = 0

    @property
    def live(self) -> int:
        return self.total - len(self.dead) - len(self.unreachable)


def find_dead_stores(result: AnalysisResult,
                     du: "DefUseInfo | ReachingDefs" = None
                     ) -> DeadStoreReport:
    """Classify every update in the program.

    Cost note: this inverts the def/use relation by computing reaching
    definitions for every read once and collecting the union of
    observed writes — O(reads × store-chain), not O(reads × writes).
    """
    if du is None:
        # Whole-program sweep: the context-insensitive walk keeps the
        # state space linear (still sound — it only widens the set of
        # observed writes, so nothing live is reported dead).  The
        # shared mask-level engine is used directly; a caller with an
        # existing DefUseInfo can pass it (both answer
        # ``reaching_definitions``).
        du = ReachingDefs(result, call_site_sensitive=False)
    program = result.program

    observed: Set[UpdateNode] = set()
    for graph in program.functions.values():
        for node in graph.nodes:
            if isinstance(node, LookupNode):
                for definition in du.reaching_definitions(node):
                    if isinstance(definition, UpdateNode):
                        observed.add(definition)

    report = DeadStoreReport()
    solution = result.solution
    for graph in program.functions.values():
        for node in graph.nodes:
            if not isinstance(node, UpdateNode):
                continue
            report.total += 1
            # Mask-level emptiness test: no direct pair at the loc
            # input means no location this write can touch — answered
            # without decoding a single pair object.
            if not solution.op_targets_mask(node):
                report.unreachable.append(node)
            elif node not in observed:
                report.dead.append(node)
    return report
