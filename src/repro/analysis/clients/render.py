"""JSON-shaped payloads and text rendering for the client analyses.

``repro analyze --modref/--defuse/--deadstore`` used to print ad-hoc
``repr`` lines straight from the client objects; this module gives the
three clients one shared output contract instead:

* a *payload* function per client returning plain dicts/lists — JSON-
  serializable, deterministically ordered (functions alphabetically,
  locations by rendered path, operations by node key) — consumed by
  ``--format json`` and the serve layer alike;
* a *render* function per client turning that payload into the text
  lines ``--format text`` prints.

Rendering an access path here matches ``report.export.path_to_string``
and ``checkers.base.render_path`` byte-for-byte (the string contract
the goldens pin); the copy avoids importing the report layer from a
client module.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...memory.access import AccessPath
from ..common import AnalysisResult
from ..depgraph import ReachingDefs, node_key
from .deadstore import find_dead_stores
from .modref import modref


def render_path(path: Optional[AccessPath]) -> str:
    """Stable uid-free rendering of an access path."""
    if path is None:
        return ""
    base = path.base.describe() if path.base is not None else "ε"
    return base + "".join(repr(op) for op in path.ops)


def modref_payload(result: AnalysisResult) -> List[Dict[str, object]]:
    """Per-procedure transitive mod/ref summaries, function-sorted."""
    info = modref(result)
    return [{"function": name,
             "mod": sorted(render_path(p) for p in info.mod_set(name)),
             "ref": sorted(render_path(p) for p in info.ref_set(name))}
            for name in sorted(result.program.functions)]


def defuse_payload(result: AnalysisResult,
                   engine: Optional[ReachingDefs] = None
                   ) -> List[Dict[str, object]]:
    """Per-read reaching definitions, node-key-sorted.

    Definitions render as node keys (``function:update#uid``) or the
    :data:`~repro.analysis.depgraph.INITIAL` marker.
    """
    if engine is None:
        engine = ReachingDefs(result, call_site_sensitive=False)
    from ...ir.nodes import LookupNode

    rows = []
    for graph in result.program.functions.values():
        for node in graph.nodes:
            if not isinstance(node, LookupNode):
                continue
            definitions = sorted(
                d if isinstance(d, str) else node_key(d)
                for d in engine.reaching_definitions(node))
            rows.append({
                "read": node_key(node),
                "origin": node.origin or "",
                "locations": sorted(render_path(p)
                                    for p in engine.footprint(node)),
                "definitions": definitions,
            })
    return sorted(rows, key=lambda r: r["read"])


def deadstore_payload(result: AnalysisResult,
                      engine: Optional[ReachingDefs] = None
                      ) -> Dict[str, object]:
    """Dead/unreachable writes plus the live/total counts."""
    report = find_dead_stores(result, du=engine)

    def rows(nodes):
        return sorted(
            ({"write": node_key(n), "origin": n.origin or "",
              "targets": sorted(render_path(p)
                                for p in result.op_locations(n))}
             for n in nodes),
            key=lambda r: r["write"])

    return {"dead": rows(report.dead),
            "unreachable": rows(report.unreachable),
            "counts": {"dead": len(report.dead),
                       "unreachable": len(report.unreachable),
                       "live": report.live, "total": report.total}}


def clients_payload(result: AnalysisResult,
                    modref_wanted: bool = False,
                    defuse_wanted: bool = False,
                    deadstore_wanted: bool = False) -> Dict[str, object]:
    """The requested client sections, sharing one walk engine."""
    payload: Dict[str, object] = {}
    engine = (ReachingDefs(result, call_site_sensitive=False)
              if defuse_wanted or deadstore_wanted else None)
    if modref_wanted:
        payload["modref"] = modref_payload(result)
    if defuse_wanted:
        payload["defuse"] = defuse_payload(result, engine)
    if deadstore_wanted:
        payload["deadstore"] = deadstore_payload(result, engine)
    return payload


# -- text rendering --------------------------------------------------------


def render_modref_text(rows: List[Dict[str, object]]) -> List[str]:
    return [f"  {row['function']}: "
            f"mod={{{', '.join(row['mod'])}}} "
            f"ref={{{', '.join(row['ref'])}}}"
            for row in rows]


def render_defuse_text(rows: List[Dict[str, object]]) -> List[str]:
    lines = []
    for row in rows:
        where = f" at {row['origin']}" if row["origin"] else ""
        lines.append(f"  {row['read']}{where} "
                     f"reads {{{', '.join(row['locations'])}}} "
                     f"from {{{', '.join(row['definitions'])}}}")
    return lines


def render_deadstore_text(payload: Dict[str, object]) -> List[str]:
    counts = payload["counts"]
    lines = [f"  dead stores: {counts['dead']} dead, "
             f"{counts['unreachable']} unreachable, "
             f"{counts['live']} live of {counts['total']} writes"]
    for row in payload["dead"]:
        where = f" at {row['origin']}" if row["origin"] else ""
        lines.append(f"    dead: {row['write']}{where} "
                     f"-> {{{', '.join(row['targets'])}}}")
    for row in payload["unreachable"]:
        where = f" at {row['origin']}" if row["origin"] else ""
        lines.append(f"    unreachable: {row['write']}{where}")
    return lines


def render_clients_text(payload: Dict[str, object]) -> List[str]:
    """Text lines for every section present in ``payload``."""
    lines: List[str] = []
    if "modref" in payload:
        lines.extend(render_modref_text(payload["modref"]))
    if "defuse" in payload:
        lines.extend(render_defuse_text(payload["defuse"]))
    if "deadstore" in payload:
        lines.extend(render_deadstore_text(payload["deadstore"]))
    return lines
