"""Consumers of points-to results: mod/ref, def/use, dead stores."""

from .deadstore import DeadStoreReport, find_dead_stores
from .defuse import INITIAL, DefUseInfo, defuse
from .modref import ModRefInfo, modref

__all__ = [
    "DeadStoreReport",
    "DefUseInfo",
    "INITIAL",
    "ModRefInfo",
    "defuse",
    "find_dead_stores",
    "modref",
]
