"""Mod/ref analysis: the client the paper's Figure 4 serves.

"Such applications are concerned only with the memory locations
referenced by each memory read or write, e.g., the pointers arriving at
the location inputs of lookup and update nodes" (§3.2).  This module
turns a points-to result into:

* per-operation ref/mod sets (the locations a lookup may read / an
  update may write);
* per-procedure summaries, closed transitively over the discovered
  call graph (a procedure refs/mods what its body does plus what its
  callees do);
* per-call-site summaries (the union over potential callees).

The summaries are computed entirely over the fact table's path-id
bitsets — the per-op location masks OR together, and the call-graph
fixpoint is mask unions — so construction never materializes a pair or
path object.  Location *sets* (of access paths) decode lazily on first
query, once per procedure.  Locations named by a path are also
considered touched by accesses to any extension of that path (the
``dom`` relation); queries offer both exact-path and may-alias forms.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ...errors import AnalysisError
from ...memory.access import AccessPath
from ...memory.relations import may_alias
from ...ir.nodes import CallNode, LookupNode, Node, UpdateNode
from ..common import AnalysisResult
from ..depgraph import function_op_masks


class ModRefInfo:
    """Queryable mod/ref summaries for one analysis result."""

    def __init__(self, result: AnalysisResult) -> None:
        self.result = result
        self.program = result.program
        self._table = result.solution.table
        self._ref_masks: Dict[str, int] = {}
        self._mod_masks: Dict[str, int] = {}
        self._ref_sets: Dict[str, FrozenSet[AccessPath]] = {}
        self._mod_sets: Dict[str, FrozenSet[AccessPath]] = {}
        self._compute_direct()
        self._close_over_calls()

    # -- construction (mask-level, decode-free) ----------------------------

    def _compute_direct(self) -> None:
        # Shared with the dependence-graph pass: one decode-free sweep
        # ORing per-op target masks into per-function ref/mod masks.
        for name, (refs, mods) in \
                function_op_masks(self.result).items():
            self._ref_masks[name] = refs
            self._mod_masks[name] = mods

    def _close_over_calls(self) -> None:
        """Fixpoint union over the call graph (handles recursion)."""
        ref = self._ref_masks
        mod = self._mod_masks
        changed = True
        while changed:
            changed = False
            for name, graph in self.program.functions.items():
                for node in graph.nodes:
                    if not isinstance(node, CallNode):
                        continue
                    for callee in self.result.callgraph.callees(node):
                        callee_ref = ref[callee.name]
                        if callee_ref & ~ref[name]:
                            ref[name] |= callee_ref
                            changed = True
                        callee_mod = mod[callee.name]
                        if callee_mod & ~mod[name]:
                            mod[name] |= callee_mod
                            changed = True

    # -- per-operation queries ----------------------------------------------------

    def op_ref(self, node: Node) -> Set[AccessPath]:
        """Locations a memory read may reference."""
        if not isinstance(node, LookupNode):
            raise AnalysisError(f"{node!r} is not a memory read")
        return self.result.op_locations(node)

    def op_mod(self, node: Node) -> Set[AccessPath]:
        """Locations a memory write may modify."""
        if not isinstance(node, UpdateNode):
            raise AnalysisError(f"{node!r} is not a memory write")
        return self.result.op_locations(node)

    # -- per-procedure queries -------------------------------------------------------

    def ref_mask(self, function: str) -> int:
        """Path-id bitset of :meth:`ref_set` (decode-free)."""
        return self._require(self._ref_masks, function)

    def mod_mask(self, function: str) -> int:
        """Path-id bitset of :meth:`mod_set` (decode-free)."""
        return self._require(self._mod_masks, function)

    def ref_set(self, function: str) -> FrozenSet[AccessPath]:
        """Locations ``function`` (or anything it calls) may read."""
        return self._decoded(self._ref_sets, self._ref_masks, function)

    def mod_set(self, function: str) -> FrozenSet[AccessPath]:
        """Locations ``function`` (or anything it calls) may write."""
        return self._decoded(self._mod_sets, self._mod_masks, function)

    def _require(self, table: Dict[str, int], function: str) -> int:
        if function not in table:
            raise AnalysisError(f"unknown function {function!r}")
        return table[function]

    def _decoded(self, cache: Dict[str, FrozenSet[AccessPath]],
                 masks: Dict[str, int],
                 function: str) -> FrozenSet[AccessPath]:
        cached = cache.get(function)
        if cached is None:
            cached = frozenset(
                self._table.decode_paths(self._require(masks, function)))
            cache[function] = cached
        return cached

    # -- per-call-site queries ----------------------------------------------------------

    def call_ref(self, call: CallNode) -> Set[AccessPath]:
        mask = 0
        for callee in self.result.callgraph.callees(call):
            mask |= self._ref_masks[callee.name]
        return set(self._table.decode_paths(mask)) if mask else set()

    def call_mod(self, call: CallNode) -> Set[AccessPath]:
        mask = 0
        for callee in self.result.callgraph.callees(call):
            mask |= self._mod_masks[callee.name]
        return set(self._table.decode_paths(mask)) if mask else set()

    # -- alias-aware membership -------------------------------------------------------------

    def may_mod(self, function: str, path: AccessPath) -> bool:
        """Whether calling ``function`` may modify storage reachable
        through ``path`` (prefix aliasing included)."""
        return any(may_alias(path, written)
                   for written in self.mod_set(function))

    def may_ref(self, function: str, path: AccessPath) -> bool:
        return any(may_alias(path, read) for read in self.ref_set(function))


def modref(result: AnalysisResult) -> ModRefInfo:
    """Build mod/ref summaries from a points-to result."""
    return ModRefInfo(result)
