"""Mod/ref analysis: the client the paper's Figure 4 serves.

"Such applications are concerned only with the memory locations
referenced by each memory read or write, e.g., the pointers arriving at
the location inputs of lookup and update nodes" (§3.2).  This module
turns a points-to result into:

* per-operation ref/mod sets (the locations a lookup may read / an
  update may write);
* per-procedure summaries, closed transitively over the discovered
  call graph (a procedure refs/mods what its body does plus what its
  callees do);
* per-call-site summaries (the union over potential callees).

Location sets are sets of access paths.  Locations named by a path are
also considered touched by accesses to any extension of that path (the
``dom`` relation); queries offer both exact-path and may-alias forms.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from ...errors import AnalysisError
from ...memory.access import AccessPath
from ...memory.relations import may_alias
from ...ir.graph import FunctionGraph
from ...ir.nodes import CallNode, LookupNode, Node, UpdateNode
from ..common import AnalysisResult


class ModRefInfo:
    """Queryable mod/ref summaries for one analysis result."""

    def __init__(self, result: AnalysisResult) -> None:
        self.result = result
        self.program = result.program
        self._direct_ref: Dict[str, Set[AccessPath]] = {}
        self._direct_mod: Dict[str, Set[AccessPath]] = {}
        self._ref: Dict[str, FrozenSet[AccessPath]] = {}
        self._mod: Dict[str, FrozenSet[AccessPath]] = {}
        self._compute_direct()
        self._close_over_calls()

    # -- construction ----------------------------------------------------------

    def _compute_direct(self) -> None:
        for name, graph in self.program.functions.items():
            refs: Set[AccessPath] = set()
            mods: Set[AccessPath] = set()
            for node in graph.memory_operations():
                locations = self.result.op_locations(node)
                if isinstance(node, LookupNode):
                    refs.update(locations)
                else:
                    mods.update(locations)
            self._direct_ref[name] = refs
            self._direct_mod[name] = mods

    def _close_over_calls(self) -> None:
        """Fixpoint union over the call graph (handles recursion)."""
        ref = {name: set(paths) for name, paths in self._direct_ref.items()}
        mod = {name: set(paths) for name, paths in self._direct_mod.items()}
        changed = True
        while changed:
            changed = False
            for name, graph in self.program.functions.items():
                for node in graph.nodes:
                    if not isinstance(node, CallNode):
                        continue
                    for callee in self.result.callgraph.callees(node):
                        if not ref[name] >= ref[callee.name]:
                            ref[name] |= ref[callee.name]
                            changed = True
                        if not mod[name] >= mod[callee.name]:
                            mod[name] |= mod[callee.name]
                            changed = True
        self._ref = {name: frozenset(paths) for name, paths in ref.items()}
        self._mod = {name: frozenset(paths) for name, paths in mod.items()}

    # -- per-operation queries ----------------------------------------------------

    def op_ref(self, node: Node) -> Set[AccessPath]:
        """Locations a memory read may reference."""
        if not isinstance(node, LookupNode):
            raise AnalysisError(f"{node!r} is not a memory read")
        return self.result.op_locations(node)

    def op_mod(self, node: Node) -> Set[AccessPath]:
        """Locations a memory write may modify."""
        if not isinstance(node, UpdateNode):
            raise AnalysisError(f"{node!r} is not a memory write")
        return self.result.op_locations(node)

    # -- per-procedure queries -------------------------------------------------------

    def ref_set(self, function: str) -> FrozenSet[AccessPath]:
        """Locations ``function`` (or anything it calls) may read."""
        return self._require(self._ref, function)

    def mod_set(self, function: str) -> FrozenSet[AccessPath]:
        """Locations ``function`` (or anything it calls) may write."""
        return self._require(self._mod, function)

    def _require(self, table: Dict[str, FrozenSet[AccessPath]],
                 function: str) -> FrozenSet[AccessPath]:
        if function not in table:
            raise AnalysisError(f"unknown function {function!r}")
        return table[function]

    # -- per-call-site queries ----------------------------------------------------------

    def call_ref(self, call: CallNode) -> Set[AccessPath]:
        refs: Set[AccessPath] = set()
        for callee in self.result.callgraph.callees(call):
            refs |= self._ref[callee.name]
        return refs

    def call_mod(self, call: CallNode) -> Set[AccessPath]:
        mods: Set[AccessPath] = set()
        for callee in self.result.callgraph.callees(call):
            mods |= self._mod[callee.name]
        return mods

    # -- alias-aware membership -------------------------------------------------------------

    def may_mod(self, function: str, path: AccessPath) -> bool:
        """Whether calling ``function`` may modify storage reachable
        through ``path`` (prefix aliasing included)."""
        return any(may_alias(path, written)
                   for written in self.mod_set(function))

    def may_ref(self, function: str, path: AccessPath) -> bool:
        return any(may_alias(path, read) for read in self.ref_set(function))


def modref(result: AnalysisResult) -> ModRefInfo:
    """Build mod/ref summaries from a points-to result."""
    return ModRefInfo(result)
