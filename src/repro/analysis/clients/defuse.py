"""Def/use chains through memory.

The other client the paper names (§3.2: "an application, such as
def/use or mod/ref analysis").  For each memory read this module finds
the memory writes whose stored value the read may observe, by walking
the store dependence chain backwards from the lookup:

* an update whose modified-location set may-aliases the read location
  is a reaching definition;
* an update that *strongly* updates the read location (single,
  strongly-updateable target dominating it) kills the walk on that
  chain — the benefit of the analysis's strong updates;
* merges fan the walk out over all branches;
* calls descend into each potential callee's return-store chain, and a
  callee's entry store resumes at that call's store input (the walk is
  call-site-aware even over a context-insensitive points-to result);
* reaching a root procedure's entry store yields the synthetic
  :data:`INITIAL` definition (globals' static initializers / the
  outside world).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ...errors import AnalysisError
from ...memory.access import AccessPath
from ...memory.relations import may_alias, strong_dom
from ...ir.graph import FunctionGraph
from ...ir.nodes import (
    CallNode,
    EntryNode,
    LookupNode,
    MergeNode,
    Node,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    UpdateNode,
)
from ..common import AnalysisResult

#: Synthetic definition: the store as it was at program start.
INITIAL = "<initial-store>"

Definition = Union[UpdateNode, str]


class DefUseInfo:
    """Reaching-definition queries over one analysis result.

    ``call_site_sensitive=True`` (default) resumes each callee's store
    chain at the specific call that entered it; setting it to False
    walks context-insensitively (every caller), which is coarser but
    keeps the state space linear in the graph — use it for
    whole-program sweeps over large recursive programs.
    """

    def __init__(self, result: AnalysisResult,
                 max_visits: int = 1_000_000,
                 call_site_sensitive: bool = True) -> None:
        self.result = result
        self.program = result.program
        self.max_visits = max_visits
        self.call_site_sensitive = call_site_sensitive
        self._mod_cache: Dict[UpdateNode, Set[AccessPath]] = {}
        self._defs_cache: Dict[LookupNode, FrozenSet[Definition]] = {}

    # -- public queries -----------------------------------------------------

    def reaching_definitions(self, read: LookupNode) -> Set[Definition]:
        """Every definition (update node or :data:`INITIAL`) whose
        stored value the read may observe, over all locations the read
        may reference.  Memoized per read node."""
        if not isinstance(read, LookupNode):
            raise AnalysisError(f"{read!r} is not a memory read")
        cached = self._defs_cache.get(read)
        if cached is not None:
            return set(cached)
        definitions: Set[Definition] = set()
        solution = self.result.solution
        for location in solution.table.decode_paths(
                solution.op_targets_mask(read)):
            definitions |= self.definitions_for(read, location)
        self._defs_cache[read] = frozenset(definitions)
        return definitions

    def definitions_for(self, read: LookupNode,
                        location: AccessPath) -> Set[Definition]:
        """Reaching definitions for one specific read location."""
        store_src = read.store.source
        if store_src is None:
            raise AnalysisError(f"{read!r} has a dangling store input")
        definitions: Set[Definition] = set()
        self._walk(store_src, location, (), definitions, set(), [0])
        return definitions

    def uses_of(self, write: UpdateNode) -> Set[LookupNode]:
        """Every read that may observe a value this write stored
        (the inverse query, by scanning all reads)."""
        uses: Set[LookupNode] = set()
        for graph in self.program.functions.values():
            for node in graph.nodes:
                if isinstance(node, LookupNode):
                    if write in self.reaching_definitions(node):
                        uses.add(node)
        return uses

    # -- the walk -----------------------------------------------------------------

    def _modified(self, update: UpdateNode) -> Set[AccessPath]:
        locations = self._mod_cache.get(update)
        if locations is None:
            # Decode the (small) path-id mask rather than the pair set:
            # the walk needs path objects for may_alias/strong_dom, but
            # never the pairs behind them.
            solution = self.result.solution
            locations = set(solution.table.decode_paths(
                solution.op_targets_mask(update)))
            self._mod_cache[update] = locations
        return locations

    def _walk(self, start: OutputPort, location: AccessPath,
              start_stack: Tuple[CallNode, ...],
              definitions: Set[Definition],
              visited: Set[Tuple[int, Tuple[CallNode, ...]]],
              budget: List[int]) -> None:
        """Iterative backward walk over the store dependence graph.

        The call stack gives call-site sensitivity; recursion is capped
        by never pushing a call already on the stack (recursive cycles
        merge their contexts, which is sound: it only widens the walk).
        """
        work: List[Tuple[OutputPort, Tuple[CallNode, ...]]] = \
            [(start, start_stack)]
        while work:
            output, call_stack = work.pop()
            key = (id(output), call_stack)
            if key in visited:
                continue
            visited.add(key)
            budget[0] += 1
            if budget[0] > self.max_visits:
                raise AnalysisError(
                    "def/use walk exceeded its visit budget")

            node = output.node
            if isinstance(node, UpdateNode):
                targets = self._modified(node)
                if any(may_alias(t, location) for t in targets):
                    definitions.add(node)
                if len(targets) == 1:
                    (target,) = targets
                    if strong_dom(target, location):
                        continue  # strong update: older values dead
                if node.store.source is not None:
                    work.append((node.store.source, call_stack))
            elif isinstance(node, MergeNode):
                for branch in node.branches:
                    if branch.source is not None:
                        work.append((branch.source, call_stack))
            elif isinstance(node, CallNode):
                # The store after a call comes from the callees'
                # returns.
                callees = self.result.callgraph.callees(node)
                if not callees and node.store.source is not None:
                    work.append((node.store.source, call_stack))
                    continue
                if not self.call_site_sensitive:
                    extended = call_stack  # stays ()
                elif node in call_stack:
                    extended = call_stack  # recursive cycle: merge
                else:
                    extended = call_stack + (node,)
                for callee in callees:
                    ret = callee.return_node
                    if ret is not None and ret.store.source is not None:
                        work.append((ret.store.source, extended))
            elif isinstance(node, PrimopNode):
                # Library calls modeled as the identity on stores: the
                # chain continues through the store operand.
                if node.semantics is not PrimopSemantics.COPY:
                    raise AnalysisError(
                        f"store chain reached unexpected primop {node!r}")
                index = node.copy_operand
                operand = node.operands[index if index is not None else 0]
                if operand.source is not None:
                    work.append((operand.source, call_stack))
            elif isinstance(node, EntryNode):
                graph = node.graph
                if call_stack:
                    # Resume at the call that entered this callee; a
                    # merged recursive context also continues at the
                    # same call's own store input (the outer entry).
                    call = call_stack[-1]
                    if call.store.source is not None:
                        work.append((call.store.source, call_stack[:-1]))
                    continue
                # No known call context: all callers, or program start.
                callers = self.result.callgraph.callers(graph)
                if not callers or graph.name in self.program.roots:
                    definitions.add(INITIAL)
                for call in callers:
                    if call.store.source is not None:
                        work.append((call.store.source, ()))
            else:
                raise AnalysisError(
                    f"store chain reached unexpected node {node!r}")


def defuse(result: AnalysisResult, max_visits: int = 1_000_000,
           call_site_sensitive: bool = True) -> DefUseInfo:
    """Build def/use query machinery from a points-to result."""
    return DefUseInfo(result, max_visits, call_site_sensitive)
