"""Def/use chains through memory.

The other client the paper names (§3.2: "an application, such as
def/use or mod/ref analysis").  For each memory read this module finds
the memory writes whose stored value the read may observe, by walking
the store dependence chain backwards from the lookup:

* an update whose modified-location set may-aliases the read location
  is a reaching definition;
* an update that *strongly* updates the read location (single,
  strongly-updateable target dominating it) kills the walk on that
  chain — the benefit of the analysis's strong updates;
* merges fan the walk out over all branches;
* calls descend into each potential callee's return-store chain, and a
  callee's entry store resumes at that call's store input (the walk is
  call-site-aware even over a context-insensitive points-to result);
* reaching a root procedure's entry store yields the synthetic
  :data:`INITIAL` definition (globals' static initializers / the
  outside world).

The walk itself lives in :class:`repro.analysis.depgraph.ReachingDefs`
— one mask-level traversal per read carrying the read's whole location
footprint — shared with the dead-store client and the dependence-graph
pass.  This module keeps the historical query surface on top of it.
"""

from __future__ import annotations

from typing import Set

from ...errors import AnalysisError
from ...memory.access import AccessPath
from ...ir.nodes import LookupNode, UpdateNode
from ..common import AnalysisResult
from ..depgraph import INITIAL, Definition, ReachingDefs

__all__ = ["INITIAL", "Definition", "DefUseInfo", "defuse"]


class DefUseInfo:
    """Reaching-definition queries over one analysis result.

    ``call_site_sensitive=True`` (default) resumes each callee's store
    chain at the specific call that entered it; setting it to False
    walks context-insensitively (every caller), which is coarser but
    keeps the state space linear in the graph — use it for
    whole-program sweeps over large recursive programs.
    """

    def __init__(self, result: AnalysisResult,
                 max_visits: int = 1_000_000,
                 call_site_sensitive: bool = True) -> None:
        self.result = result
        self.program = result.program
        self.max_visits = max_visits
        self.call_site_sensitive = call_site_sensitive
        self.engine = ReachingDefs(
            result, max_visits=max_visits,
            call_site_sensitive=call_site_sensitive)

    # -- public queries -----------------------------------------------------

    def reaching_definitions(self, read: LookupNode) -> Set[Definition]:
        """Every definition (update node or :data:`INITIAL`) whose
        stored value the read may observe, over all locations the read
        may reference.  Memoized per read node."""
        if not isinstance(read, LookupNode):
            raise AnalysisError(f"{read!r} is not a memory read")
        return self.engine.reaching_definitions(read)

    def definitions_for(self, read: LookupNode,
                        location: AccessPath) -> Set[Definition]:
        """Reaching definitions for one specific read location."""
        return self.engine.definitions_for(read, location)

    def uses_of(self, write: UpdateNode) -> Set[LookupNode]:
        """Every read that may observe a value this write stored
        (the inverse query, by scanning all reads)."""
        uses: Set[LookupNode] = set()
        for graph in self.program.functions.values():
            for node in graph.nodes:
                if isinstance(node, LookupNode):
                    if write in self.reaching_definitions(node):
                        uses.add(node)
        return uses


def defuse(result: AnalysisResult, max_visits: int = 1_000_000,
           call_site_sensitive: bool = True) -> DefUseInfo:
    """Build def/use query machinery from a points-to result."""
    return DefUseInfo(result, max_visits, call_site_sensitive)
