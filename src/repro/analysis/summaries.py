"""Compositional per-SCC function summaries (ROADMAP item 2).

Ruf's central result — context-insensitive analysis loses almost no
precision at the places clients look — is what makes *cheap* summaries
viable: a per-procedure summary composed bottom-up over the call graph
does not need context cloning to stay useful (compare the generalized
points-to graphs of Gharat/Khedker/Mycroft).  This module provides the
summary layer the incremental driver (:mod:`repro.analysis.incremental`)
persists and replays:

* a **function-level call condensation** — SCCs of the static call
  graph (``scheduling._static_callee`` edges) unioned with previously
  observed *dynamic* edges, in callees-first topological order;
* **content hashes** — a structural :func:`body_hash` per procedure
  (uid/occurrence-indexed, independent of interning history, of any
  other procedure's body, and of absolute source coordinates — origins
  and heap-site line labels are normalized away, so inserting a line
  above a function re-keys nothing below it) and a
  :func:`context_hash` for the
  program-wide seeds; per-SCC :func:`scc_keys` combine the member body
  hashes with the *callee SCC keys*, so editing any procedure
  transitively re-keys every SCC that can reach it — the invalidation
  cone is encoded in the key itself;
* a :class:`Summary` per SCC — every member output's escaping
  points-to facts (formals, returns, globals: simply *all* solved
  outputs of the member graphs, which is exactly what whole-program
  solving would have materialized there), plus the flavor-exact call
  edges those graphs own — serialized **structurally** (no
  base-location uids, no interned objects), so a summary extracted in
  one process replays into a freshly lowered program in another;
* :func:`extract_summary` / :func:`apply_summary` to move facts
  between an :class:`AnalysisResult` and the serialized form, and a
  small summary algebra (:func:`join_summaries`,
  :func:`summary_digest`) whose lattice laws the property tests pin.

Structural location keys deserve a note: base-locations are identity
objects whose uids depend on process history, so a summary names a
location by ``(kind, name, procedure, occurrence)`` — the occurrence
index disambiguates same-named shadowed locals by their registration
order in ``program.locations``, which the deterministic lowering keeps
stable for unchanged sources.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError
from ..memory.access import INDEX, AccessPath, FieldOp
from ..memory.base import BaseLocation, LocationKind
from ..memory.pairs import PointsToPair, pair as make_pair
from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import (
    AddressNode,
    CallNode,
    ConstNode,
    LookupNode,
    MergeNode,
    Node,
    OutputPort,
    PrimopNode,
    ReturnNode,
)
from .common import AnalysisResult, CallGraph, PointsToSolution
from .scheduling import _static_callee

#: Bump whenever the summary wire format or the hash inputs change —
#: every persisted entry and manifest is invalidated at once.
#: v2: origin-independent content — location keys normalize away the
#: absolute source line baked into heap-site labels, and body hashes
#: no longer cover node origins, so inserting a line above a function
#: shifts every origin below it without re-keying a single SCC.
SUMMARY_VERSION = 2


# -- structural location / path / pair codec -------------------------------


#: Heap-site labels embed the allocation's absolute source line
#: (``<heap:malloc@f:42>``) — the one piece of location identity that
#: shifts when a line is inserted above it.  Keys strip the trailing
#: coordinate; the codec's occurrence index (registration order, a
#: line-shift-invariant pure function of the statement order) keeps
#: same-function same-callee sites distinct.
_HEAP_COORD = re.compile(r"^(<heap:.+):\d+>$")


def normalize_location_name(name: str) -> str:
    """A location name with absolute source coordinates removed."""
    match = _HEAP_COORD.match(name)
    if match is not None:
        return match.group(1) + ">"
    return name


class LocationCodec:
    """Bidirectional structural keys for one program's base-locations.

    A location's key is ``(kind, name, procedure, occurrence)`` where
    ``name`` is :func:`normalize_location_name`'d (source-coordinate
    free) and ``occurrence`` counts same-triple locations in
    registration order (``program.locations`` first, then function
    code addresses and hazard cells not already registered).  The
    deterministic lowering makes registration order — hence the key —
    a pure function of the source text *modulo line position*, which
    is what lets two independent lowerings of the same source (or of
    a line-shifted variant of it) exchange summaries.
    """

    def __init__(self, program: Program) -> None:
        self._key_of: Dict[int, Tuple[str, str, str, int]] = {}
        self._loc_of: Dict[Tuple[str, str, str, int], BaseLocation] = {}
        counts: Dict[Tuple[str, str, str], int] = {}
        ordered: List[BaseLocation] = list(program.locations)
        seen = {id(loc) for loc in ordered}
        for loc in program.function_locations.values():
            if id(loc) not in seen:
                ordered.append(loc)
                seen.add(id(loc))
        hazard = program.extras.get("hazard") or {}
        for loc in hazard.values():
            if isinstance(loc, BaseLocation) and id(loc) not in seen:
                ordered.append(loc)
                seen.add(id(loc))
        for loc in ordered:
            triple = (loc.kind.value, normalize_location_name(loc.name),
                      loc.procedure or "")
            occurrence = counts.get(triple, 0)
            counts[triple] = occurrence + 1
            key = triple + (occurrence,)
            self._key_of[id(loc)] = key
            self._loc_of[key] = loc

    # -- locations --------------------------------------------------------

    def encode_location(self, loc: BaseLocation) -> Tuple[str, str, str, int]:
        key = self._key_of.get(id(loc))
        if key is None:
            raise AnalysisError(
                f"location {loc!r} is not registered with the program "
                "(cannot be summarized)")
        return key

    def decode_location(self, key: Tuple[str, str, str, int]) -> BaseLocation:
        loc = self._loc_of.get(tuple(key))
        if loc is None:
            raise AnalysisError(
                f"summary references unknown location {key!r}")
        return loc

    # -- access paths ------------------------------------------------------

    def encode_path(self, path: AccessPath) -> tuple:
        base = (None if path.base is None
                else self.encode_location(path.base))
        ops = tuple(("i",) if op.is_index else ("f", str(op.owner), op.name)
                    for op in path.ops)
        return (base, ops)

    def decode_path(self, encoded: tuple) -> AccessPath:
        base_key, ops = encoded
        base = None if base_key is None else self.decode_location(base_key)
        decoded = tuple(INDEX if op[0] == "i" else FieldOp(op[1], op[2])
                        for op in ops)
        return AccessPath(base, decoded)

    # -- pairs -------------------------------------------------------------

    def encode_pair(self, p: PointsToPair) -> tuple:
        return (self.encode_path(p.path), self.encode_path(p.referent))

    def decode_pair(self, encoded: tuple) -> PointsToPair:
        path, referent = encoded
        return make_pair(self.decode_path(path), self.decode_path(referent))


# -- content hashes --------------------------------------------------------


def _hash_update(h, *parts: object) -> None:
    for part in parts:
        h.update(repr(part).encode("utf-8", errors="replace"))
        h.update(b"\x00")


def body_hash(graph: FunctionGraph, codec: LocationCodec) -> str:
    """Structural content hash of one procedure's VDG.

    Covers everything the transfer functions can observe: node kinds,
    uids, the dataflow wiring (producer uid + output index per input),
    per-node payloads (address paths, primop semantics, call arity,
    merge shape), output tags, and the graph's recursion flag (which
    selects footnote-4 location modeling).  Pure function of this one
    graph — editing a different procedure leaves it unchanged.

    Node *origins* (``file:line``) are deliberately excluded, and the
    address paths hash through the codec's coordinate-free keys: the
    transfer functions cannot observe source positions, so two bodies
    that differ only by where they sit in the file must hash equally —
    that is what keeps an inserted line above a function from re-keying
    every function below the edit.
    """
    h = hashlib.sha256()
    _hash_update(h, "body", graph.name, graph.recursive)
    for node in sorted(graph.nodes, key=lambda n: n.uid):
        _hash_update(h, node.kind, node.uid)
        for port in node.inputs:
            source = port.source
            if source is None:
                _hash_update(h, port.name, None)
            else:
                _hash_update(h, port.name, source.node.uid,
                             source.node.outputs.index(source))
        if isinstance(node, AddressNode):
            _hash_update(h, codec.encode_path(node.path))
        elif isinstance(node, LookupNode):
            _hash_update(h, node.is_indirect)
        elif isinstance(node, CallNode):
            _hash_update(h, len(node.args))
        elif isinstance(node, PrimopNode):
            field_op = node.field_op
            _hash_update(h, node.op, node.semantics.name,
                         None if field_op is None
                         else (("i",) if field_op.is_index
                               else ("f", str(field_op.owner),
                                     field_op.name)),
                         node.copy_operand)
        elif isinstance(node, ConstNode):
            _hash_update(h, repr(node.value))
        elif isinstance(node, MergeNode):
            _hash_update(h, len(node.branches), node.pred is not None)
        elif isinstance(node, ReturnNode):
            _hash_update(h, node.value is not None)
        for output in node.outputs:
            _hash_update(h, output.name, output.tag.name,
                         output.carries_pointers)
    return h.hexdigest()


def context_hash(program: Program, codec: LocationCodec) -> str:
    """Hash of the program-wide analysis context: roots, the initial
    (global-initializer) store, explicit value seeds, and the hazard
    cells.  Seeds are keyed by *graph name* (not node uid) so an edit
    inside one procedure re-keys that procedure's SCC — via its body
    hash — without invalidating the whole program."""
    h = hashlib.sha256()
    _hash_update(h, "context", SUMMARY_VERSION, sorted(program.roots))
    for encoded in sorted(repr(codec.encode_pair(p))
                          for p in program.initial_store):
        _hash_update(h, encoded)
    for encoded in sorted(
            repr((output.node.graph.name, codec.encode_pair(p)))
            for output, p in program.seeded_values):
        _hash_update(h, encoded)
    hazard = program.extras.get("hazard") or {}
    _hash_update(h, sorted(hazard))
    return h.hexdigest()


# -- call condensation ------------------------------------------------------


@dataclass
class Condensation:
    """SCCs of the function-level call graph, callees-first.

    ``sccs[i]`` lists the member function names (sorted); ``scc_of``
    maps each function name to its component index; ``callees`` /
    ``callers`` hold the cross-component edges.  The topological order
    guarantees ``j in callees[i]  ⇒  j < i``.
    """

    sccs: List[Tuple[str, ...]]
    scc_of: Dict[str, int]
    callees: Dict[int, Set[int]] = field(default_factory=dict)
    callers: Dict[int, Set[int]] = field(default_factory=dict)

    def caller_closure(self, dirty: Iterable[int]) -> Set[int]:
        """``dirty`` closed under transitive callers — the invalidation
        cone of a set of components."""
        closed: Set[int] = set()
        pending = list(dirty)
        while pending:
            index = pending.pop()
            if index in closed:
                continue
            closed.add(index)
            pending.extend(self.callers.get(index, ()))
        return closed


def function_call_edges(program: Program,
                        extra_edges: Iterable[Tuple[str, str]] = ()
                        ) -> Dict[str, Set[str]]:
    """Function-level call edges: static (syntactically direct calls)
    unioned with ``extra_edges`` (previously observed dynamic edges),
    filtered to currently defined functions."""
    edges: Dict[str, Set[str]] = {name: set() for name in program.functions}
    for graph in program.functions.values():
        for node in graph.nodes:
            if isinstance(node, CallNode):
                callee = _static_callee(program, node)
                if callee is not None:
                    edges[graph.name].add(callee.name)
    for caller, callee in extra_edges:
        if caller in edges and callee in program.functions:
            edges[caller].add(callee)
    return edges


def call_condensation(program: Program,
                      extra_edges: Iterable[Tuple[str, str]] = ()
                      ) -> Condensation:
    """Condense the function-level call graph (iterative Tarjan over
    sorted function names, so the component order is deterministic)."""
    adjacency = function_call_edges(program, extra_edges)
    names = sorted(program.functions)
    successors = {name: sorted(adjacency[name]) for name in names}

    indices: Dict[str, int] = {}
    lowlinks: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    popped: List[List[str]] = []
    counter = 0

    for root in names:
        if root in indices:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            vertex, child = work[-1]
            if child == 0:
                indices[vertex] = lowlinks[vertex] = counter
                counter += 1
                stack.append(vertex)
                on_stack[vertex] = True
            advanced = False
            succs = successors[vertex]
            while child < len(succs):
                succ = succs[child]
                child += 1
                if succ not in indices:
                    work[-1] = (vertex, child)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack.get(succ) and indices[succ] < lowlinks[vertex]:
                    lowlinks[vertex] = indices[succ]
            if advanced:
                continue
            work.pop()
            if lowlinks[vertex] == indices[vertex]:
                members: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    members.append(member)
                    if member == vertex:
                        break
                popped.append(sorted(members))
            if work:
                parent = work[-1][0]
                if lowlinks[vertex] < lowlinks[parent]:
                    lowlinks[parent] = lowlinks[vertex]

    # Tarjan pops components in reverse topological order; reversing
    # again puts callees first (edges point from later to earlier pop).
    sccs = [tuple(members) for members in popped]
    scc_of = {name: index for index, members in enumerate(sccs)
              for name in members}
    cond = Condensation(sccs=sccs, scc_of=scc_of)
    for caller, callees in adjacency.items():
        i = scc_of[caller]
        for callee in callees:
            j = scc_of[callee]
            if i != j:
                cond.callees.setdefault(i, set()).add(j)
                cond.callers.setdefault(j, set()).add(i)
    return cond


def body_hashes(program: Program, codec: LocationCodec) -> Dict[str, str]:
    """:func:`body_hash` for every procedure, computed once."""
    return {name: body_hash(graph, codec)
            for name, graph in program.functions.items()}


def program_key(ctx_hash: str, bodies: Dict[str, str]) -> str:
    """Whole-program content key: any edit anywhere changes it.

    This is the validity domain for summaries that are **not**
    compositional per SCC — the flow-insensitive flavor (one global
    store couples every procedure) and the context-sensitive one
    (facts at a procedure depend on its *callers'* contexts, which
    per-SCC keys — callee-closed by construction — do not track).
    """
    h = hashlib.sha256()
    _hash_update(h, "program", SUMMARY_VERSION, ctx_hash)
    for name in sorted(bodies):
        _hash_update(h, name, bodies[name])
    return h.hexdigest()


def scc_keys(program: Program, cond: Condensation,
             codec: LocationCodec, ctx_hash: str,
             bodies: Optional[Dict[str, str]] = None) -> List[str]:
    """Bottom-up content keys, one per component.

    ``key[i] = H(version, context, sorted (member, body hash), sorted
    callee SCC keys)`` — editing any procedure changes its own SCC's
    key *and*, transitively, every caller SCC's key, so "which
    summaries are reusable" is answered by key lookup alone.  The keys
    are callee-closed, *not* caller-closed: a key match certifies the
    summary's body and everything it reads from below, while facts
    that flowed down from callers are re-certified at replay time by
    the incremental engine's growth/coverage validation.
    """
    if bodies is None:
        bodies = body_hashes(program, codec)
    keys: List[str] = []
    for index, members in enumerate(cond.sccs):
        h = hashlib.sha256()
        _hash_update(h, "scc", SUMMARY_VERSION, ctx_hash)
        for name in members:
            _hash_update(h, name, bodies[name])
        for callee in sorted(cond.callees.get(index, ())):
            _hash_update(h, keys[callee])  # callees-first order
        keys.append(h.hexdigest())
    return keys


# -- the summary container --------------------------------------------------


@dataclass
class Summary:
    """Escaping facts of one call-graph SCC, structurally encoded.

    ``paths`` / ``pairs`` are per-summary intern tables (pairs index
    into paths, output masks index into pairs) so the common case —
    the same pair appearing on many outputs — serializes once.
    ``outputs`` locate ports as ``(graph, node uid, output index)``;
    ``edges`` / ``unresolved`` record the call-graph state of the
    member graphs' own call sites, flavor-exact.
    """

    version: int
    flavor: str
    functions: Tuple[str, ...]
    paths: List[tuple] = field(default_factory=list)
    pairs: List[Tuple[int, int]] = field(default_factory=list)
    outputs: List[Tuple[str, int, int, Tuple[int, ...]]] = \
        field(default_factory=list)
    edges: List[Tuple[str, int, Tuple[str, ...]]] = field(default_factory=list)
    unresolved: List[Tuple[str, int]] = field(default_factory=list)

    def as_payload(self) -> dict:
        return {"version": self.version, "flavor": self.flavor,
                "functions": self.functions, "paths": self.paths,
                "pairs": self.pairs, "outputs": self.outputs,
                "edges": self.edges, "unresolved": self.unresolved}

    @classmethod
    def from_payload(cls, payload: dict) -> "Summary":
        return cls(version=payload["version"], flavor=payload["flavor"],
                   functions=tuple(payload["functions"]),
                   paths=list(payload["paths"]),
                   pairs=list(payload["pairs"]),
                   outputs=list(payload["outputs"]),
                   edges=list(payload["edges"]),
                   unresolved=list(payload["unresolved"]))

    def decoded_outputs(self) -> List[Tuple[str, int, int, List[tuple]]]:
        """Outputs with their encoded pairs expanded (digest/test aid)."""
        expanded = []
        for graph, uid, out_idx, pair_ids in self.outputs:
            pairs = [(self.paths[self.pairs[i][0]],
                      self.paths[self.pairs[i][1]]) for i in pair_ids]
            expanded.append((graph, uid, out_idx, pairs))
        return expanded


def extract_summary(result: AnalysisResult, functions: Sequence[str],
                    codec: LocationCodec) -> Summary:
    """Extract one SCC's summary from a (complete) analysis result.

    Works object-level through ``solution.pairs`` so it serves every
    flavor — including FI, whose solution encodes against a private
    fact table.  Empty outputs are skipped: whole-program solving
    never materializes empty sets either, which keeps replayed
    solutions digest-identical to solved ones.
    """
    summary = Summary(version=SUMMARY_VERSION, flavor=result.flavor,
                      functions=tuple(sorted(functions)))
    path_ids: Dict[tuple, int] = {}
    pair_ids: Dict[Tuple[int, int], int] = {}

    def path_id(encoded: tuple) -> int:
        ident = path_ids.get(encoded)
        if ident is None:
            ident = path_ids[encoded] = len(summary.paths)
            summary.paths.append(encoded)
        return ident

    def pair_id(p: PointsToPair) -> int:
        key = (path_id(codec.encode_path(p.path)),
               path_id(codec.encode_path(p.referent)))
        ident = pair_ids.get(key)
        if ident is None:
            ident = pair_ids[key] = len(summary.pairs)
            summary.pairs.append(key)
        return ident

    solution = result.solution
    callgraph = result.callgraph
    for name in summary.functions:
        graph = result.program.functions[name]
        for node in sorted(graph.nodes, key=lambda n: n.uid):
            for out_idx, output in enumerate(node.outputs):
                pairs = solution.pairs(output)
                if not pairs:
                    continue
                ids = tuple(sorted(pair_id(p) for p in pairs))
                summary.outputs.append((name, node.uid, out_idx, ids))
            if isinstance(node, CallNode):
                callees = callgraph.callees(node)
                if callees:
                    summary.edges.append(
                        (name, node.uid,
                         tuple(sorted(g.name for g in callees))))
                if node in callgraph.unresolved:
                    summary.unresolved.append((name, node.uid))
    return summary


def _nodes_by_uid(graph: FunctionGraph) -> Dict[int, Node]:
    return {node.uid: node for node in graph.nodes}


def apply_summary(summary: Summary, program: Program, codec: LocationCodec,
                  solution: PointsToSolution, callgraph: CallGraph) -> None:
    """Replay one summary into a solution/callgraph pair.

    Masks are installed directly (no consumer notification): replay is
    a reconstruction of already-converged state, not propagation.  The
    solution's fact table re-interns each decoded pair, so replay works
    into any program object lowered from the same source.
    """
    from ..memory.packedbits import PackedBits

    table = solution.table
    node_maps: Dict[str, Dict[int, Node]] = {}

    def node_at(graph_name: str, uid: int) -> Node:
        nodes = node_maps.get(graph_name)
        if nodes is None:
            graph = program.functions.get(graph_name)
            if graph is None:
                raise AnalysisError(
                    f"summary references unknown function {graph_name!r}")
            nodes = node_maps[graph_name] = _nodes_by_uid(graph)
        node = nodes.get(uid)
        if node is None:
            raise AnalysisError(
                f"summary references unknown node {graph_name}#{uid}")
        return node

    decoded_pairs = [make_pair(codec.decode_path(summary.paths[p]),
                               codec.decode_path(summary.paths[r]))
                     for p, r in summary.pairs]
    for graph_name, uid, out_idx, pair_indices in summary.outputs:
        node = node_at(graph_name, uid)
        if out_idx >= len(node.outputs):
            raise AnalysisError(
                f"summary output index {out_idx} out of range at "
                f"{graph_name}#{uid}")
        mask = table.pair_mask(decoded_pairs[i] for i in pair_indices)
        if mask:
            solution._packed[node.outputs[out_idx]] = PackedBits(mask)
    for graph_name, uid, callee_names in summary.edges:
        call = node_at(graph_name, uid)
        if not isinstance(call, CallNode):
            raise AnalysisError(
                f"summary call edge at non-call node {graph_name}#{uid}")
        for callee_name in callee_names:
            callee = program.functions.get(callee_name)
            if callee is None:
                raise AnalysisError(
                    f"summary edge to unknown function {callee_name!r}")
            callgraph.add_edge(call, callee)
    for graph_name, uid in summary.unresolved:
        callgraph.unresolved.add(node_at(graph_name, uid))


# -- summary algebra (property-test surface) --------------------------------


def _canonical(summary: Summary) -> tuple:
    """Fully expanded, order-normalized content of a summary."""
    outputs = tuple(sorted(
        (graph, uid, out_idx, tuple(sorted(map(repr, pairs))))
        for graph, uid, out_idx, pairs in summary.decoded_outputs()))
    return (summary.version, summary.flavor, summary.functions, outputs,
            tuple(sorted(summary.edges)),
            tuple(sorted(summary.unresolved)))


def summary_digest(summary: Summary) -> str:
    """Order-insensitive content hash: two summaries carrying the same
    facts digest equally regardless of intern-table layout."""
    h = hashlib.sha256()
    _hash_update(h, _canonical(summary))
    return h.hexdigest()


def summary_leq(a: Summary, b: Summary) -> bool:
    """Pointwise ⊆ over per-output fact sets, edges, and unresolved
    call sites (the summary lattice's partial order)."""
    facts_b: Dict[Tuple[str, int, int], Set[str]] = {}
    for graph, uid, out_idx, pairs in b.decoded_outputs():
        facts_b[(graph, uid, out_idx)] = {repr(p) for p in pairs}
    for graph, uid, out_idx, pairs in a.decoded_outputs():
        have = facts_b.get((graph, uid, out_idx), set())
        if not {repr(p) for p in pairs} <= have:
            return False
    edges_b: Dict[Tuple[str, int], Set[str]] = {}
    for graph, uid, callees in b.edges:
        edges_b.setdefault((graph, uid), set()).update(callees)
    for graph, uid, callees in a.edges:
        if not set(callees) <= edges_b.get((graph, uid), set()):
            return False
    return set(a.unresolved) <= set(b.unresolved)


def join_summaries(a: Summary, b: Summary) -> Summary:
    """Least upper bound of two summaries over the same function set
    (per-output union of facts, union of edges and unresolved sites)."""
    if a.flavor != b.flavor or a.functions != b.functions:
        raise AnalysisError(
            "can only join summaries of the same flavor and functions")
    joined = Summary(version=SUMMARY_VERSION, flavor=a.flavor,
                     functions=a.functions)
    path_ids: Dict[tuple, int] = {}
    pair_ids: Dict[Tuple[int, int], int] = {}

    def path_id(encoded: tuple) -> int:
        ident = path_ids.get(encoded)
        if ident is None:
            ident = path_ids[encoded] = len(joined.paths)
            joined.paths.append(encoded)
        return ident

    def pair_id(encoded_pair: Tuple[tuple, tuple]) -> int:
        key = (path_id(encoded_pair[0]), path_id(encoded_pair[1]))
        ident = pair_ids.get(key)
        if ident is None:
            ident = pair_ids[key] = len(joined.pairs)
            joined.pairs.append(key)
        return ident

    facts: Dict[Tuple[str, int, int], Set[int]] = {}
    for summary in (a, b):
        for graph, uid, out_idx, pairs in summary.decoded_outputs():
            bucket = facts.setdefault((graph, uid, out_idx), set())
            bucket.update(pair_id(p) for p in pairs)
    for (graph, uid, out_idx), ids in sorted(facts.items()):
        joined.outputs.append((graph, uid, out_idx, tuple(sorted(ids))))

    edges: Dict[Tuple[str, int], Set[str]] = {}
    for summary in (a, b):
        for graph, uid, callees in summary.edges:
            edges.setdefault((graph, uid), set()).update(callees)
    joined.edges = [(graph, uid, tuple(sorted(callees)))
                    for (graph, uid), callees in sorted(edges.items())]
    joined.unresolved = sorted(set(a.unresolved) | set(b.unresolved))
    return joined
