"""Alias-aware interprocedural dependence graphs.

Two layers live here:

1. :class:`ReachingDefs` — the shared mask-level reaching-definitions
   engine behind every store-walking client (``clients/defuse``,
   ``clients/deadstore``, and the dependence graph itself).  One
   backward walk per memory read carries the read's *entire* location
   footprint as a bitmask; states deduplicate on
   ``(store output, call stack)`` with the subset of footprint bits
   already propagated, so the walk is a monotone fixpoint over
   location sets instead of one traversal per ``(read, location)``
   pair.  Path objects are decoded exactly once per memory operation
   (``decode_paths`` of the small ``op_targets_mask``), never per
   edge — the alias tests between an update's targets and a read's
   footprint reuse those interned paths.

2. :class:`DependenceGraph` — the program dependence graph computed
   from any solved :class:`~repro.analysis.common.AnalysisResult`:

   * ``value`` edges: SSA operand flow (every non-store input port);
   * ``mem``   edges: update → lookup reaching definitions, resolved
     through ``targets_mask`` / may-alias with strong-update kills —
     the edges a syntactic slicer cannot compute;
   * ``call``  edges: call ↔ callee entry/return, from the points-to
     call graph (so function-pointer calls resolve precisely);
   * ``control`` edges: merge predicates from the lowered control
     joins, plus the function's recorded control-steering values for
     predicate-less merges (loop headers).

Node identity is the stable ``function:kind#uid`` key the report layer
already uses, so graphs, slices, and digests are deterministic across
schedules, process boundaries, and cache states.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from ..errors import AnalysisError
from ..ir.nodes import (
    CallNode,
    EntryNode,
    LookupNode,
    MergeNode,
    Node,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    UpdateNode,
    ValueTag,
)
from ..memory.access import AccessPath
from ..memory.relations import may_alias, strong_dom
from .common import AnalysisResult

#: Synthetic definition: the store as it was at program start.
INITIAL = "<initial-store>"

#: Node key of the synthetic initial-store definition.
INITIAL_KEY = "<initial-store>"

Definition = Union[UpdateNode, str]

#: Alias test used for mem-edge resolution.  Module-level so the fuzz
#: mutation tooth ("drop-alias-deps") can swap it for an identity test
#: and prove the oracle notices the missing alias-derived edges.
MAY_ALIAS = may_alias

#: Dependence edge kinds, in display order.
EDGE_KINDS = ("value", "mem", "call", "control")


def node_key(node: Node) -> str:
    """Stable, process-independent identity (mirrors report/export)."""
    return f"{node.graph.name}:{node.kind}#{node.uid}"


class ReachingDefs:
    """Shared reaching-definitions engine over one analysis result.

    ``call_site_sensitive=True`` resumes each callee's store chain at
    the specific call that entered it; ``False`` (the default here —
    whole-program sweeps) walks context-insensitively, keeping the
    state space linear in the graph.
    """

    def __init__(self, result: AnalysisResult,
                 max_visits: int = 1_000_000,
                 call_site_sensitive: bool = False) -> None:
        self.result = result
        self.program = result.program
        self.max_visits = max_visits
        self.call_site_sensitive = call_site_sensitive
        #: memory op → decoded target paths (the only decode site).
        self._op_paths: Dict[Node, Tuple[AccessPath, ...]] = {}
        #: read → ({definition: footprint bitmask}, footprint paths).
        self._defs: Dict[LookupNode,
                         Tuple[Dict[Definition, int],
                               Tuple[AccessPath, ...]]] = {}

    # -- public queries ------------------------------------------------

    def footprint(self, read: LookupNode) -> Tuple[AccessPath, ...]:
        """The locations a read may reference (decoded once)."""
        return self.op_paths(read)

    def reaching_definitions(self, read: LookupNode) -> Set[Definition]:
        """Every definition (update node or :data:`INITIAL`) whose
        stored value the read may observe, over the read's whole
        footprint.  Memoized per read node."""
        defmap, _ = self._reach(read)
        return set(defmap)

    def definitions_for(self, read: LookupNode,
                        location: AccessPath) -> Set[Definition]:
        """Reaching definitions for one specific read location."""
        defmap, footprint = self._reach(read)
        for bit, path in enumerate(footprint):
            if path == location:
                want = 1 << bit
                return {d for d, bits in defmap.items() if bits & want}
        # Not part of the read's decoded footprint: walk it alone.
        if not isinstance(read, LookupNode):
            raise AnalysisError(f"{read!r} is not a memory read")
        store_src = read.store.source
        if store_src is None:
            raise AnalysisError(f"{read!r} has a dangling store input")
        defmap = self._walk(store_src, (location,))
        return set(defmap)

    def op_paths(self, node: Node) -> Tuple[AccessPath, ...]:
        """Decoded target paths of one memory operation (cached)."""
        paths = self._op_paths.get(node)
        if paths is None:
            solution = self.result.solution
            paths = tuple(solution.table.decode_paths(
                solution.op_targets_mask(node)))
            self._op_paths[node] = paths
        return paths

    # -- the walk ------------------------------------------------------

    def _reach(self, read: LookupNode
               ) -> Tuple[Dict[Definition, int], Tuple[AccessPath, ...]]:
        cached = self._defs.get(read)
        if cached is not None:
            return cached
        if not isinstance(read, LookupNode):
            raise AnalysisError(f"{read!r} is not a memory read")
        store_src = read.store.source
        if store_src is None:
            raise AnalysisError(f"{read!r} has a dangling store input")
        footprint = self.op_paths(read)
        defmap = self._walk(store_src, footprint) if footprint else {}
        self._defs[read] = (defmap, footprint)
        return defmap, footprint

    def _walk(self, start: OutputPort,
              footprint: Tuple[AccessPath, ...]) -> Dict[Definition, int]:
        """Iterative backward walk over the store dependence graph.

        The live set is a bitmask over ``footprint``; a state is
        re-expanded only for bits it has not yet propagated, so the
        visit count is bounded by states × footprint bits with full
        sharing between locations that travel together.  The call
        stack (when enabled) gives call-site sensitivity; recursion is
        capped by never pushing a call already on the stack.
        """
        all_bits = (1 << len(footprint)) - 1
        defmap: Dict[Definition, int] = {}
        #: (output id, stack) → bits already propagated through it.
        seen: Dict[Tuple[int, Tuple[CallNode, ...]], int] = {}
        #: per-update (alias_bits, kill_bits) against this footprint.
        update_bits: Dict[UpdateNode, Tuple[int, int]] = {}
        work: List[Tuple[OutputPort, Tuple[CallNode, ...], int]] = \
            [(start, (), all_bits)]
        visits = 0
        while work:
            output, call_stack, live = work.pop()
            key = (id(output), call_stack)
            live &= ~seen.get(key, 0)
            if not live:
                continue
            seen[key] = seen.get(key, 0) | live
            visits += 1
            if visits > self.max_visits:
                raise AnalysisError(
                    "def/use walk exceeded its visit budget")

            node = output.node
            if isinstance(node, UpdateNode):
                bits = update_bits.get(node)
                if bits is None:
                    bits = self._update_bits(node, footprint)
                    update_bits[node] = bits
                alias_bits, kill_bits = bits
                hit = live & alias_bits
                if hit:
                    defmap[node] = defmap.get(node, 0) | hit
                live &= ~kill_bits  # strong update: older values dead
                if live and node.store.source is not None:
                    work.append((node.store.source, call_stack, live))
            elif isinstance(node, MergeNode):
                for branch in node.branches:
                    if branch.source is not None:
                        work.append((branch.source, call_stack, live))
            elif isinstance(node, CallNode):
                # The store after a call comes from the callees'
                # returns.
                callees = self.result.callgraph.callees(node)
                if not callees and node.store.source is not None:
                    work.append((node.store.source, call_stack, live))
                    continue
                if not self.call_site_sensitive:
                    extended = call_stack  # stays ()
                elif node in call_stack:
                    extended = call_stack  # recursive cycle: merge
                else:
                    extended = call_stack + (node,)
                for callee in callees:
                    ret = callee.return_node
                    if ret is not None and ret.store.source is not None:
                        work.append((ret.store.source, extended, live))
            elif isinstance(node, PrimopNode):
                # Library calls modeled as the identity on stores: the
                # chain continues through the store operand.
                if node.semantics is not PrimopSemantics.COPY:
                    raise AnalysisError(
                        f"store chain reached unexpected primop {node!r}")
                index = node.copy_operand
                operand = node.operands[index if index is not None else 0]
                if operand.source is not None:
                    work.append((operand.source, call_stack, live))
            elif isinstance(node, EntryNode):
                graph = node.graph
                if call_stack:
                    # Resume at the call that entered this callee; a
                    # merged recursive context also continues at the
                    # same call's own store input (the outer entry).
                    call = call_stack[-1]
                    if call.store.source is not None:
                        work.append((call.store.source,
                                     call_stack[:-1], live))
                    continue
                # No known call context: all callers, or program start.
                callers = self.result.callgraph.callers(graph)
                if not callers or graph.name in self.program.roots:
                    defmap[INITIAL] = defmap.get(INITIAL, 0) | live
                for call in callers:
                    if call.store.source is not None:
                        work.append((call.store.source, (), live))
            else:
                raise AnalysisError(
                    f"store chain reached unexpected node {node!r}")
        return defmap

    def _update_bits(self, update: UpdateNode,
                     footprint: Tuple[AccessPath, ...]) -> Tuple[int, int]:
        """(may-alias bits, strong-kill bits) of one update against a
        read footprint — interned-path comparisons, no decoding."""
        targets = self.op_paths(update)
        alias_bits = 0
        kill_bits = 0
        strong = targets[0] if len(targets) == 1 else None
        for bit, location in enumerate(footprint):
            if any(MAY_ALIAS(t, location) for t in targets):
                alias_bits |= 1 << bit
            if strong is not None and strong_dom(strong, location):
                kill_bits |= 1 << bit
        return alias_bits, kill_bits


def function_op_masks(result: AnalysisResult
                      ) -> Dict[str, Tuple[int, int]]:
    """Per-function direct ``(ref_mask, mod_mask)`` over path ids.

    The decode-free accumulation both :mod:`clients/modref` and the
    dependence-graph stats start from: lookups OR into the ref mask,
    updates into the mod mask.
    """
    solution = result.solution
    masks: Dict[str, Tuple[int, int]] = {}
    for name, graph in result.program.functions.items():
        refs = 0
        mods = 0
        for node in graph.memory_operations():
            mask = solution.op_targets_mask(node)
            if isinstance(node, LookupNode):
                refs |= mask
            else:
                mods |= mask
        masks[name] = (refs, mods)
    return masks


class DependenceGraph:
    """An alias-aware program dependence graph (see module docstring).

    ``nodes`` maps the stable node key to ``(function, kind, origin)``;
    ``edges`` is a sorted tuple of ``(src_key, dst_key, edge_kind)``.
    Both orders — and therefore :meth:`digest` — depend only on the
    lowered program and the points-to solution, never on schedule,
    process, or cache state.
    """

    def __init__(self, result: AnalysisResult,
                 engine: ReachingDefs) -> None:
        self.result = result
        self.program = result.program
        self.flavor = result.flavor
        self.engine = engine
        self.nodes: Dict[str, Tuple[str, str, str]] = {}
        self._edges: Set[Tuple[str, str, str]] = set()
        self.edges: Tuple[Tuple[str, str, str], ...] = ()
        self._forward: Dict[str, List[Tuple[str, str]]] = {}
        self._backward: Dict[str, List[Tuple[str, str]]] = {}
        self._build()

    # -- construction --------------------------------------------------

    def _touch(self, node: Node) -> str:
        key = node_key(node)
        if key not in self.nodes:
            self.nodes[key] = (node.graph.name, node.kind,
                               node.origin or "")
        return key

    def _edge(self, src: Node, dst: Node, kind: str) -> None:
        self._edges.add((self._touch(src), self._touch(dst), kind))

    def _build(self) -> None:
        program = self.program
        callgraph = self.result.callgraph
        store_inputs = {"store"}
        for graph in program.functions.values():
            for node in graph.nodes:
                self._touch(node)
                # value edges: every operand that is not a store chain
                # (store flow is the mem-edge machinery) and not a
                # merge predicate (that is a control edge).
                pred = node.pred if isinstance(node, MergeNode) else None
                for port in node.inputs:
                    if port is pred or port.name in store_inputs:
                        continue
                    src = port.source
                    if src is None or src.tag is ValueTag.STORE:
                        continue
                    self._edge(src.node, node, "value")
                if isinstance(node, MergeNode) and node.pred is not None \
                        and node.pred.source is not None:
                    self._edge(node.pred.source.node, node, "control")
                if isinstance(node, CallNode):
                    for callee in callgraph.callees(node):
                        if callee.entry is not None:
                            self._edge(node, callee.entry, "call")
                        ret = callee.return_node
                        if ret is not None:
                            self._edge(ret, node, "call")
            # Predicate-less merges (loop headers, multi-merge joins):
            # conservatively control-dependent on every value recorded
            # as steering this function's control flow.
            orphans = [n for n in graph.nodes
                       if isinstance(n, MergeNode)
                       and (n.pred is None or n.pred.source is None)]
            if orphans:
                deciders = []
                seen: Set[int] = set()
                for use in graph.control_uses:
                    if id(use) not in seen:
                        seen.add(id(use))
                        deciders.append(use)
                for merge in orphans:
                    for use in deciders:
                        self._edge(use.node, merge, "control")
        # mem edges: alias-resolved reaching definitions per read.
        self.nodes.setdefault(INITIAL_KEY, ("", "initial", ""))
        for graph in program.functions.values():
            for node in graph.nodes:
                if not isinstance(node, LookupNode):
                    continue
                for definition in self.engine.reaching_definitions(node):
                    if definition is INITIAL:
                        self._edges.add((INITIAL_KEY, self._touch(node),
                                         "mem"))
                    else:
                        self._edge(definition, node, "mem")
        self.edges = tuple(sorted(self._edges))
        for src, dst, kind in self.edges:
            self._forward.setdefault(src, []).append((dst, kind))
            self._backward.setdefault(dst, []).append((src, kind))

    # -- queries -------------------------------------------------------

    def neighbours(self, key: str, direction: str
                   ) -> List[Tuple[str, str]]:
        """(neighbour key, edge kind) pairs; ``direction`` is
        ``"backward"`` (predecessors) or ``"forward"`` (successors)."""
        if direction == "backward":
            return self._backward.get(key, [])
        if direction == "forward":
            return self._forward.get(key, [])
        raise AnalysisError(
            f"unknown slice direction {direction!r}; "
            f"expected 'backward' or 'forward'")

    def stats(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in EDGE_KINDS}
        for _, _, kind in self.edges:
            counts[kind] += 1
        return {"nodes": len(self.nodes), "edges": len(self.edges),
                **{f"{kind}_edges": n for kind, n in counts.items()}}

    def digest(self) -> str:
        """Content hash of the graph — the cross-schedule/jobs/cache
        determinism gate, mirroring ``findings_digest``."""
        lines = [f"{key}|{fn}|{kind}|{origin}"
                 for key, (fn, kind, origin) in sorted(self.nodes.items())]
        lines += [f"{src}->{dst}:{kind}" for src, dst, kind in self.edges]
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def build_depgraph(result: AnalysisResult,
                   max_visits: int = 1_000_000,
                   engine: Optional[ReachingDefs] = None
                   ) -> DependenceGraph:
    """Build the dependence graph for one solved analysis result."""
    if engine is None:
        engine = ReachingDefs(result, max_visits=max_visits,
                              call_site_sensitive=False)
    return DependenceGraph(result, engine)
