"""Incremental re-analysis driven by persisted per-SCC summaries.

The driver (:func:`analyze_incremental`) persists the summaries of
:mod:`repro.analysis.summaries` next to the lowering cache and, on the
next run, loads whatever is still valid — an SCC's entry is addressed
by its *content key* (body hashes + callee SCC keys), so "is this
summary reusable?" is answered by file lookup, no timestamps, no
dependency journal.  Three regimes fall out:

* **replay** — every SCC's entry loads: the solution is reconstructed
  without running a single transfer function (``sccs_resolved = 0``);
* **partial** — some SCCs are dirty (missing/corrupt/evicted entries,
  closed under transitive *callers*, since a caller's summary bakes in
  its callees' facts): the frozen region is replayed, only the dirty
  cone is re-solved (``sccs_resolved < scc_total``);
* **cold** — nothing usable (or no cache): whole-program solve, then
  populate the store.

Partial context-insensitive solving works by *suppress-and-validate*:
the engine subclass pre-installs the frozen masks and replays the
frozen call edges, then overrides the single propagation funnel
(``flow_out_mask``) to swallow any push targeting a frozen graph's
output into an ``arrived`` ledger instead of propagating it.  Frozen
handlers therefore never run.  After the dirty fixpoint, two checks
certify the composition *exact* (equal to the whole-program solution,
not merely sound):

* **growth** — everything that arrived at a frozen output is already
  contained in its replayed mask (the frozen region is a post-fixpoint
  of the *new* program);
* **coverage** — every bit of a replayed frozen entry mask (formals +
  store formal, the only cross-graph inputs) is justified by this
  run's arrivals or by a replayed frozen caller's actuals (no stale
  fact survives from a deleted call site).

Any check failure — or any unexpected exception, e.g. an edit that
renumbered heap/string locations out from under a frozen mask — falls
back to a cold whole-program solve, so the incremental path can never
change results, only running time.  The fuzz oracle's summary leg and
the differential harness hold it to digest equality.

Context-sensitive and flow-insensitive flavors are replay-or-cold:
CS qualified pairs are not summary-encodable (assumption sets name
caller contexts) and FI's single global store makes "partial" the
whole program anyway; both replay for free when nothing changed, which
is the common serve-mode case.  Replayed CS results carry
``extras["ci_result"]`` (the checkers' witness route) but no
``extras["qualified"]``; replayed FI results omit
``extras["global_store_pairs"]``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError
from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import CallNode, OutputPort
from ..lru import evict_lru_files, touch
from ..memory.facttable import FactTable
from ..frontend.cache import caching_disabled, resolve_cache_dir
from .common import AnalysisResult, CallGraph, Counters, PointsToSolution
from .insensitive import InsensitiveAnalysis, analyze_insensitive
from .sensitive import analyze_sensitive
from .flowinsensitive import analyze_flowinsensitive
from .summaries import (
    SUMMARY_VERSION,
    Condensation,
    LocationCodec,
    Summary,
    apply_summary,
    body_hashes,
    call_condensation,
    context_hash,
    extract_summary,
    program_key,
    scc_keys,
)

#: Flavor order mirrors the runner: CI first (CS composes over it).
FLAVORS = ("insensitive", "sensitive", "flowinsensitive")


class SummaryReplayError(AnalysisError):
    """A replay/validation failure — callers fall back to cold."""


# -- the on-disk store ------------------------------------------------------


#: Disk budget for ``<cache_dir>/summaries/`` in MiB; unset or
#: non-positive leaves the store unbounded (the pre-GC behavior).
SUMMARY_CACHE_MB_ENV = "REPRO_SUMMARY_CACHE_MB"


def _default_store_budget() -> Optional[int]:
    raw = os.environ.get(SUMMARY_CACHE_MB_ENV, "")
    try:
        budget_mb = int(raw)
    except ValueError:
        return None
    return budget_mb * 1024 * 1024 if budget_mb > 0 else None


class SummaryStore:
    """``<cache_dir>/summaries/``: one pickle per (flavor, SCC key),
    plus a per-program manifest of observed dynamic call edges.

    Same durability idioms as the lowering cache: atomic publish via
    ``mkstemp`` + ``os.replace``, and any unreadable entry is unlinked
    and treated as a miss (the driver then re-solves its caller cone).
    Entries are immutable — the key *is* the content hash — so a store
    whose target file already exists is skipped, which also makes
    concurrent writers race-free.

    ``max_bytes`` (default: ``$REPRO_SUMMARY_CACHE_MB``, unbounded
    when unset) caps the directory under the same LRU rule the serve
    daemon applies to its in-memory tiers (:mod:`repro.lru`): loads
    bump entry recency, writes trigger :meth:`gc`, and the oldest
    entries go first.  Evicting an entry can only turn a future load
    into a re-solve — the exact degradation path corruption already
    exercises — so a bounded store is always safe, never wrong.
    """

    def __init__(self, cache_dir: Path,
                 max_bytes: Optional[int] = None) -> None:
        self.root = Path(cache_dir) / "summaries"
        self.max_bytes = (max_bytes if max_bytes is not None
                          else _default_store_budget())
        #: Entries deleted by :meth:`gc` over this store's lifetime.
        self.evictions = 0

    # -- paths -------------------------------------------------------------

    def entry_path(self, flavor: str, key: str) -> Path:
        return self.root / f"{flavor}-{key}.pkl"

    def manifest_path(self, key: str) -> Path:
        return self.root / f"manifest-{key}.pkl"

    # -- load --------------------------------------------------------------

    def _load_payload(self, path: Path) -> Optional[dict]:
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated or corrupt — drop it so the next run misses
            # cleanly instead of failing the same way forever.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(payload, dict) or \
                payload.get("version") != SUMMARY_VERSION:
            return None
        touch(path)  # LRU recency: hot entries outlive the GC
        return payload

    def load_entry(self, flavor: str, key: str) -> Optional[Summary]:
        payload = self._load_payload(self.entry_path(flavor, key))
        if payload is None or payload.get("flavor") != flavor:
            return None
        try:
            return Summary.from_payload(payload)
        except Exception:
            return None

    def load_manifest(self, key: str) -> Optional[dict]:
        return self._load_payload(self.manifest_path(key))

    # -- store -------------------------------------------------------------

    def _write_payload(self, path: Path, payload: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=5)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def store_entry(self, flavor: str, key: str, summary: Summary) -> bool:
        path = self.entry_path(flavor, key)
        if path.exists():
            return False
        self._write_payload(path, summary.as_payload())
        return True

    def store_manifest(self, key: str, payload: dict) -> None:
        self._write_payload(self.manifest_path(key), payload)
        self.gc()

    # -- eviction ----------------------------------------------------------

    def gc(self) -> int:
        """Evict least-recently-used entries until the store fits its
        byte budget; returns (and counts) the number evicted.  Called
        after each manifest publish — the write that ends every
        store-refreshing run — so growth is reclaimed promptly without
        paying a directory walk per entry."""
        if self.max_bytes is None:
            return 0
        removed = evict_lru_files(self.root, self.max_bytes)
        self.evictions += removed
        return removed


def manifest_key(program: Program) -> str:
    """Manifest address: program name + hazard-model variant + defined
    function set.  Coarse on purpose — the manifest only *suggests*
    dynamic call edges for condensation; per-SCC entries carry the
    edges replay actually trusts."""
    hazard = program.extras.get("hazard") or {}
    text = "|".join([str(SUMMARY_VERSION), program.name,
                     ",".join(sorted(hazard)),
                     ",".join(sorted(program.functions))])
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- partial context-insensitive solving ------------------------------------


class IncrementalInsensitiveAnalysis(InsensitiveAnalysis):
    """CI engine that re-solves only the dirty call-graph cone.

    Construct, replay the frozen summaries into ``.solution`` /
    ``.callgraph`` (:func:`summaries.apply_summary`), then ``run()``.
    Always serial ``batched``: the parallel driver shadows
    ``flow_out_mask`` with an instance attribute, which would bypass
    the suppression override below, and partial solves are small by
    design — the dirty cone is the work.
    """

    def __init__(self, program: Program,
                 frozen_graphs: Iterable[FunctionGraph]) -> None:
        super().__init__(program, schedule="batched", parallel_scc=False)
        self._frozen_graphs: Set[FunctionGraph] = set(frozen_graphs)
        #: Masks pushed at frozen outputs this run (seeds, dirty-caller
        #: actuals); the validation checks work over this ledger.
        self.arrived: Dict[OutputPort, int] = {}

    def flow_out_mask(self, output: OutputPort, mask: int) -> None:
        if output.node.graph in self._frozen_graphs:
            # The frozen region is converged state, not a propagation
            # target: record the push for validation and stop — its
            # handlers must never run against replayed masks.
            if mask:
                self.arrived[output] = self.arrived.get(output, 0) | mask
            return
        InsensitiveAnalysis.flow_out_mask(self, output, mask)

    # -- exactness certification -------------------------------------------

    def check_partition(self) -> None:
        """Reject replayed frozen→dirty call edges, **before** solving.

        The suppression scheme relies on frozen call sites never
        invoking dirty procedures: frozen handlers don't run, so a
        dirty callee of a frozen call would never receive that caller's
        actuals and its re-solve would be under-seeded — an error the
        post-fixpoint checks cannot see.  The condensation's
        caller-closure makes this impossible for edges it knows about;
        a stale entry can still carry a dynamic edge the condensation
        missed, which this check turns into a cold fallback.
        """
        for graph in self._frozen_graphs:
            for node in graph.nodes:
                if not isinstance(node, CallNode):
                    continue
                for callee in self.callgraph.callees(node):
                    if callee not in self._frozen_graphs:
                        raise SummaryReplayError(
                            f"frozen {graph.name} calls dirty "
                            f"{callee.name}")

    def validate(self) -> None:
        """Raise :class:`SummaryReplayError` unless the composed
        solution provably equals the whole-program solution.

        Every cross-graph dataflow equation touching the frozen region
        is checked in **both** directions (the only cross-graph flows
        are call→formal/store-formal and return→out/ostore; port
        consumer edges are strictly intra-graph):

        * *growth*: everything pushed at a frozen output this run is
          contained in its replayed mask;
        * *closure*: a replayed frozen caller's actuals are contained
          in its callee's formal masks, and replayed callee returns in
          the caller's call outputs — so the composition is a
          post-fixpoint and therefore a superset of the true solution;
        * *coverage*: every replayed mask at a frozen cross-graph
          input is justified by this run's arrivals or by a replayed
          frozen peer — no fact survives from a call site or return
          that no longer exists, so the composition is also a subset.

        Intra-graph equations need no checking: a key match means the
        body is isomorphic to the one the summary was extracted from,
        and the stored facts are a fixpoint of those equations given
        the (just-validated) masks at the graph's entry outputs.
        """
        solution = self.solution
        arrived = self.arrived
        for output, mask in arrived.items():
            if mask & ~solution.mask(output):
                raise SummaryReplayError(
                    f"frozen output {output!r} grew under re-analysis")
        justified: Dict[OutputPort, int] = {}
        for graph in self._frozen_graphs:
            for call in self.callgraph.callers(graph):
                if call.graph not in self._frozen_graphs:
                    continue  # dirty callers pushed through `arrived`
                for index, arg in enumerate(call.args):
                    formal = graph.corresponding_formal(index)
                    if formal is not None:
                        justified[formal] = \
                            justified.get(formal, 0) | self._mask(arg)
                store = graph.store_formal
                justified[store] = \
                    justified.get(store, 0) | self._mask(call.store)
        for graph in self._frozen_graphs:
            for output in list(graph.formals) + [graph.store_formal]:
                have = solution.mask(output)
                if justified.get(output, 0) & ~have:
                    raise SummaryReplayError(
                        f"replayed call site would grow frozen formal "
                        f"{output!r}")
                stale = have & ~(arrived.get(output, 0)
                                 | justified.get(output, 0))
                if stale:
                    raise SummaryReplayError(
                        f"frozen input {output!r} holds facts no live "
                        f"call site justifies")
        for graph in self._frozen_graphs:
            for node in graph.nodes:
                if not isinstance(node, CallNode):
                    continue
                returned = stored = 0
                for callee in self.callgraph.callees(node):
                    ret = callee.return_node
                    if ret is None:
                        continue
                    if ret.value is not None:
                        returned |= self._mask(ret.value)
                    stored |= self._mask(ret.store)
                for output, incoming in ((node.out, returned),
                                         (node.ostore, stored)):
                    have = solution.mask(output)
                    if incoming & ~have:
                        raise SummaryReplayError(
                            f"replayed return would grow frozen call "
                            f"output {output!r}")
                    if have & ~(arrived.get(output, 0) | incoming):
                        raise SummaryReplayError(
                            f"frozen call output {output!r} holds "
                            f"facts no live return justifies")


# -- the driver -------------------------------------------------------------


def _incremental_counters(extras: dict, *, resolved: int, reused: int,
                          hits: int, total: int) -> None:
    dense = extras.setdefault("dense", {})
    dense["sccs_resolved"] = resolved
    dense["summaries_reused"] = reused
    dense["summary_cache_hits"] = hits
    dense["summary_scc_total"] = total


def _replay_dense(table: FactTable, solution: PointsToSolution) -> dict:
    spanned, packed = solution.storage_stats()
    return {"fact_ids": table.pair_count(), "bitset_words": spanned,
            "packed_words": packed, "kernel_calls": 0, "decode_calls": 0}


def _dirty_partition(cond: Condensation, loaded: Dict[int, Summary]
                     ) -> Tuple[Set[int], Set[int]]:
    """(dirty, frozen) component sets.  Dirtiness is closed under
    transitive callers: a caller's stored entry was extracted against
    its old callees' facts, so a loadable caller above a dirty callee
    must still be re-solved.  (Body edits already re-key the caller
    cone via the content keys; the closure matters for corruption and
    eviction, where keys still match but an entry is gone.)"""
    missing = [i for i in range(len(cond.sccs)) if i not in loaded]
    dirty = cond.caller_closure(missing)
    frozen = set(range(len(cond.sccs))) - dirty
    return dirty, frozen


def _replay_result(program: Program, flavor: str, codec: LocationCodec,
                   summaries: Iterable[Summary],
                   callgraph: Optional[CallGraph] = None,
                   extra_extras: Optional[dict] = None) -> AnalysisResult:
    started = time.perf_counter()
    table = FactTable.for_program(program)
    solution = PointsToSolution(table)
    if callgraph is None:
        callgraph = CallGraph()
    for summary in summaries:
        apply_summary(summary, program, codec, solution, callgraph)
    elapsed = time.perf_counter() - started
    extras = {"phases": {"solve": elapsed},
              "dense": _replay_dense(table, solution)}
    if extra_extras:
        extras.update(extra_extras)
    return AnalysisResult(program=program, solution=solution,
                          callgraph=callgraph, counters=Counters(),
                          elapsed_seconds=elapsed, flavor=flavor,
                          extras=extras)


def _load_all(store: SummaryStore, flavor: str, keys: Sequence[str]
              ) -> Dict[int, Summary]:
    loaded: Dict[int, Summary] = {}
    for index, key in enumerate(keys):
        summary = store.load_entry(flavor, key)
        if summary is not None:
            loaded[index] = summary
    return loaded


def _solve_ci(program: Program, store: Optional[SummaryStore],
              cond: Condensation, keys: Sequence[str],
              codec: LocationCodec, schedule: str, parallel_scc: bool,
              jobs: Optional[int]) -> AnalysisResult:
    """CI with replay/partial/cold selection and cold fallback.

    Replay is the ``dirty = ∅`` degenerate case of the partial engine:
    nothing is re-solved, but seeding and validation still run, so
    even an all-frozen composition is certified against the current
    program before it is returned (entries persisted by different
    store generations are individually key-valid but not guaranteed
    mutually consistent — validation is what makes their composition
    trustworthy without re-solving).
    """
    total = len(cond.sccs)

    def cold(hits: int) -> AnalysisResult:
        result = analyze_insensitive(program, schedule=schedule,
                                     parallel_scc=parallel_scc, jobs=jobs)
        _incremental_counters(result.extras, resolved=total, reused=0,
                              hits=hits, total=total)
        return result

    if store is None:
        return cold(0)
    loaded = _load_all(store, "insensitive", keys)
    dirty, frozen = _dirty_partition(cond, loaded)
    if not frozen:
        return cold(len(loaded))
    try:
        frozen_graphs = [program.functions[name]
                         for i in frozen for name in cond.sccs[i]]
        engine = IncrementalInsensitiveAnalysis(program, frozen_graphs)
        for i in sorted(frozen):
            apply_summary(loaded[i], program, codec,
                          engine.solution, engine.callgraph)
        engine.check_partition()
        result = engine.run()
        engine.validate()
    except Exception:
        # Validation failure or structural drift (renumbered heap
        # cells, vanished nodes).  The partial attempt touched only
        # run-local state — re-solving from scratch is always safe.
        return cold(len(loaded))
    _incremental_counters(result.extras, resolved=len(dirty),
                          reused=len(frozen), hits=len(loaded),
                          total=total)
    return result


def _solve_replay_or_cold(program: Program, flavor: str,
                          store: Optional[SummaryStore], pkey: str,
                          total: int, codec: LocationCodec,
                          schedule: str,
                          ci_result: Optional[AnalysisResult]
                          ) -> AnalysisResult:
    """CS/FI: whole-program replay or cold — partial is CI-only.

    These flavors persist one entry under the whole-program key
    (module docstring: their facts are not caller-independent, so
    per-SCC keys cannot scope their validity).  A key match means no
    body changed since a complete solve was extracted, which makes the
    replay exact with no further validation.
    """
    hits = 0
    if store is not None:
        loaded = store.load_entry(flavor, pkey)
        if loaded is not None:
            hits = 1
            try:
                if flavor == "sensitive":
                    assert ci_result is not None
                    result = _replay_result(
                        program, flavor, codec, [loaded],
                        callgraph=ci_result.callgraph,
                        extra_extras={"ci_result": ci_result})
                else:
                    result = _replay_result(program, flavor, codec,
                                            [loaded])
            except Exception:
                result = None
            if result is not None:
                _incremental_counters(result.extras, resolved=0,
                                      reused=total, hits=hits,
                                      total=total)
                return result
    if flavor == "sensitive":
        result = analyze_sensitive(program, ci_result=ci_result,
                                   schedule=schedule)
    else:
        result = analyze_flowinsensitive(program, schedule=schedule)
    _incremental_counters(result.extras, resolved=total, reused=0,
                          hits=hits, total=total)
    return result


def _observed_edges(result: AnalysisResult) -> List[Tuple[str, str]]:
    return sorted({(call.graph.name, callee.name)
                   for call, callee in result.callgraph.edges()})


def _store_results(program: Program, store: SummaryStore,
                   codec: LocationCodec, ctx: str,
                   bodies: Dict[str, str],
                   results: Dict[str, AnalysisResult]) -> None:
    """Persist every analyzed flavor under the *converged* partition.

    The replay-time condensation only knows previously manifested
    dynamic edges; solving may have discovered more (or fewer).  The
    CI keys are therefore recomputed against the freshly observed
    edges before writing, so the second run over an unchanged program
    replays directly instead of needing another round to converge.
    Existing entry files are content-immutable and skipped.  CS/FI
    persist one whole-program entry each (their facts are not per-SCC
    compositional); the manifest records the observed dynamic edges
    per flavor for the next run's condensation.
    """
    edges = {flavor: _observed_edges(result)
             for flavor, result in results.items()}
    ci_result = results.get("insensitive")
    if ci_result is not None:
        union: Set[Tuple[str, str]] = set()
        for flavor_edges in edges.values():
            union.update(flavor_edges)
        cond = call_condensation(program, union)
        keys = scc_keys(program, cond, codec, ctx, bodies)
        for index, members in enumerate(cond.sccs):
            if store.entry_path("insensitive", keys[index]).exists():
                continue
            store.store_entry("insensitive", keys[index],
                              extract_summary(ci_result, members, codec))
    pkey = program_key(ctx, bodies)
    for flavor in ("sensitive", "flowinsensitive"):
        result = results.get(flavor)
        if result is None or store.entry_path(flavor, pkey).exists():
            continue
        store.store_entry(flavor, pkey,
                          extract_summary(result, sorted(program.functions),
                                          codec))
    store.store_manifest(manifest_key(program),
                         {"version": SUMMARY_VERSION, "edges": edges})


def analyze_incremental(program: Program,
                        flavors: Sequence[str] = FLAVORS, *,
                        cache: object = True,
                        schedule: str = "batched",
                        parallel_scc: bool = False,
                        jobs: Optional[int] = None,
                        store_max_bytes: Optional[int] = None
                        ) -> Dict[str, AnalysisResult]:
    """Analyze ``program`` for ``flavors``, reusing and refreshing the
    persisted summary store under the lowering cache directory.

    Degrades to plain whole-program analysis when caching is disabled
    (``cache=False`` / ``REPRO_NO_CACHE``), and on *any* replay or
    validation failure — the summaries can change how much work a run
    does, never what it computes.  Results carry the incremental
    counters in ``extras["dense"]``: ``sccs_resolved``,
    ``summaries_reused``, ``summary_cache_hits``,
    ``summary_scc_total``, and — when the store is byte-capped via
    ``store_max_bytes`` or ``REPRO_SUMMARY_CACHE_MB`` — the number of
    entries its GC evicted this run (``summary_evictions``).
    """
    unknown = [f for f in flavors if f not in FLAVORS]
    if unknown:
        raise AnalysisError(f"unknown flavors {unknown!r}")
    cache_dir = None if caching_disabled() else resolve_cache_dir(cache)
    store = (SummaryStore(cache_dir, max_bytes=store_max_bytes)
             if cache_dir is not None else None)

    codec = LocationCodec(program)
    ctx = context_hash(program, codec)
    bodies = body_hashes(program, codec)
    pkey = program_key(ctx, bodies)
    manifest = (store.load_manifest(manifest_key(program))
                if store is not None else None)
    prior_edges: Set[Tuple[str, str]] = set()
    if manifest:
        for flavor_edges in (manifest.get("edges") or {}).values():
            prior_edges.update(tuple(edge) for edge in flavor_edges)
    cond = call_condensation(program, prior_edges)
    keys = scc_keys(program, cond, codec, ctx, bodies)

    want = list(flavors)
    need_ci = "insensitive" in want or "sensitive" in want
    results: Dict[str, AnalysisResult] = {}
    ci_result: Optional[AnalysisResult] = None
    if need_ci:
        ci_result = _solve_ci(program, store, cond, keys, codec,
                              schedule, parallel_scc, jobs)
        if "insensitive" in want:
            results["insensitive"] = ci_result
    for flavor in ("sensitive", "flowinsensitive"):
        if flavor not in want:
            continue
        results[flavor] = _solve_replay_or_cold(
            program, flavor, store, pkey, len(cond.sccs), codec,
            schedule, ci_result)
    if store is not None:
        try:
            to_store = dict(results)
            if ci_result is not None:
                to_store.setdefault("insensitive", ci_result)
            _store_results(program, store, codec, ctx, bodies, to_store)
        except OSError:
            pass  # a read-only or full cache never fails the analysis
        for result in results.values():
            dense = result.extras.setdefault("dense", {})
            dense["summary_evictions"] = store.evictions
    return {flavor: results[flavor] for flavor in want}
