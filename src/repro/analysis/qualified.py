"""Qualified points-to pairs and assumption sets (paper Section 4.1).

A *qualified pair* is an ordinary points-to pair together with a set of
assumptions, each of which is a (formal parameter output, points-to
pair) — the pair must hold on that formal at entry to the enclosing
procedure for the qualified pair to hold.  For example,

    ((a, c), {(s, (a, b)), (s, (b, c))})

reads: "``a`` points to ``c`` on this output if, on entry to this
procedure, ``a`` points to ``b`` in formal ``s`` and ``b`` points to
``c`` in formal ``s``".  Assumptions are not restricted to store
formals: ``((ε, a), {(f, (ε, a))})`` says the output has pointer value
``a`` when formal ``f`` does.

The *subsumption rule* (Section 4.2) is the one optimization that is
purely representational: a qualified pair ``(p, B)`` reaching an output
where ``(p, A)`` already holds may be discarded whenever ``A ⊆ B`` — if
``p`` already holds under the weaker assumption set there is no need to
store or process the stronger one.  :class:`QualifiedSolution` keeps,
per output and plain pair, an antichain of minimal assumption sets.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..memory.pairs import PointsToPair
from ..ir.nodes import OutputPort
from .common import PointsToSolution

#: One assumption: this pair must hold on this formal output at entry.
Assumption = Tuple[OutputPort, PointsToPair]
AssumptionSet = FrozenSet[Assumption]

EMPTY_ASSUMPTIONS: AssumptionSet = frozenset()


class QualifiedPair:
    """An (ordinary pair, assumption set) fact flowing through the CS
    analysis.  Plain value object; equality is structural."""

    __slots__ = ("pair", "assumptions")

    def __init__(self, pair: PointsToPair,
                 assumptions: AssumptionSet = EMPTY_ASSUMPTIONS) -> None:
        self.pair = pair
        self.assumptions = assumptions

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, QualifiedPair)
                and self.pair is other.pair
                and self.assumptions == other.assumptions)

    def __hash__(self) -> int:
        return hash((self.pair, self.assumptions))

    def __repr__(self) -> str:
        if not self.assumptions:
            return f"{self.pair!r} [unconditional]"
        parts = ", ".join(f"{f.node.graph.name}.{f.name}:{p!r}"
                          for f, p in sorted(
                              self.assumptions,
                              key=lambda a: (a[0].node.uid, a[0].name,
                                             repr(a[1]))))
        return f"{self.pair!r} [{parts}]"


class AssumptionAntichain:
    """Minimal assumption sets under which one plain pair holds.

    Internally the chain stores whole :class:`QualifiedPair` objects
    (all sharing the same plain pair) so that iterating a solution can
    hand back the stored facts instead of allocating fresh wrappers —
    the CS solver re-reads qualified pairs far more often than it
    inserts them.  Iteration still yields the assumption sets.
    """

    __slots__ = ("quals",)

    def __init__(self) -> None:
        self.quals: List[QualifiedPair] = []

    def add_qualified(self, qp: QualifiedPair) -> bool:
        """Insert applying the subsumption rule.

        Returns False (and stores nothing) when an existing set is a
        subset of ``qp.assumptions``; otherwise removes existing
        supersets, stores ``qp``, and returns True.
        """
        candidate = qp.assumptions
        for existing in self.quals:
            if existing.assumptions <= candidate:
                return False
        self.quals = [q for q in self.quals
                      if not (candidate <= q.assumptions)]
        self.quals.append(qp)
        return True

    def add(self, candidate: AssumptionSet) -> bool:
        """Insert a bare assumption set (kept for direct antichain use)."""
        return self.add_qualified(QualifiedPair(None, candidate))

    def __iter__(self) -> Iterator[AssumptionSet]:
        for qp in self.quals:
            yield qp.assumptions

    def __len__(self) -> int:
        return len(self.quals)


class QualifiedSolution:
    """Per-output qualified points-to sets with subsumption."""

    def __init__(self) -> None:
        self._pairs: Dict[OutputPort, Dict[PointsToPair, AssumptionAntichain]] = {}

    def add(self, output: OutputPort, qp: QualifiedPair) -> bool:
        by_pair = self._pairs.get(output)
        if by_pair is None:
            by_pair = {}
            self._pairs[output] = by_pair
        chain = by_pair.get(qp.pair)
        if chain is None:
            chain = AssumptionAntichain()
            by_pair[qp.pair] = chain
        return chain.add_qualified(qp)

    # -- queries ------------------------------------------------------------

    def plain_pairs(self, output: OutputPort) -> Set[PointsToPair]:
        """The assumption-stripped pair set on an output."""
        return set(self._pairs.get(output, ()))

    def assumption_sets(self, output: OutputPort,
                        pair: PointsToPair) -> List[AssumptionSet]:
        by_pair = self._pairs.get(output)
        if by_pair is None:
            return []
        chain = by_pair.get(pair)
        return list(chain) if chain is not None else []

    def qualified_pairs(self, output: OutputPort) -> Iterator[QualifiedPair]:
        for chain in self._pairs.get(output, {}).values():
            yield from chain.quals

    def outputs(self) -> Iterator[OutputPort]:
        return iter(self._pairs)

    def total_plain_pairs(self) -> int:
        return sum(len(by_pair) for by_pair in self._pairs.values())

    def total_qualified_pairs(self) -> int:
        return sum(len(chain)
                   for by_pair in self._pairs.values()
                   for chain in by_pair.values())

    def max_assumption_set_size(self) -> int:
        sizes = (len(s)
                 for by_pair in self._pairs.values()
                 for chain in by_pair.values()
                 for s in chain)
        return max(sizes, default=0)

    def strip(self) -> PointsToSolution:
        """Section 4.1's final step: drop assumption sets, dedupe."""
        solution = PointsToSolution()
        for output, by_pair in self._pairs.items():
            for pair in by_pair:
                solution.add(output, pair)
        return solution
