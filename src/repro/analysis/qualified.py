"""Qualified points-to pairs and assumption sets (paper Section 4.1).

A *qualified pair* is an ordinary points-to pair together with a set of
assumptions, each of which is a (formal parameter output, points-to
pair) — the pair must hold on that formal at entry to the enclosing
procedure for the qualified pair to hold.  For example,

    ((a, c), {(s, (a, b)), (s, (b, c))})

reads: "``a`` points to ``c`` on this output if, on entry to this
procedure, ``a`` points to ``b`` in formal ``s`` and ``b`` points to
``c`` in formal ``s``".  Assumptions are not restricted to store
formals: ``((ε, a), {(f, (ε, a))})`` says the output has pointer value
``a`` when formal ``f`` does.

The *subsumption rule* (Section 4.2) is the one optimization that is
purely representational: a qualified pair ``(p, B)`` reaching an output
where ``(p, A)`` already holds may be discarded whenever ``A ⊆ B`` — if
``p`` already holds under the weaker assumption set there is no need to
store or process the stronger one.  :class:`QualifiedSolution` keeps,
per output and plain pair, an antichain of minimal assumption sets.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..memory.pairs import PointsToPair
from ..ir.nodes import OutputPort
from .common import PointsToSolution

#: One assumption: this pair must hold on this formal output at entry.
Assumption = Tuple[OutputPort, PointsToPair]
AssumptionSet = FrozenSet[Assumption]

EMPTY_ASSUMPTIONS: AssumptionSet = frozenset()


class QualifiedPair:
    """An (ordinary pair, assumption set) fact flowing through the CS
    analysis.  Plain value object; equality is structural."""

    __slots__ = ("pair", "assumptions")

    def __init__(self, pair: PointsToPair,
                 assumptions: AssumptionSet = EMPTY_ASSUMPTIONS) -> None:
        self.pair = pair
        self.assumptions = assumptions

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, QualifiedPair)
                and self.pair is other.pair
                and self.assumptions == other.assumptions)

    def __hash__(self) -> int:
        return hash((self.pair, self.assumptions))

    def __repr__(self) -> str:
        if not self.assumptions:
            return f"{self.pair!r} [unconditional]"
        parts = ", ".join(f"{f.node.graph.name}.{f.name}:{p!r}"
                          for f, p in sorted(
                              self.assumptions,
                              key=lambda a: (a[0].node.uid, a[0].name,
                                             repr(a[1]))))
        return f"{self.pair!r} [{parts}]"


class AssumptionAntichain:
    """Minimal assumption sets under which one plain pair holds.

    Internally the chain stores whole :class:`QualifiedPair` objects
    (all sharing the same plain pair) so that iterating a solution can
    hand back the stored facts instead of allocating fresh wrappers —
    the CS solver re-reads qualified pairs far more often than it
    inserts them.  Iteration still yields the assumption sets.

    Subsumption tests run in the bitset domain: each stored set also
    carries a mask over dense assumption ids (interned per solution,
    see :meth:`QualifiedSolution.assumption_mask`), and ``A ⊆ B``
    becomes ``a_mask & b_mask == a_mask`` — one big-int AND per stored
    set instead of a frozenset subset walk.
    """

    __slots__ = ("quals", "masks", "_ids")

    def __init__(self) -> None:
        self.quals: List[QualifiedPair] = []
        self.masks: List[int] = []
        #: Local interner, only for standalone chains (``add``); chains
        #: inside a QualifiedSolution always receive precomputed masks.
        self._ids: Optional[Dict[Assumption, int]] = None

    def add_qualified(self, qp: QualifiedPair,
                      mask: Optional[int] = None) -> bool:
        """Insert applying the subsumption rule.

        Returns False (and stores nothing) when an existing set is a
        subset of ``qp.assumptions``; otherwise removes existing
        supersets, stores ``qp``, and returns True.  ``mask`` is the
        candidate's assumption bitset; omitted, it is computed against
        the chain's own interner.
        """
        if mask is None:
            mask = self._local_mask(qp.assumptions)
        masks = self.masks
        for existing in masks:
            if existing & mask == existing:
                return False
        keep = [i for i, existing in enumerate(masks)
                if existing & mask != mask]
        if len(keep) != len(masks):
            self.quals = [self.quals[i] for i in keep]
            self.masks = [masks[i] for i in keep]
        self.quals.append(qp)
        self.masks.append(mask)
        return True

    def add(self, candidate: AssumptionSet) -> bool:
        """Insert a bare assumption set (kept for direct antichain use)."""
        return self.add_qualified(QualifiedPair(None, candidate))

    def _local_mask(self, assumptions: AssumptionSet) -> int:
        ids = self._ids
        if ids is None:
            ids = self._ids = {}
        mask = 0
        for assumption in assumptions:
            ident = ids.get(assumption)
            if ident is None:
                ident = len(ids)
                ids[assumption] = ident
            mask |= 1 << ident
        return mask

    def __iter__(self) -> Iterator[AssumptionSet]:
        for qp in self.quals:
            yield qp.assumptions

    def __len__(self) -> int:
        return len(self.quals)


class QualifiedSolution:
    """Per-output qualified points-to sets with subsumption.

    Assumptions are interned to dense ids solution-wide, so every
    antichain's subsumption tests share one id space and a qualified
    pair re-added on a different output re-encodes to the same mask.
    """

    def __init__(self) -> None:
        self._pairs: Dict[OutputPort, Dict[PointsToPair, AssumptionAntichain]] = {}
        self._assumption_ids: Dict[Assumption, int] = {}

    def assumption_mask(self, assumptions: AssumptionSet) -> int:
        """Encode an assumption set as a bitset over solution-wide ids."""
        ids = self._assumption_ids
        mask = 0
        for assumption in assumptions:
            ident = ids.get(assumption)
            if ident is None:
                ident = len(ids)
                ids[assumption] = ident
            mask |= 1 << ident
        return mask

    def add(self, output: OutputPort, qp: QualifiedPair) -> bool:
        by_pair = self._pairs.get(output)
        if by_pair is None:
            by_pair = {}
            self._pairs[output] = by_pair
        chain = by_pair.get(qp.pair)
        if chain is None:
            chain = AssumptionAntichain()
            by_pair[qp.pair] = chain
        return chain.add_qualified(qp, self.assumption_mask(qp.assumptions))

    # -- queries ------------------------------------------------------------

    def plain_pairs(self, output: OutputPort) -> Set[PointsToPair]:
        """The assumption-stripped pair set on an output."""
        return set(self._pairs.get(output, ()))

    def assumption_sets(self, output: OutputPort,
                        pair: PointsToPair) -> List[AssumptionSet]:
        by_pair = self._pairs.get(output)
        if by_pair is None:
            return []
        chain = by_pair.get(pair)
        return list(chain) if chain is not None else []

    def qualified_pairs(self, output: OutputPort) -> Iterator[QualifiedPair]:
        for chain in self._pairs.get(output, {}).values():
            yield from chain.quals

    def outputs(self) -> Iterator[OutputPort]:
        return iter(self._pairs)

    def total_plain_pairs(self) -> int:
        return sum(len(by_pair) for by_pair in self._pairs.values())

    def total_qualified_pairs(self) -> int:
        return sum(len(chain)
                   for by_pair in self._pairs.values()
                   for chain in by_pair.values())

    def max_assumption_set_size(self) -> int:
        sizes = (len(s)
                 for by_pair in self._pairs.values()
                 for chain in by_pair.values()
                 for s in chain)
        return max(sizes, default=0)

    def strip(self, table=None) -> PointsToSolution:
        """Section 4.1's final step: drop assumption sets, dedupe.

        ``table`` (a :class:`~repro.memory.facttable.FactTable`) lets
        the caller encode the stripped solution against the program's
        shared id space; omitted, the solution gets a private table.

        Each output's plain pairs are encoded into one bitset and
        joined with a single word-packed :meth:`~repro.analysis.common.
        PointsToSolution.join_mask` call, rather than one big-int
        reallocation per pair.
        """
        solution = PointsToSolution(table)
        pair_id = solution.table.pair_id
        for output, by_pair in self._pairs.items():
            mask = 0
            for pair in by_pair:
                mask |= 1 << pair_id(pair)
            solution.join_mask(output, mask)
        return solution
