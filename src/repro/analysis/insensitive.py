"""Context-insensitive points-to analysis — the paper's Figure 1.

The algorithm is "essentially the simple algorithm of [CWZ90, Sections
3 and 4.2]": maintain a set of points-to pairs on every node output,
grown incrementally by a worklist.  Whenever a pair is added to a set,
all consumers of that output are notified and make the appropriate
modifications to the sets on their own outputs.  Calls and returns are
handled like jumps — all information at a call's actuals propagates to
all called procedures, and all information at a procedure's returns
propagates to all of its callers.

Strong updates follow the dual-worklist discipline of CWZ90: store
pairs are delayed until at least one pair has arrived on an update's
location input, and blocked pairs are re-examined whenever a further
location pair arrives (the location-arrival case re-scans the full
store set).  Indirect calls repropagate old information to newly
discovered callees.

Termination: outputs and pairs are finite and sets only grow, giving
the paper's O(n³) worst case (O(n²) average when each pointer has a
small constant number of referents).
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import AnalysisError
from ..memory.access import EMPTY_OFFSET, INDEX, AccessPath
from ..memory.pairs import PointsToPair, direct, pair as make_pair
from ..memory.relations import dom, strong_dom
from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import (
    CallNode,
    InputPort,
    LookupNode,
    MergeNode,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    ReturnNode,
    UpdateNode,
)
from .common import (
    AnalysisResult,
    CallGraph,
    Counters,
    PointsToSolution,
    Worklist,
    resolve_function_value,
    seed_addresses,
    seed_roots,
)


class InsensitiveAnalysis:
    """One run of the context-insensitive analysis over a program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.solution = PointsToSolution()
        self.callgraph = CallGraph()
        self.counters = Counters()
        self.worklist = Worklist()

    # -- driver ------------------------------------------------------------

    def run(self) -> AnalysisResult:
        started = time.perf_counter()
        seed_addresses(self.program, self.flow_out)
        seed_roots(self.program, self.flow_out)
        while self.worklist:
            input_port, fact = self.worklist.pop()
            self.counters.transfers += 1
            self.flow_in(input_port, fact)
        elapsed = time.perf_counter() - started
        return AnalysisResult(
            program=self.program,
            solution=self.solution,
            callgraph=self.callgraph,
            counters=self.counters,
            elapsed_seconds=elapsed,
            flavor="insensitive",
        )

    # -- propagation ----------------------------------------------------------

    def flow_out(self, output: OutputPort, pair: PointsToPair) -> None:
        """Join ``pair`` into P(output); notify consumers if it is new."""
        self.counters.meets += 1
        if not self.solution.add(output, pair):
            return
        self.counters.pairs_added += 1
        for consumer in output.consumers:
            self.worklist.push(consumer, pair)

    def _pairs(self, input_port: Optional[InputPort]):
        """Current pairs on the output feeding ``input_port``."""
        if input_port is None or input_port.source is None:
            return ()
        return self.solution.raw_pairs(input_port.source)

    # -- transfer functions (flow-in, Figure 1) ----------------------------------

    def flow_in(self, input_port: InputPort, fact: PointsToPair) -> None:
        node = input_port.node
        if isinstance(node, LookupNode):
            self._flow_lookup(node, input_port, fact)
        elif isinstance(node, UpdateNode):
            self._flow_update(node, input_port, fact)
        elif isinstance(node, CallNode):
            self._flow_call(node, input_port, fact)
        elif isinstance(node, ReturnNode):
            self._flow_return(node, input_port, fact)
        elif isinstance(node, MergeNode):
            self._flow_merge(node, input_port, fact)
        elif isinstance(node, PrimopNode):
            self._flow_primop(node, input_port, fact)
        else:
            raise AnalysisError(f"pair arrived at unexpected node {node!r}")

    def _flow_lookup(self, node: LookupNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        """A new location dereferences the store / a new store pair is
        dereferenced by all known locations."""
        if input_port is node.loc:
            if fact.path is not EMPTY_OFFSET:
                return  # only the pointer value itself can be dereferenced
            r_l = fact.referent
            for sp in list(self._pairs(node.store)):
                if dom(r_l, sp.path):
                    self.flow_out(node.out,
                                  make_pair(sp.path.subtract(r_l), sp.referent))
        elif input_port is node.store:
            for lp in list(self._pairs(node.loc)):
                if lp.path is not EMPTY_OFFSET:
                    continue
                if dom(lp.referent, fact.path):
                    self.flow_out(node.out,
                                  make_pair(fact.path.subtract(lp.referent),
                                            fact.referent))
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown lookup input {input_port!r}")

    def _flow_update(self, node: UpdateNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        """New locations write all values and release non-killed store
        pairs; new store pairs propagate if at least one location does
        not strongly update them; new values are written everywhere."""
        if input_port is node.loc:
            if fact.path is not EMPTY_OFFSET:
                return
            r_l = fact.referent
            for vp in list(self._pairs(node.value)):
                self.flow_out(node.ostore,
                              make_pair(r_l.append(vp.path), vp.referent))
            for sp in list(self._pairs(node.store)):
                if not strong_dom(r_l, sp.path):
                    self.flow_out(node.ostore, sp)
        elif input_port is node.store:
            for lp in list(self._pairs(node.loc)):
                if lp.path is not EMPTY_OFFSET:
                    continue
                if not strong_dom(lp.referent, fact.path):
                    self.flow_out(node.ostore, fact)
                    break  # one non-killing location suffices
        elif input_port is node.value:
            for lp in list(self._pairs(node.loc)):
                if lp.path is not EMPTY_OFFSET:
                    continue
                self.flow_out(node.ostore,
                              make_pair(lp.referent.append(fact.path),
                                        fact.referent))
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown update input {input_port!r}")

    def _flow_call(self, node: CallNode, input_port: InputPort,
                   fact: PointsToPair) -> None:
        if input_port is node.fcn:
            self._discover_callee(node, fact)
            return
        if input_port is node.store:
            for callee in self.callgraph.callees(node):
                self.flow_out(callee.store_formal, fact)
            return
        for index, arg in enumerate(node.args):
            if input_port is arg:
                for callee in self.callgraph.callees(node):
                    formal = callee.corresponding_formal(index)
                    if formal is not None:
                        self.flow_out(formal, fact)
                return
        raise AnalysisError(f"unknown call input {input_port!r}")

    def _discover_callee(self, node: CallNode, fact: PointsToPair) -> None:
        """A new function value updates the call graph and performs the
        appropriate repropagation of already-known actuals and returns."""
        if fact.path is not EMPTY_OFFSET:
            return
        callee = resolve_function_value(self.program, fact.referent)
        if callee is None:
            self.callgraph.unresolved.add(node)
            return
        if not self.callgraph.add_edge(node, callee):
            return
        for index, arg in enumerate(node.args):
            formal = callee.corresponding_formal(index)
            if formal is None:
                continue
            for pair in list(self._pairs(arg)):
                self.flow_out(formal, pair)
        for pair in list(self._pairs(node.store)):
            self.flow_out(callee.store_formal, pair)
        ret = callee.return_node
        if ret is not None:
            if ret.value is not None:
                for pair in list(self._pairs(ret.value)):
                    self.flow_out(node.out, pair)
            for pair in list(self._pairs(ret.store)):
                self.flow_out(node.ostore, pair)

    def _flow_return(self, node: ReturnNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        graph = node.graph
        if input_port is node.value:
            for call in self.callgraph.callers(graph):
                self.flow_out(call.out, fact)
        elif input_port is node.store:
            for call in self.callgraph.callers(graph):
                self.flow_out(call.ostore, fact)
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown return input {input_port!r}")

    def _flow_merge(self, node: MergeNode, input_port: InputPort,
                    fact: PointsToPair) -> None:
        if input_port is node.pred:
            return  # predicate is ignored (Figure 1)
        self.flow_out(node.out, fact)

    def _flow_primop(self, node: PrimopNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        semantics = node.semantics
        if semantics is PrimopSemantics.OPAQUE:
            return
        if semantics is PrimopSemantics.COPY:
            if node.copy_operand is not None and \
                    input_port is not node.operands[node.copy_operand]:
                return  # consumed, but pairs do not flow (lib calls)
            self.flow_out(node.out, fact)
            return
        if semantics is PrimopSemantics.EXTRACT:
            path = fact.path
            if path.base is None and path.ops and path.ops[0] is node.field_op:
                self.flow_out(node.out,
                              make_pair(AccessPath(None, path.ops[1:]),
                                        fact.referent))
            return
        if fact.path is not EMPTY_OFFSET:
            return
        if semantics is PrimopSemantics.FIELD:
            self.flow_out(node.out,
                          direct(fact.referent.extend(node.field_op)))
        elif semantics is PrimopSemantics.INDEX:
            self.flow_out(node.out, direct(fact.referent.extend(INDEX)))
        else:  # pragma: no cover - future semantics
            raise AnalysisError(f"unknown primop semantics {semantics!r}")


def analyze_insensitive(program: Program) -> AnalysisResult:
    """Run the context-insensitive analysis (paper Section 3)."""
    return InsensitiveAnalysis(program).run()
