"""Context-insensitive points-to analysis — the paper's Figure 1.

The algorithm is "essentially the simple algorithm of [CWZ90, Sections
3 and 4.2]": maintain a set of points-to pairs on every node output,
grown incrementally by a worklist.  Whenever a pair is added to a set,
all consumers of that output are notified and make the appropriate
modifications to the sets on their own outputs.  Calls and returns are
handled like jumps — all information at a call's actuals propagates to
all called procedures, and all information at a procedure's returns
propagates to all of its callers.

Strong updates follow the dual-worklist discipline of CWZ90: store
pairs are delayed until at least one pair has arrived on an update's
location input, and blocked pairs are re-examined whenever a further
location pair arrives (the location-arrival case re-scans the full
store set).  Indirect calls repropagate old information to newly
discovered callees.

Termination: outputs and pairs are finite and sets only grow, giving
the paper's O(n³) worst case (O(n²) average when each pointer has a
small constant number of referents).

Three schedules drive the same transfer functions (the paper notes
convergence is independent of the scheduling strategy):

* ``"batched"`` (default) — the **dense engine**: facts are bitsets
  over per-program ids (:class:`~repro.memory.facttable.FactTable`), a
  port-keyed worklist drains each dirty port's whole pending bitset
  through one pre-bound handler, and the pure-forwarding transfer
  functions (merges, copies, call/return plumbing, store pass-through)
  reduce to big-int OR / AND-NOT with no per-fact Python loop;
* ``"scc"`` — the same dense engine, but ports pop in topological
  order of the port dependency graph's SCC condensation (round-robin
  within a component; see :mod:`repro.analysis.scheduling`);
* ``"fifo"`` — the original one-fact-per-pop queue over interned pair
  objects, kept as the reference implementation for the
  schedule-equivalence gate.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..errors import AnalysisError
from ..memory.access import EMPTY_OFFSET, INDEX, AccessPath
from ..memory.facttable import FactTable
from ..memory.pairs import PointsToPair, direct, pair as make_pair
from ..memory.relations import dom, strong_dom
from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import (
    CallNode,
    InputPort,
    LookupNode,
    MergeNode,
    Node,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    ReturnNode,
    UpdateNode,
    input_roles,
)
from .common import (
    AnalysisResult,
    CallGraph,
    Counters,
    MaskWorklist,
    PointsToSolution,
    SCCMaskWorklist,
    Worklist,
    check_schedule,
    resolve_function_value,
    seed_addresses,
    seed_roots,
)
from .scheduling import port_scc_order

#: A dense batch handler consumes one port's pending fact bitset.
MaskHandler = Callable[[int], None]


class InsensitiveAnalysis:
    """One run of the context-insensitive analysis over a program."""

    def __init__(self, program: Program, schedule: str = "batched") -> None:
        self.program = program
        self.schedule = check_schedule(schedule)
        self.table = FactTable.for_program(program)
        self.solution = PointsToSolution(self.table)
        self.callgraph = CallGraph()
        self.counters = Counters()
        self._dispatch: Dict[InputPort, MaskHandler] = {}
        self._dense = self.schedule != "fifo"
        self._scc_count: Optional[int] = None
        if self.schedule == "scc":
            order, self._scc_count = port_scc_order(program)
            self.worklist: object = SCCMaskWorklist(order)
        elif self.schedule == "batched":
            self.worklist = MaskWorklist()
        else:
            self.worklist = Worklist()

    # -- driver ------------------------------------------------------------

    def run(self) -> AnalysisResult:
        decode_calls_before = self.table.decode_calls
        started = time.perf_counter()
        if self._dense:
            self._run_dense()
        else:
            self._run_fifo()
        elapsed = time.perf_counter() - started
        extras = {
            "phases": {"solve": elapsed},
            "dense": {
                "fact_ids": self.table.pair_count(),
                "bitset_words": self.solution.bitset_words(),
                "decode_calls": self.table.decode_calls
                - decode_calls_before,
            },
        }
        if self._scc_count is not None:
            extras["dense"]["scc_count"] = self._scc_count
        return AnalysisResult(
            program=self.program,
            solution=self.solution,
            callgraph=self.callgraph,
            counters=self.counters,
            elapsed_seconds=elapsed,
            flavor="insensitive",
            extras=extras,
        )

    def _run_fifo(self) -> None:
        seed_addresses(self.program, self.flow_out)
        seed_roots(self.program, self.flow_out)
        worklist = self.worklist
        counters = self.counters
        while worklist:
            input_port, fact = worklist.pop()
            counters.transfers += 1
            counters.batches += 1
            self.flow_in(input_port, fact)

    def _run_dense(self) -> None:
        dispatch = self._dispatch
        seed_addresses(self.program, self.flow_out)
        seed_roots(self.program, self.flow_out)
        worklist = self.worklist
        counters = self.counters
        bind_node = self._bind_node
        while worklist:
            input_port, mask = worklist.pop()
            counters.batches += 1
            counters.transfers += mask.bit_count()
            handler = dispatch.get(input_port)
            if handler is None:
                handler = bind_node(input_port)
            handler(mask)

    # -- propagation ----------------------------------------------------------

    def flow_out(self, output: OutputPort, pair: PointsToPair) -> None:
        """Join ``pair`` into P(output); notify consumers if it is new.
        Object-level entry, used by the seeds and the FIFO schedule."""
        self.counters.meets += 1
        if not self.solution.add(output, pair):
            return
        self.counters.pairs_added += 1
        if self._dense:
            bit = 1 << self.table.pair_id(pair)
            for consumer in output.consumers:
                self.worklist.push_mask(consumer, bit)
        else:
            for consumer in output.consumers:
                self.worklist.push(consumer, pair)

    def flow_out_mask(self, output: OutputPort, mask: int) -> None:
        """Dense flow-out: one bitset delta-join for a whole batch of
        candidate facts, counters updated in bulk, and each consumer
        notified once with the full delta."""
        if not mask:
            return
        self.counters.meets += mask.bit_count()
        new = self.solution.join_mask(output, mask)
        if not new:
            return
        self.counters.pairs_added += new.bit_count()
        worklist = self.worklist
        for consumer in output.consumers:
            worklist.push_mask(consumer, new)

    def _pairs(self, input_port: Optional[InputPort]):
        """Current pairs on the output feeding ``input_port`` (decoded
        view; a snapshot, safe to iterate while the solution grows)."""
        if input_port is None or input_port.source is None:
            return ()
        return self.solution.raw_pairs(input_port.source)

    def _mask(self, input_port: Optional[InputPort]) -> int:
        """Current fact bitset on the output feeding ``input_port``."""
        if input_port is None or input_port.source is None:
            return 0
        return self.solution.mask(input_port.source)

    # -- dense dispatch ----------------------------------------------------

    def _bind_node(self, input_port: InputPort) -> MaskHandler:
        """Bind handlers for one node, on the first fact to reach it.

        The handlers capture their node's sibling ports in closure
        cells, so the hot loop performs a single dict lookup and call
        per dirty port instead of an ``isinstance`` chain plus port
        identity comparisons per fact.  Binding lazily — per node, the
        first time any of its ports goes dirty — matters for small
        programs, where walking every node up front costs more than
        the whole fixpoint; nodes facts never reach are never bound.
        """
        dispatch = self._dispatch
        for port, role, index in input_roles(input_port.node):
            dispatch[port] = self._make_handler(input_port.node, role, index)
        handler = dispatch.get(input_port)
        if handler is None:
            raise AnalysisError(
                f"pair arrived at unexpected node {input_port.node!r}")
        return handler

    def _make_handler(self, node: Node, role: str, index: int) -> MaskHandler:
        flow_out_mask = self.flow_out_mask
        pairs_at = self._pairs
        table = self.table
        decode = table.decode_pairs
        pair_id = table.pair_id
        solution = self.solution

        base_mask = table.base_mask

        if role == "lookup.loc":
            out, store_in = node.out, node.store
            store_src = store_in.source

            def handler(mask: int) -> None:
                if store_src is None:
                    return
                store_bits = solution.mask(store_src)
                emit = 0
                for fact in decode(mask):
                    if fact.path is not EMPTY_OFFSET:
                        continue  # only the pointer itself dereferences
                    r_l = fact.referent
                    # A location (ε, r_l) can only dereference store
                    # pairs rooted at r_l.base: the table's global base
                    # index slices the store bitset down to them.
                    candidates = store_bits & base_mask(r_l.base)
                    if not candidates:
                        continue
                    r_ops = r_l.ops
                    if not r_ops:
                        for sp in decode(candidates):
                            emit |= 1 << pair_id(make_pair(
                                AccessPath(None, sp.path.ops), sp.referent))
                    else:
                        n = len(r_ops)
                        for sp in decode(candidates):
                            sp_ops = sp.path.ops
                            # tuple slice compare == is_prefix (a short
                            # slice never equals a longer r_ops)
                            if sp_ops[:n] == r_ops:
                                emit |= 1 << pair_id(make_pair(
                                    AccessPath(None, sp_ops[n:]),
                                    sp.referent))
                flow_out_mask(out, emit)
            return handler

        if role == "lookup.store":
            out, loc_in = node.out, node.loc

            def handler(mask: int) -> None:
                locs_by_base: Dict[object, List[AccessPath]] = {}
                for lp in pairs_at(loc_in):
                    if lp.path is EMPTY_OFFSET:
                        locs_by_base.setdefault(
                            lp.referent.base, []).append(lp.referent)
                if not locs_by_base:
                    return
                emit = 0
                for base, candidates in locs_by_base.items():
                    # Decode only the same-base slice of the incoming
                    # store facts; everything else cannot match.
                    relevant = mask & base_mask(base)
                    if not relevant:
                        continue
                    for fact in decode(relevant):
                        f_ops = fact.path.ops
                        for r_l in candidates:
                            n = len(r_l.ops)
                            if f_ops[:n] == r_l.ops:
                                emit |= 1 << pair_id(make_pair(
                                    AccessPath(None, f_ops[n:]),
                                    fact.referent))
                flow_out_mask(out, emit)
            return handler

        if role == "update.loc":
            ostore, store_in, value_in = node.ostore, node.store, node.value
            store_src = store_in.source

            def handler(mask: int) -> None:
                value_pairs = pairs_at(value_in)
                store_bits = (solution.mask(store_src)
                              if store_src is not None else 0)
                emit = 0
                released_all = False
                for fact in decode(mask):
                    if fact.path is not EMPTY_OFFSET:
                        continue
                    r_l = fact.referent
                    for vp in value_pairs:
                        emit |= 1 << pair_id(make_pair(r_l.append(vp.path),
                                                       vp.referent))
                    if released_all:
                        continue  # store release already maximal
                    if not r_l.strongly_updateable:
                        # A weak location kills nothing: the whole store
                        # passes through, and any further fact's release
                        # is a subset of this one.
                        emit |= store_bits
                        released_all = True
                        continue
                    # Only same-base store pairs can be killed; the
                    # survivors are one AND-NOT off the full store.  A
                    # bare location (no access operators) kills exactly
                    # the same-base slice — no decode needed.
                    same_base = store_bits & base_mask(r_l.base)
                    r_ops = r_l.ops
                    if not r_ops:
                        killed = same_base
                    elif same_base:
                        killed = 0
                        n = len(r_ops)
                        for ident, sp in table.decode_items(same_base):
                            if sp.path.ops[:n] == r_ops:
                                killed |= 1 << ident
                    else:
                        killed = 0
                    if not killed:
                        released_all = True
                    emit |= store_bits & ~killed
                flow_out_mask(ostore, emit)
            return handler

        if role == "update.store":
            ostore, loc_in = node.ostore, node.loc
            loc_src = loc_in.source
            # Classification memo: a store fact's fate (killed by every
            # location vs. surviving some) is a pure function of the
            # location set, so it is computed once per fact and reused
            # for every later batch — invalidated wholesale when the
            # location set grows (the loc-arrival handler separately
            # releases newly surviving pairs, preserving CWZ90's
            # blocked-pair discipline).
            state = {"loc_bits": -1, "locs": [], "classified": 0, "killed": 0}

            def handler(mask: int) -> None:
                loc_bits = (solution.mask(loc_src)
                            if loc_src is not None else 0)
                if loc_bits != state["loc_bits"]:
                    state["loc_bits"] = loc_bits
                    state["locs"] = [lp.referent for lp in pairs_at(loc_in)
                                     if lp.path is EMPTY_OFFSET]
                    state["classified"] = 0
                    state["killed"] = 0
                unknown = mask & ~state["classified"]
                if unknown:
                    # A fact is killed iff *every* location strongly
                    # updates it: intersect per-location strong-dom
                    # masks.  No locations yet means every fact is
                    # blocked (CWZ90's delayed release); a bare
                    # strongly-updateable location's strong-dom mask is
                    # exactly its same-base slice — pure bit ops.
                    killed = unknown
                    for r_l in state["locs"]:
                        if not killed:
                            break
                        if not r_l.strongly_updateable:
                            killed = 0
                            break
                        dominated = killed & base_mask(r_l.base)
                        r_ops = r_l.ops
                        if r_ops and dominated:
                            n = len(r_ops)
                            refined = 0
                            for ident, sp in table.decode_items(dominated):
                                if sp.path.ops[:n] == r_ops:
                                    refined |= 1 << ident
                            dominated = refined
                        killed = dominated
                    state["classified"] |= unknown
                    state["killed"] |= killed
                flow_out_mask(ostore, mask & ~state["killed"])
            return handler

        if role == "update.value":
            ostore, loc_in = node.ostore, node.loc

            def handler(mask: int) -> None:
                locs = [lp.referent for lp in pairs_at(loc_in)
                        if lp.path is EMPTY_OFFSET]
                if not locs:
                    return
                emit = 0
                for fact in decode(mask):
                    for r_l in locs:
                        emit |= 1 << pair_id(make_pair(r_l.append(fact.path),
                                                       fact.referent))
                flow_out_mask(ostore, emit)
            return handler

        if role == "call.fcn":
            def handler(mask: int) -> None:
                for fact in decode(mask):
                    self._discover_callee(node, fact)
            return handler

        if role == "call.store":
            callees = self.callgraph.callees

            def handler(mask: int) -> None:
                for callee in callees(node):
                    flow_out_mask(callee.store_formal, mask)
            return handler

        if role == "call.arg":
            callees = self.callgraph.callees

            def handler(mask: int) -> None:
                for callee in callees(node):
                    formal = callee.corresponding_formal(index)
                    if formal is not None:
                        flow_out_mask(formal, mask)
            return handler

        if role == "return.value":
            graph, callers = node.graph, self.callgraph.callers

            def handler(mask: int) -> None:
                for call in callers(graph):
                    flow_out_mask(call.out, mask)
            return handler

        if role == "return.store":
            graph, callers = node.graph, self.callgraph.callers

            def handler(mask: int) -> None:
                for call in callers(graph):
                    flow_out_mask(call.ostore, mask)
            return handler

        if role == "merge.pred":
            return _consume  # predicate is ignored (Figure 1)

        if role == "merge.branch":
            out = node.out

            def handler(mask: int) -> None:
                flow_out_mask(out, mask)
            return handler

        if role == "primop.operand":
            return self._make_primop_handler(node, index)

        def handler(mask: int) -> None:
            raise AnalysisError(f"pair arrived at unexpected node {node!r}")
        return handler

    def _make_primop_handler(self, node: PrimopNode, index: int
                             ) -> MaskHandler:
        flow_out_mask = self.flow_out_mask
        table = self.table
        decode = table.decode_pairs
        pair_id = table.pair_id
        semantics = node.semantics
        out = node.out

        if semantics is PrimopSemantics.OPAQUE:
            return _consume

        if semantics is PrimopSemantics.COPY:
            if node.copy_operand is not None and index != node.copy_operand:
                return _consume  # consumed, but pairs do not flow (lib calls)

            def handler(mask: int) -> None:
                flow_out_mask(out, mask)
            return handler

        if semantics is PrimopSemantics.EXTRACT:
            field_op = node.field_op

            def handler(mask: int) -> None:
                emit = 0
                for fact in decode(mask):
                    path = fact.path
                    if path.base is None and path.ops \
                            and path.ops[0] is field_op:
                        emit |= 1 << pair_id(make_pair(
                            AccessPath(None, path.ops[1:]), fact.referent))
                flow_out_mask(out, emit)
            return handler

        if semantics is PrimopSemantics.FIELD:
            field_op = node.field_op

            def handler(mask: int) -> None:
                emit = 0
                for fact in decode(mask):
                    if fact.path is EMPTY_OFFSET:
                        emit |= 1 << pair_id(
                            direct(fact.referent.extend(field_op)))
                flow_out_mask(out, emit)
            return handler

        if semantics is PrimopSemantics.INDEX:
            def handler(mask: int) -> None:
                emit = 0
                for fact in decode(mask):
                    if fact.path is EMPTY_OFFSET:
                        emit |= 1 << pair_id(
                            direct(fact.referent.extend(INDEX)))
                flow_out_mask(out, emit)
            return handler

        def handler(mask: int) -> None:  # pragma: no cover
            raise AnalysisError(f"unknown primop semantics {semantics!r}")
        return handler

    # -- transfer functions (flow-in, Figure 1; FIFO schedule) ----------------

    def flow_in(self, input_port: InputPort, fact: PointsToPair) -> None:
        node = input_port.node
        if isinstance(node, LookupNode):
            self._flow_lookup(node, input_port, fact)
        elif isinstance(node, UpdateNode):
            self._flow_update(node, input_port, fact)
        elif isinstance(node, CallNode):
            self._flow_call(node, input_port, fact)
        elif isinstance(node, ReturnNode):
            self._flow_return(node, input_port, fact)
        elif isinstance(node, MergeNode):
            self._flow_merge(node, input_port, fact)
        elif isinstance(node, PrimopNode):
            self._flow_primop(node, input_port, fact)
        else:
            raise AnalysisError(f"pair arrived at unexpected node {node!r}")

    def _flow_lookup(self, node: LookupNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        """A new location dereferences the store / a new store pair is
        dereferenced by all known locations."""
        if input_port is node.loc:
            if fact.path is not EMPTY_OFFSET:
                return  # only the pointer value itself can be dereferenced
            r_l = fact.referent
            for sp in list(self._pairs(node.store)):
                if dom(r_l, sp.path):
                    self.flow_out(node.out,
                                  make_pair(sp.path.subtract(r_l), sp.referent))
        elif input_port is node.store:
            for lp in list(self._pairs(node.loc)):
                if lp.path is not EMPTY_OFFSET:
                    continue
                if dom(lp.referent, fact.path):
                    self.flow_out(node.out,
                                  make_pair(fact.path.subtract(lp.referent),
                                            fact.referent))
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown lookup input {input_port!r}")

    def _flow_update(self, node: UpdateNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        """New locations write all values and release non-killed store
        pairs; new store pairs propagate if at least one location does
        not strongly update them; new values are written everywhere."""
        if input_port is node.loc:
            if fact.path is not EMPTY_OFFSET:
                return
            r_l = fact.referent
            for vp in list(self._pairs(node.value)):
                self.flow_out(node.ostore,
                              make_pair(r_l.append(vp.path), vp.referent))
            for sp in list(self._pairs(node.store)):
                if not strong_dom(r_l, sp.path):
                    self.flow_out(node.ostore, sp)
        elif input_port is node.store:
            for lp in list(self._pairs(node.loc)):
                if lp.path is not EMPTY_OFFSET:
                    continue
                if not strong_dom(lp.referent, fact.path):
                    self.flow_out(node.ostore, fact)
                    break  # one non-killing location suffices
        elif input_port is node.value:
            for lp in list(self._pairs(node.loc)):
                if lp.path is not EMPTY_OFFSET:
                    continue
                self.flow_out(node.ostore,
                              make_pair(lp.referent.append(fact.path),
                                        fact.referent))
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown update input {input_port!r}")

    def _flow_call(self, node: CallNode, input_port: InputPort,
                   fact: PointsToPair) -> None:
        if input_port is node.fcn:
            self._discover_callee(node, fact)
            return
        if input_port is node.store:
            for callee in self.callgraph.callees(node):
                self.flow_out(callee.store_formal, fact)
            return
        for index, arg in enumerate(node.args):
            if input_port is arg:
                for callee in self.callgraph.callees(node):
                    formal = callee.corresponding_formal(index)
                    if formal is not None:
                        self.flow_out(formal, fact)
                return
        raise AnalysisError(f"unknown call input {input_port!r}")

    def _discover_callee(self, node: CallNode, fact: PointsToPair) -> None:
        """A new function value updates the call graph and performs the
        appropriate repropagation of already-known actuals and returns.

        Snapshots are load-bearing under every schedule: in a
        self-recursive procedure an actual's source can be the callee's
        own formal output, so the iterated set is the one being grown.
        The dense path snapshots bitsets (immutable ints); the FIFO
        path copies the decoded views via ``list()``.
        """
        if fact.path is not EMPTY_OFFSET:
            return
        callee = resolve_function_value(self.program, fact.referent)
        if callee is None:
            self.callgraph.unresolved.add(node)
            return
        if not self.callgraph.add_edge(node, callee):
            return
        if self._dense:
            flow_out_mask = self.flow_out_mask
            for index, arg in enumerate(node.args):
                formal = callee.corresponding_formal(index)
                if formal is not None:
                    flow_out_mask(formal, self._mask(arg))
            flow_out_mask(callee.store_formal, self._mask(node.store))
            ret = callee.return_node
            if ret is not None:
                if ret.value is not None:
                    flow_out_mask(node.out, self._mask(ret.value))
                flow_out_mask(node.ostore, self._mask(ret.store))
            return
        for index, arg in enumerate(node.args):
            formal = callee.corresponding_formal(index)
            if formal is None:
                continue
            for pair in list(self._pairs(arg)):
                self.flow_out(formal, pair)
        for pair in list(self._pairs(node.store)):
            self.flow_out(callee.store_formal, pair)
        ret = callee.return_node
        if ret is not None:
            if ret.value is not None:
                for pair in list(self._pairs(ret.value)):
                    self.flow_out(node.out, pair)
            for pair in list(self._pairs(ret.store)):
                self.flow_out(node.ostore, pair)

    def _flow_return(self, node: ReturnNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        graph = node.graph
        if input_port is node.value:
            for call in self.callgraph.callers(graph):
                self.flow_out(call.out, fact)
        elif input_port is node.store:
            for call in self.callgraph.callers(graph):
                self.flow_out(call.ostore, fact)
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown return input {input_port!r}")

    def _flow_merge(self, node: MergeNode, input_port: InputPort,
                    fact: PointsToPair) -> None:
        if input_port is node.pred:
            return  # predicate is ignored (Figure 1)
        self.flow_out(node.out, fact)

    def _flow_primop(self, node: PrimopNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        semantics = node.semantics
        if semantics is PrimopSemantics.OPAQUE:
            return
        if semantics is PrimopSemantics.COPY:
            if node.copy_operand is not None and \
                    input_port is not node.operands[node.copy_operand]:
                return  # consumed, but pairs do not flow (lib calls)
            self.flow_out(node.out, fact)
            return
        if semantics is PrimopSemantics.EXTRACT:
            path = fact.path
            if path.base is None and path.ops and path.ops[0] is node.field_op:
                self.flow_out(node.out,
                              make_pair(AccessPath(None, path.ops[1:]),
                                        fact.referent))
            return
        if fact.path is not EMPTY_OFFSET:
            return
        if semantics is PrimopSemantics.FIELD:
            self.flow_out(node.out,
                          direct(fact.referent.extend(node.field_op)))
        elif semantics is PrimopSemantics.INDEX:
            self.flow_out(node.out, direct(fact.referent.extend(INDEX)))
        else:  # pragma: no cover - future semantics
            raise AnalysisError(f"unknown primop semantics {semantics!r}")


def _consume(mask: int) -> None:
    """Handler for ports that consume facts without producing pairs."""


def analyze_insensitive(program: Program,
                        schedule: str = "batched") -> AnalysisResult:
    """Run the context-insensitive analysis (paper Section 3)."""
    return InsensitiveAnalysis(program, schedule=schedule).run()
