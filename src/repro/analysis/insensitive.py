"""Context-insensitive points-to analysis — the paper's Figure 1.

The algorithm is "essentially the simple algorithm of [CWZ90, Sections
3 and 4.2]": maintain a set of points-to pairs on every node output,
grown incrementally by a worklist.  Whenever a pair is added to a set,
all consumers of that output are notified and make the appropriate
modifications to the sets on their own outputs.  Calls and returns are
handled like jumps — all information at a call's actuals propagates to
all called procedures, and all information at a procedure's returns
propagates to all of its callers.

Strong updates follow the dual-worklist discipline of CWZ90: store
pairs are delayed until at least one pair has arrived on an update's
location input, and blocked pairs are re-examined whenever a further
location pair arrives (the location-arrival case re-scans the full
store set).  Indirect calls repropagate old information to newly
discovered callees.

Termination: outputs and pairs are finite and sets only grow, giving
the paper's O(n³) worst case (O(n²) average when each pointer has a
small constant number of referents).

Three schedules drive the same transfer functions (the paper notes
convergence is independent of the scheduling strategy):

* ``"batched"`` (default) — the **dense engine**: facts are bitsets
  over per-program ids (:class:`~repro.memory.facttable.FactTable`), a
  port-keyed worklist drains each dirty port's whole pending bitset
  through one pre-bound handler, and the pure-forwarding transfer
  functions (merges, copies, call/return plumbing, store pass-through)
  reduce to big-int OR / AND-NOT with no per-fact Python loop;
* ``"scc"`` — the same dense engine, but ports pop in topological
  order of the port dependency graph's SCC condensation (round-robin
  within a component; see :mod:`repro.analysis.scheduling`);
* ``"fifo"`` — the original one-fact-per-pop queue over interned pair
  objects, kept as the reference implementation for the
  schedule-equivalence gate.

The dense engine's transfer functions run on the **translation
kernels** of :class:`~repro.memory.facttable.FactTable`: each
lookup/update/primop image is a pure function of interned ids,
classified once per table and served from exact-mask memos afterwards,
so warm solves are dict probes plus word-packed joins with no pair
objects materialized.  Handlers take ``(engine, mask)`` and capture
only run-independent state (ports, the table), so the bound dispatch
is cached per program and rebinding costs nothing on repeat runs.

``--parallel-scc`` adds intra-program parallelism on top of the
``scc`` schedule: the condensation's topological *levels* (see
:func:`repro.analysis.scheduling.port_scc_levels`) bound which SCCs
can be in flight together, and each level's dirty components are
sharded across worker threads.  Joins (and every handler that reads a
sibling input or the call graph) serialize on one reentrant lock, so
no update is ever lost and CWZ90's last-arrival discipline for
(location, store) combinations is preserved — which is exactly why
the solution, and hence the digest gate, is schedule- and
interleaving-independent: the fixpoint of a monotone system with
no lost updates does not depend on join order.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import AnalysisError
from ..memory.access import EMPTY_OFFSET, INDEX, AccessPath
from ..memory.facttable import FactTable
from ..memory.packedbits import PackedBits
from ..memory.pairs import PointsToPair, direct, pair as make_pair
from ..memory.relations import dom, strong_dom
from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import (
    CallNode,
    InputPort,
    LookupNode,
    MergeNode,
    Node,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    ReturnNode,
    UpdateNode,
    input_roles,
)
from ..cpus import available_cpus
from .common import (
    AnalysisResult,
    CallGraph,
    Counters,
    LevelMaskWorklist,
    MaskWorklist,
    PointsToSolution,
    SCCMaskWorklist,
    Worklist,
    check_schedule,
    resolve_function_value,
    seed_addresses,
    seed_roots,
)
from .scheduling import port_scc_levels, port_scc_order

#: A dense batch handler consumes one port's pending fact bitset on
#: behalf of an engine: ``handler(engine, mask)``.  Handlers close
#: over run-independent state only (ports, the fact table), so one
#: bound dispatch table serves every run over a program.
MaskHandler = Callable[["InsensitiveAnalysis", int], None]


class _DispatchCache(dict):
    """Per-program ``InputPort → MaskHandler`` cache, living in
    ``Program.extras``.  Handlers are closures, so the cache pickles
    as empty and rebinds lazily after a cache round-trip."""

    EXTRAS_KEY = "ci_dispatch"

    def __reduce__(self):
        return (_DispatchCache, ())


#: Per-program dense seed plan: ``(entries, extra_meets)`` where
#: ``entries`` is one ``(output, mask)`` per seeded output (all of its
#: seed pairs merged into one bitset) and ``extra_meets`` restores the
#: per-seed ``meets`` count when duplicate seeds collapsed into one
#: bit.  Masks are pure functions of the program's interned fact ids,
#: which the shared table keeps stable across runs and pickling.
_SEED_PLAN_KEY = "ci_seed_plan"


class InsensitiveAnalysis:
    """One run of the context-insensitive analysis over a program."""

    def __init__(self, program: Program, schedule: str = "batched",
                 parallel_scc: bool = False,
                 jobs: Optional[int] = None) -> None:
        self.program = program
        if parallel_scc:
            if schedule == "fifo":
                raise AnalysisError(
                    "--parallel-scc requires a dense schedule; the fifo "
                    "reference engine is single-fact and serial")
            schedule = "scc"  # batched upgrades: parallelism needs levels
        self.schedule = check_schedule(schedule)
        self.table = FactTable.for_program(program)
        self.solution = PointsToSolution(self.table)
        self.callgraph = CallGraph()
        self.counters = Counters()
        dispatch = program.extras.get(_DispatchCache.EXTRAS_KEY)
        if not isinstance(dispatch, _DispatchCache):
            dispatch = _DispatchCache()
            program.extras[_DispatchCache.EXTRAS_KEY] = dispatch
        self._dispatch: Dict[InputPort, MaskHandler] = dispatch
        self._dense = self.schedule != "fifo"
        self._scc_count: Optional[int] = None
        self._scc_levels: Optional[int] = None
        self._parallel = bool(parallel_scc)
        # available_cpus() costs a sched_getaffinity syscall — only
        # pay it when the run actually shards work across threads.
        self._jobs = (max(1, jobs) if jobs
                      else available_cpus() if parallel_scc else 1)
        self._max_parallelism = 1
        #: Per-run handler state: location-list snapshots keyed by the
        #: feeding output, and update-store classification memos keyed
        #: by node (see the update.store handler).
        self._loc_cache: Dict[OutputPort, Tuple[int, List[AccessPath]]] = {}
        self._node_state: Dict[Node, dict] = {}
        #: Reentrant join lock, installed only by the parallel driver;
        #: None keeps the serial hot path branch-cheap and lock-free.
        self._lock: Optional[threading.RLock] = None
        if self._parallel:
            info, self._scc_levels, self._scc_count = \
                port_scc_levels(program)
            self.worklist: object = LevelMaskWorklist(info)
        elif self.schedule == "scc":
            order, self._scc_count = port_scc_order(program)
            _, self._scc_levels, _ = port_scc_levels(program)
            self.worklist = SCCMaskWorklist(order)
        elif self.schedule == "batched":
            self.worklist = MaskWorklist()
        else:
            self.worklist = Worklist()

    # -- driver ------------------------------------------------------------

    def run(self) -> AnalysisResult:
        decode_calls_before = self.table.decode_calls
        kernel_calls_before = self.table.kernel_calls
        started = time.perf_counter()
        if self._parallel:
            self._run_parallel()
        elif self._dense:
            self._run_dense()
        else:
            self._run_fifo()
        elapsed = time.perf_counter() - started
        spanned_words, packed_words = self.solution.storage_stats()
        extras = {
            "phases": {"solve": elapsed},
            "dense": {
                "fact_ids": self.table.pair_count(),
                "bitset_words": spanned_words,
                "packed_words": packed_words,
                "kernel_calls": self.table.kernel_calls
                - kernel_calls_before,
                "decode_calls": self.table.decode_calls
                - decode_calls_before,
            },
        }
        if self._scc_count is not None:
            extras["dense"]["scc_count"] = self._scc_count
            extras["dense"]["scc_levels"] = self._scc_levels
            extras["dense"]["scc_parallelism"] = self._max_parallelism
        return AnalysisResult(
            program=self.program,
            solution=self.solution,
            callgraph=self.callgraph,
            counters=self.counters,
            elapsed_seconds=elapsed,
            flavor="insensitive",
            extras=extras,
        )

    def _run_fifo(self) -> None:
        seed_addresses(self.program, self.flow_out)
        seed_roots(self.program, self.flow_out)
        worklist = self.worklist
        counters = self.counters
        while worklist:
            input_port, fact = worklist.pop()
            counters.transfers += 1
            counters.batches += 1
            self.flow_in(input_port, fact)

    def _seed_dense(self) -> None:
        """Replay the seeds as per-output bitset joins.

        The merged plan is counter-exact: ``flow_out_mask`` counts one
        meet per seed bit (plus ``extra_meets`` for duplicate seeds of
        one pair), and the join delta counts ``pairs_added`` the same
        whether pairs arrive one at a time or batched.
        """
        plan = self.program.extras.get(_SEED_PLAN_KEY)
        if plan is None:
            pair_id = self.table.pair_id
            masks: Dict[OutputPort, int] = {}
            seeds = 0

            def record(output: OutputPort, pair: PointsToPair) -> None:
                nonlocal seeds
                seeds += 1
                masks[output] = masks.get(output, 0) | (1 << pair_id(pair))

            seed_addresses(self.program, record)
            seed_roots(self.program, record)
            entries = list(masks.items())
            extra = seeds - sum(mask.bit_count() for _, mask in entries)
            plan = (entries, extra)
            self.program.extras[_SEED_PLAN_KEY] = plan
        entries, extra = plan
        flow_out_mask = self.flow_out_mask
        for output, mask in entries:
            flow_out_mask(output, mask)
        self.counters.meets += extra

    def _run_dense(self) -> None:
        dispatch = self._dispatch
        self._seed_dense()
        worklist = self.worklist
        counters = self.counters
        bind_node = self._bind_node
        pop = worklist.pop
        pending = worklist.pending
        batches = 0
        transfers = 0
        try:
            while pending:
                input_port, mask = pop()
                batches += 1
                transfers += mask.bit_count()
                handler = dispatch.get(input_port)
                if handler is None:
                    handler = bind_node(input_port)
                handler(self, mask)
        finally:
            counters.batches += batches
            counters.transfers += transfers

    def _run_parallel(self) -> None:
        """Level-synchronous parallel drain (``--parallel-scc``).

        The main thread pops one whole topological level of dirty
        ports, grouped into per-SCC shards, and hands the shards to
        worker threads; it then barriers on the level before popping
        the next (re-dirtied ports — same level included — surface on
        a later pop).  Workers never pop: every push happens inside
        :meth:`flow_out_mask` under the engine lock, so no update is
        lost, and handlers that read sibling inputs or the call graph
        run fully under the same lock (their ``locked`` tag), which
        preserves the last-arrival discipline that makes the fixpoint
        interleaving-independent."""
        self._lock = threading.RLock()
        self.table.lock = self._lock
        # Shadow the serial flow-out with the locked variant for the
        # whole drain (handlers resolve it per call, so the instance
        # attribute wins over the class method).
        self.flow_out_mask = self._flow_out_mask_locked
        self._seed_dense()
        worklist = self.worklist
        counters = self.counters
        jobs = self._jobs
        pool: Optional[ThreadPoolExecutor] = None
        try:
            while True:
                shards = worklist.pop_level()
                if shards is None:
                    break
                for shard in shards:
                    counters.batches += len(shard)
                    for _, mask in shard:
                        counters.transfers += mask.bit_count()
                if jobs > 1 and len(shards) > 1:
                    if pool is None:
                        pool = ThreadPoolExecutor(
                            max_workers=jobs,
                            thread_name_prefix="repro-scc")
                    width = min(len(shards), jobs)
                    if width > self._max_parallelism:
                        self._max_parallelism = width
                    futures = [pool.submit(self._run_shard, shard)
                               for shard in shards[1:]]
                    self._run_shard(shards[0])
                    for future in futures:
                        future.result()
                else:
                    for shard in shards:
                        self._run_shard(shard)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
            self.table.lock = None
            self._lock = None
            del self.flow_out_mask  # restore the serial class method

    def _run_shard(self, shard) -> None:
        """Drain one SCC's dirty ports (worker-thread body)."""
        dispatch = self._dispatch
        bind_node = self._bind_node
        lock = self._lock
        for input_port, mask in shard:
            handler = dispatch.get(input_port)
            if handler is None:
                handler = bind_node(input_port)
            if lock is not None and getattr(handler, "locked", False):
                with lock:
                    handler(self, mask)
            else:
                handler(self, mask)

    # -- propagation ----------------------------------------------------------

    def flow_out(self, output: OutputPort, pair: PointsToPair) -> None:
        """Join ``pair`` into P(output); notify consumers if it is new.
        Object-level entry, used by the seeds and the FIFO schedule."""
        self.counters.meets += 1
        if not self.solution.add(output, pair):
            return
        self.counters.pairs_added += 1
        if self._dense:
            bit = 1 << self.table.pair_id(pair)
            for consumer in output.consumers:
                self.worklist.push_mask(consumer, bit)
        else:
            for consumer in output.consumers:
                self.worklist.push(consumer, pair)

    def flow_out_mask(self, output: OutputPort, mask: int) -> None:
        """Dense flow-out: one bitset delta-join for a whole batch of
        candidate facts, counters updated in bulk, and each consumer
        notified once with the full delta.  This is the serial body —
        the innermost call of every warm solve, so the join is inlined
        (:meth:`PointsToSolution.join_mask` unwrapped) and there is no
        lock bookkeeping.  The parallel driver shadows it with
        :meth:`_flow_out_mask_locked` for the run's duration."""
        if not mask:
            return
        counters = self.counters
        counters.meets += mask.bit_count()
        packed = self.solution._packed.get(output)
        if packed is None:
            self.solution._packed[output] = PackedBits(mask)
            new = mask
        else:
            new = packed.or_mask(mask)
            if not new:
                return
        counters.pairs_added += new.bit_count()
        push_mask = self.worklist.push_mask
        for consumer in output.consumers:
            push_mask(consumer, new)

    def _flow_out_mask_locked(self, output: OutputPort,
                              mask: int) -> None:
        """:meth:`flow_out_mask` under the engine lock (reentrant —
        locked handlers already hold it), installed as the instance's
        ``flow_out_mask`` while ``--parallel-scc`` drains: joins never
        lose updates and the delta each consumer sees is exact."""
        if not mask:
            return
        lock = self._lock
        lock.acquire()
        try:
            counters = self.counters
            counters.meets += mask.bit_count()
            new = self.solution.join_mask(output, mask)
            if not new:
                return
            counters.pairs_added += new.bit_count()
            push_mask = self.worklist.push_mask
            for consumer in output.consumers:
                push_mask(consumer, new)
        finally:
            lock.release()

    def _locs_at(self, source: Optional[OutputPort]) -> List[AccessPath]:
        """The location set denoted by the output feeding a loc input:
        referents of its direct pairs, snapshotted per bitset value so
        repeat handler invocations against an unchanged input are one
        dict probe (no decode, no filtering)."""
        if source is None:
            return []
        bits = self.solution.mask(source)
        if not bits:
            return []
        cached = self._loc_cache.get(source)
        if cached is not None and cached[0] == bits:
            return cached[1]
        locs = self.table.direct_referents(bits)
        self._loc_cache[source] = (bits, locs)
        return locs

    def _pairs(self, input_port: Optional[InputPort]):
        """Current pairs on the output feeding ``input_port`` (decoded
        view; a snapshot, safe to iterate while the solution grows)."""
        if input_port is None or input_port.source is None:
            return ()
        return self.solution.raw_pairs(input_port.source)

    def _mask(self, input_port: Optional[InputPort]) -> int:
        """Current fact bitset on the output feeding ``input_port``."""
        if input_port is None or input_port.source is None:
            return 0
        return self.solution.mask(input_port.source)

    # -- dense dispatch ----------------------------------------------------

    def _bind_node(self, input_port: InputPort) -> MaskHandler:
        """Bind handlers for one node, on the first fact to reach it.

        The handlers capture their node's sibling ports and the fact
        table in closure cells — nothing run-specific — so the bound
        dispatch lives in ``Program.extras`` and repeat runs over the
        same program (benchmark repeats, the CS pass behind CI, warm
        fuzz legs) skip rebinding entirely.  Binding lazily — per
        node, the first time any of its ports goes dirty — matters for
        small programs, where walking every node up front costs more
        than the whole fixpoint; nodes facts never reach are never
        bound.
        """
        dispatch = self._dispatch
        node = input_port.node
        table = self.table
        for port, role, index in input_roles(node):
            dispatch[port] = _make_handler(node, role, index, table)
        handler = dispatch.get(input_port)
        if handler is None:
            raise AnalysisError(
                f"pair arrived at unexpected node {input_port.node!r}")
        return handler

    # -- transfer functions (flow-in, Figure 1; FIFO schedule) ----------------

    def flow_in(self, input_port: InputPort, fact: PointsToPair) -> None:
        node = input_port.node
        if isinstance(node, LookupNode):
            self._flow_lookup(node, input_port, fact)
        elif isinstance(node, UpdateNode):
            self._flow_update(node, input_port, fact)
        elif isinstance(node, CallNode):
            self._flow_call(node, input_port, fact)
        elif isinstance(node, ReturnNode):
            self._flow_return(node, input_port, fact)
        elif isinstance(node, MergeNode):
            self._flow_merge(node, input_port, fact)
        elif isinstance(node, PrimopNode):
            self._flow_primop(node, input_port, fact)
        else:
            raise AnalysisError(f"pair arrived at unexpected node {node!r}")

    def _flow_lookup(self, node: LookupNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        """A new location dereferences the store / a new store pair is
        dereferenced by all known locations."""
        if input_port is node.loc:
            if fact.path is not EMPTY_OFFSET:
                return  # only the pointer value itself can be dereferenced
            r_l = fact.referent
            for sp in list(self._pairs(node.store)):
                if dom(r_l, sp.path):
                    self.flow_out(node.out,
                                  make_pair(sp.path.subtract(r_l), sp.referent))
        elif input_port is node.store:
            for lp in list(self._pairs(node.loc)):
                if lp.path is not EMPTY_OFFSET:
                    continue
                if dom(lp.referent, fact.path):
                    self.flow_out(node.out,
                                  make_pair(fact.path.subtract(lp.referent),
                                            fact.referent))
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown lookup input {input_port!r}")

    def _flow_update(self, node: UpdateNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        """New locations write all values and release non-killed store
        pairs; new store pairs propagate if at least one location does
        not strongly update them; new values are written everywhere."""
        if input_port is node.loc:
            if fact.path is not EMPTY_OFFSET:
                return
            r_l = fact.referent
            for vp in list(self._pairs(node.value)):
                self.flow_out(node.ostore,
                              make_pair(r_l.append(vp.path), vp.referent))
            for sp in list(self._pairs(node.store)):
                if not strong_dom(r_l, sp.path):
                    self.flow_out(node.ostore, sp)
        elif input_port is node.store:
            for lp in list(self._pairs(node.loc)):
                if lp.path is not EMPTY_OFFSET:
                    continue
                if not strong_dom(lp.referent, fact.path):
                    self.flow_out(node.ostore, fact)
                    break  # one non-killing location suffices
        elif input_port is node.value:
            for lp in list(self._pairs(node.loc)):
                if lp.path is not EMPTY_OFFSET:
                    continue
                self.flow_out(node.ostore,
                              make_pair(lp.referent.append(fact.path),
                                        fact.referent))
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown update input {input_port!r}")

    def _flow_call(self, node: CallNode, input_port: InputPort,
                   fact: PointsToPair) -> None:
        if input_port is node.fcn:
            self._discover_callee(node, fact)
            return
        if input_port is node.store:
            for callee in self.callgraph.callees(node):
                self.flow_out(callee.store_formal, fact)
            return
        for index, arg in enumerate(node.args):
            if input_port is arg:
                for callee in self.callgraph.callees(node):
                    formal = callee.corresponding_formal(index)
                    if formal is not None:
                        self.flow_out(formal, fact)
                return
        raise AnalysisError(f"unknown call input {input_port!r}")

    def _discover_callee(self, node: CallNode, fact: PointsToPair) -> None:
        """A new function value updates the call graph and performs the
        appropriate repropagation of already-known actuals and returns.

        Snapshots are load-bearing under every schedule: in a
        self-recursive procedure an actual's source can be the callee's
        own formal output, so the iterated set is the one being grown.
        The dense path snapshots bitsets (immutable ints); the FIFO
        path copies the decoded views via ``list()``.
        """
        if fact.path is not EMPTY_OFFSET:
            return
        callee = resolve_function_value(self.program, fact.referent)
        if callee is None:
            self.callgraph.unresolved.add(node)
            return
        if not self.callgraph.add_edge(node, callee):
            return
        if self._dense:
            flow_out_mask = self.flow_out_mask
            for index, arg in enumerate(node.args):
                formal = callee.corresponding_formal(index)
                if formal is not None:
                    flow_out_mask(formal, self._mask(arg))
            flow_out_mask(callee.store_formal, self._mask(node.store))
            ret = callee.return_node
            if ret is not None:
                if ret.value is not None:
                    flow_out_mask(node.out, self._mask(ret.value))
                flow_out_mask(node.ostore, self._mask(ret.store))
            return
        for index, arg in enumerate(node.args):
            formal = callee.corresponding_formal(index)
            if formal is None:
                continue
            for pair in list(self._pairs(arg)):
                self.flow_out(formal, pair)
        for pair in list(self._pairs(node.store)):
            self.flow_out(callee.store_formal, pair)
        ret = callee.return_node
        if ret is not None:
            if ret.value is not None:
                for pair in list(self._pairs(ret.value)):
                    self.flow_out(node.out, pair)
            for pair in list(self._pairs(ret.store)):
                self.flow_out(node.ostore, pair)

    def _flow_return(self, node: ReturnNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        graph = node.graph
        if input_port is node.value:
            for call in self.callgraph.callers(graph):
                self.flow_out(call.out, fact)
        elif input_port is node.store:
            for call in self.callgraph.callers(graph):
                self.flow_out(call.ostore, fact)
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown return input {input_port!r}")

    def _flow_merge(self, node: MergeNode, input_port: InputPort,
                    fact: PointsToPair) -> None:
        if input_port is node.pred:
            return  # predicate is ignored (Figure 1)
        self.flow_out(node.out, fact)

    def _flow_primop(self, node: PrimopNode, input_port: InputPort,
                     fact: PointsToPair) -> None:
        semantics = node.semantics
        if semantics is PrimopSemantics.OPAQUE:
            return
        if semantics is PrimopSemantics.COPY:
            if node.copy_operand is not None and \
                    input_port is not node.operands[node.copy_operand]:
                return  # consumed, but pairs do not flow (lib calls)
            self.flow_out(node.out, fact)
            return
        if semantics is PrimopSemantics.EXTRACT:
            path = fact.path
            if path.base is None and path.ops and path.ops[0] is node.field_op:
                self.flow_out(node.out,
                              make_pair(AccessPath(None, path.ops[1:]),
                                        fact.referent))
            return
        if fact.path is not EMPTY_OFFSET:
            return
        if semantics is PrimopSemantics.FIELD:
            self.flow_out(node.out,
                          direct(fact.referent.extend(node.field_op)))
        elif semantics is PrimopSemantics.INDEX:
            self.flow_out(node.out, direct(fact.referent.extend(INDEX)))
        else:  # pragma: no cover - future semantics
            raise AnalysisError(f"unknown primop semantics {semantics!r}")


def _consume(eng: "InsensitiveAnalysis", mask: int) -> None:
    """Handler for ports that consume facts without producing pairs."""


def _make_handler(node: Node, role: str, index: int,
                  table: FactTable) -> MaskHandler:
    """Build the dense batch handler for one ``(node, role)`` port.

    Handlers run on the table's translation kernels: every per-fact
    image (lookup subtract, update write/kill, primop peel/extend) is
    classified once per table and served from exact-mask memos, so
    handlers perform dict probes and big-int/word ops — no pair
    objects are decoded on the hot path.

    Handlers that read *sibling* state (the other input of a lookup /
    update, or the call graph) carry ``locked = True``: under
    ``--parallel-scc`` they execute inside the engine lock, preserving
    the serial engines' last-arrival discipline — whichever of a
    (location, store) combination arrives second observes the other
    side whole.  Pure-forwarding and single-input handlers stay
    lock-free (their only mutation, :meth:`flow_out_mask`, locks
    itself).
    """
    base_mask = table._base_masks.get
    direct_referents = table.direct_referents
    translate_lookup = table.translate_lookup
    translate_writes = table.translate_writes
    kill_mask = table.kill_mask

    lookup_memos: Dict[AccessPath, Dict[int, int]] = {}
    lookup_memo = table.lookup_memo

    if role == "lookup.loc":
        out = node.out
        store_src = node.store.source

        def handler(eng, mask: int) -> None:
            if store_src is None:
                return
            store_bits = eng.solution.mask(store_src)
            emit = 0
            # A location (ε, r_l) can only dereference store pairs
            # rooted at r_l.base: the table's global base index slices
            # the store bitset down to them before the kernel runs.
            for r_l in direct_referents(mask):
                candidates = store_bits & base_mask(r_l.base, 0)
                if candidates:
                    memo = lookup_memos.get(r_l)
                    if memo is None:
                        memo = lookup_memos[r_l] = lookup_memo(r_l)
                    part = memo.get(candidates)
                    if part is None:
                        part = translate_lookup(r_l, candidates)
                    emit |= part
            eng.flow_out_mask(out, emit)
        handler.locked = True
        return handler

    if role == "lookup.store":
        out = node.out
        loc_src = node.loc.source

        def handler(eng, mask: int) -> None:
            locs = eng._locs_at(loc_src)
            if not locs:
                return
            emit = 0
            for r_l in locs:
                relevant = mask & base_mask(r_l.base, 0)
                if relevant:
                    memo = lookup_memos.get(r_l)
                    if memo is None:
                        memo = lookup_memos[r_l] = lookup_memo(r_l)
                    part = memo.get(relevant)
                    if part is None:
                        part = translate_lookup(r_l, relevant)
                    emit |= part
            eng.flow_out_mask(out, emit)
        handler.locked = True
        return handler

    write_memos: Dict[AccessPath, Dict[int, int]] = {}
    write_memo = table.write_memo
    kill_memos: Dict[AccessPath, Dict[int, int]] = {}
    kill_memo = table.kill_memo
    # strongly_updateable is a pure property of the (interned) path,
    # recomputed per query; one probe per location per batch adds up.
    strong_memo: Dict[AccessPath, bool] = {}

    if role == "update.loc":
        ostore = node.ostore
        store_src = node.store.source
        value_src = node.value.source

        def handler(eng, mask: int) -> None:
            solution = eng.solution
            value_bits = (solution.mask(value_src)
                          if value_src is not None else 0)
            store_bits = (solution.mask(store_src)
                          if store_src is not None else 0)
            emit = 0
            released_all = False
            for r_l in direct_referents(mask):
                if value_bits:
                    memo = write_memos.get(r_l)
                    if memo is None:
                        memo = write_memos[r_l] = write_memo(r_l)
                    part = memo.get(value_bits)
                    if part is None:
                        part = translate_writes(r_l, value_bits)
                    emit |= part
                if released_all:
                    continue  # store release already maximal
                strong = strong_memo.get(r_l)
                if strong is None:
                    strong = strong_memo[r_l] = r_l.strongly_updateable
                if not strong:
                    # A weak location kills nothing: the whole store
                    # passes through, and any further fact's release
                    # is a subset of this one.
                    emit |= store_bits
                    released_all = True
                    continue
                # Only same-base store pairs can be killed; the
                # survivors are one AND-NOT off the full store.  A
                # bare location (no access operators) kills exactly
                # the same-base slice — no kernel query needed.
                same_base = store_bits & base_mask(r_l.base, 0)
                r_ops = r_l.ops
                if not r_ops:
                    killed = same_base
                elif same_base:
                    memo = kill_memos.get(r_l)
                    if memo is None:
                        memo = kill_memos[r_l] = kill_memo(r_l)
                    killed = memo.get(same_base)
                    if killed is None:
                        killed = kill_mask(r_l, same_base)
                else:
                    killed = 0
                if not killed:
                    released_all = True
                emit |= store_bits & ~killed
            eng.flow_out_mask(ostore, emit)
        handler.locked = True
        return handler

    if role == "update.store":
        ostore = node.ostore
        loc_src = node.loc.source

        def handler(eng, mask: int) -> None:
            # Classification memo: a store fact's fate (killed by
            # every location vs. surviving some) is a pure function of
            # the location set, so it is computed once per fact and
            # reused for every later batch — invalidated wholesale
            # when the location set grows (the loc-arrival handler
            # separately releases newly surviving pairs, preserving
            # CWZ90's blocked-pair discipline).  Per-run state, keyed
            # by node on the engine.
            loc_bits = (eng.solution.mask(loc_src)
                        if loc_src is not None else 0)
            state = eng._node_state.get(node)
            if state is None or state["loc_bits"] != loc_bits:
                state = {"loc_bits": loc_bits,
                         "locs": direct_referents(loc_bits),
                         "classified": 0, "killed": 0}
                eng._node_state[node] = state
            unknown = mask & ~state["classified"]
            if unknown:
                # A fact is killed iff *every* location strongly
                # updates it: intersect per-location strong-dom
                # masks.  No locations yet means every fact is
                # blocked (CWZ90's delayed release); a bare
                # strongly-updateable location's strong-dom mask is
                # exactly its same-base slice — pure bit ops.
                killed = unknown
                for r_l in state["locs"]:
                    if not killed:
                        break
                    strong = strong_memo.get(r_l)
                    if strong is None:
                        strong = strong_memo[r_l] = r_l.strongly_updateable
                    if not strong:
                        killed = 0
                        break
                    dominated = killed & base_mask(r_l.base, 0)
                    if r_l.ops and dominated:
                        memo = kill_memos.get(r_l)
                        if memo is None:
                            memo = kill_memos[r_l] = kill_memo(r_l)
                        cached = memo.get(dominated)
                        dominated = (cached if cached is not None
                                     else kill_mask(r_l, dominated))
                    killed = dominated
                state["classified"] |= unknown
                state["killed"] |= killed
            eng.flow_out_mask(ostore, mask & ~state["killed"])
        handler.locked = True
        return handler

    if role == "update.value":
        ostore = node.ostore
        loc_src = node.loc.source

        def handler(eng, mask: int) -> None:
            locs = eng._locs_at(loc_src)
            if not locs:
                return
            emit = 0
            for r_l in locs:
                memo = write_memos.get(r_l)
                if memo is None:
                    memo = write_memos[r_l] = write_memo(r_l)
                part = memo.get(mask)
                if part is None:
                    part = translate_writes(r_l, mask)
                emit |= part
            eng.flow_out_mask(ostore, emit)
        handler.locked = True
        return handler

    if role == "call.fcn":
        decode = table.decode_pairs

        def handler(eng, mask: int) -> None:
            for fact in decode(mask):
                eng._discover_callee(node, fact)
        handler.locked = True
        return handler

    if role == "call.store":
        def handler(eng, mask: int) -> None:
            flow_out_mask = eng.flow_out_mask
            for callee in eng.callgraph.callees(node):
                flow_out_mask(callee.store_formal, mask)
        handler.locked = True
        return handler

    if role == "call.arg":
        def handler(eng, mask: int) -> None:
            flow_out_mask = eng.flow_out_mask
            for callee in eng.callgraph.callees(node):
                formal = callee.corresponding_formal(index)
                if formal is not None:
                    flow_out_mask(formal, mask)
        handler.locked = True
        return handler

    if role == "return.value":
        graph = node.graph

        def handler(eng, mask: int) -> None:
            flow_out_mask = eng.flow_out_mask
            for call in eng.callgraph.callers(graph):
                flow_out_mask(call.out, mask)
        handler.locked = True
        return handler

    if role == "return.store":
        graph = node.graph

        def handler(eng, mask: int) -> None:
            flow_out_mask = eng.flow_out_mask
            for call in eng.callgraph.callers(graph):
                flow_out_mask(call.ostore, mask)
        handler.locked = True
        return handler

    if role == "merge.pred":
        return _consume  # predicate is ignored (Figure 1)

    if role == "merge.branch":
        out = node.out

        def handler(eng, mask: int) -> None:
            eng.flow_out_mask(out, mask)
        return handler

    if role == "primop.operand":
        return _make_primop_handler(node, index, table)

    def handler(eng, mask: int) -> None:
        raise AnalysisError(f"pair arrived at unexpected node {node!r}")
    return handler


def _make_primop_handler(node: PrimopNode, index: int,
                         table: FactTable) -> MaskHandler:
    semantics = node.semantics
    out = node.out

    if semantics is PrimopSemantics.OPAQUE:
        return _consume

    if semantics is PrimopSemantics.COPY:
        if node.copy_operand is not None and index != node.copy_operand:
            return _consume  # consumed, but pairs do not flow (lib calls)

        def handler(eng, mask: int) -> None:
            eng.flow_out_mask(out, mask)
        return handler

    if semantics is PrimopSemantics.EXTRACT:
        field_op = node.field_op
        translate_extract = table.translate_extract
        memo = table.extract_memo(field_op)

        def handler(eng, mask: int) -> None:
            emit = memo.get(mask)
            if emit is None:
                emit = translate_extract(field_op, mask)
            eng.flow_out_mask(out, emit)
        return handler

    if semantics is PrimopSemantics.FIELD:
        field_op = node.field_op
        translate_extend = table.translate_extend
        memo = table.extend_memo(field_op)

        def handler(eng, mask: int) -> None:
            emit = memo.get(mask)
            if emit is None:
                emit = translate_extend(field_op, mask)
            eng.flow_out_mask(out, emit)
        return handler

    if semantics is PrimopSemantics.INDEX:
        translate_extend = table.translate_extend
        memo = table.extend_memo(INDEX)

        def handler(eng, mask: int) -> None:
            emit = memo.get(mask)
            if emit is None:
                emit = translate_extend(INDEX, mask)
            eng.flow_out_mask(out, emit)
        return handler

    def handler(eng, mask: int) -> None:  # pragma: no cover
        raise AnalysisError(f"unknown primop semantics {semantics!r}")
    return handler


def analyze_insensitive(program: Program,
                        schedule: str = "batched",
                        parallel_scc: bool = False,
                        jobs: Optional[int] = None) -> AnalysisResult:
    """Run the context-insensitive analysis (paper Section 3).

    ``parallel_scc`` shards each topological level's independent SCCs
    across worker threads (forcing the ``scc`` schedule); ``jobs``
    caps the shard width (default: the CPUs this process may run on).
    """
    return InsensitiveAnalysis(program, schedule=schedule,
                               parallel_scc=parallel_scc,
                               jobs=jobs).run()
