"""Program slicing over the alias-aware dependence graph.

A slice is the set of dependence-graph nodes reachable from a
criterion — backward (everything that may influence it) or forward
(everything it may influence) — following ``value``, ``mem``,
``call``, and ``control`` edges.  Criteria come in two shapes:

* a source coordinate ``file:line`` — every node lowered from that
  line;
* a checker finding — the finding's own node (``repro check`` keys),
  so the backward slice *is* the finding's explanation: the program
  points whose values can reach the hazard.

Slices inherit the dependence graph's determinism: node sets and the
digest depend only on the lowered program and the points-to solution,
so they are identical across schedules, ``--jobs``, and cache states
(the ``make slice-smoke`` gate).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError
from .common import AnalysisResult
from .depgraph import DependenceGraph, build_depgraph

#: Slice directions.
DIRECTIONS = ("backward", "forward")


@dataclass
class SliceResult:
    """One computed slice, JSON-shaped and digest-stable."""

    program: str
    flavor: str
    criterion: str
    direction: str
    #: Criterion node keys the traversal started from (sorted).
    roots: List[str]
    #: Every node key in the slice (sorted; includes the roots).
    nodes: List[str]
    #: Distinct source coordinates covered by the slice (sorted).
    origins: List[str]
    #: Edges walked between slice members (sorted (src, dst, kind)).
    edges: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def digest(self) -> str:
        lines = [f"criterion|{self.criterion}",
                 f"direction|{self.direction}"]
        lines += [f"root|{key}" for key in self.roots]
        lines += [f"node|{key}" for key in self.nodes]
        lines += [f"edge|{src}->{dst}:{kind}"
                  for src, dst, kind in self.edges]
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def as_dict(self) -> Dict[str, object]:
        return {"program": self.program, "flavor": self.flavor,
                "criterion": self.criterion,
                "direction": self.direction,
                "roots": list(self.roots), "nodes": list(self.nodes),
                "origins": list(self.origins),
                "edges": [list(edge) for edge in self.edges],
                "size": self.size, "digest": self.digest()}


def _origin_matches(origin: str, criterion: str) -> bool:
    """Exact match, or basename match against an absolute origin
    (suite programs carry absolute paths; ``part.c:101`` should hit
    ``/…/suite/programs/part.c:101``)."""
    return origin == criterion or origin.endswith("/" + criterion)


def criterion_nodes(graph: DependenceGraph, criterion: str) -> List[str]:
    """Node keys lowered from a ``file:line`` source coordinate."""
    if ":" not in criterion:
        raise AnalysisError(
            f"bad slice criterion {criterion!r}; expected file:line")
    keys = sorted(key for key, (_, _, origin) in graph.nodes.items()
                  if origin and _origin_matches(origin, criterion))
    if not keys:
        raise AnalysisError(
            f"criterion {criterion!r} matches no program point; "
            f"origins look like 'file.c:12'")
    return keys


def compute_slice(graph: DependenceGraph, roots: Sequence[str],
                  direction: str = "backward",
                  criterion: str = "") -> SliceResult:
    """Reachability closure over the dependence graph from ``roots``."""
    if direction not in DIRECTIONS:
        raise AnalysisError(
            f"unknown slice direction {direction!r}; "
            f"expected one of {DIRECTIONS}")
    missing = [key for key in roots if key not in graph.nodes]
    if missing:
        raise AnalysisError(
            f"criterion nodes not in the dependence graph: "
            f"{', '.join(sorted(missing))}")
    members: Set[str] = set()
    edges: Set[Tuple[str, str, str]] = set()
    work: List[str] = list(roots)
    while work:
        key = work.pop()
        if key in members:
            continue
        members.add(key)
        for neighbour, kind in graph.neighbours(key, direction):
            if direction == "backward":
                edges.add((neighbour, key, kind))
            else:
                edges.add((key, neighbour, kind))
            if neighbour not in members:
                work.append(neighbour)
    origins = sorted({graph.nodes[key][2] for key in members}
                     - {""})
    return SliceResult(
        program=graph.program.name, flavor=graph.flavor,
        criterion=criterion, direction=direction,
        roots=sorted(set(roots)), nodes=sorted(members),
        origins=origins, edges=sorted(edges))


def slice_criterion(graph: DependenceGraph, criterion: str,
                    direction: str = "backward") -> SliceResult:
    """Slice from a ``file:line`` criterion."""
    roots = criterion_nodes(graph, criterion)
    return compute_slice(graph, roots, direction, criterion=criterion)


def finding_node_key(finding) -> str:
    """The dependence-graph key of a checker finding's node."""
    return f"{finding.function}:{finding.node}"


def resolve_finding(findings: Iterable, key: str):
    """Find the unique finding whose ``key()`` matches ``key``.

    Accepts the full ``repro check`` finding key or any unique
    substring of one (keys are long; a ``checker|...|origin`` prefix
    is usually enough).  Ambiguity and misses are hard errors so a
    slice never silently explains the wrong finding.
    """
    rendered = [(f, "|".join(f.key())) for f in findings]
    exact = [f for f, full in rendered if full == key]
    if len(exact) == 1:
        return exact[0]
    matches = [(f, full) for f, full in rendered if key in full]
    if not matches:
        raise AnalysisError(f"no finding matches key {key!r}")
    if len(matches) > 1:
        sample = "; ".join(sorted(full for _, full in matches)[:3])
        raise AnalysisError(
            f"finding key {key!r} is ambiguous "
            f"({len(matches)} matches, e.g. {sample})")
    return matches[0][0]


def slice_for_finding(graph: DependenceGraph, finding,
                      direction: str = "backward") -> SliceResult:
    """The slice that explains one checker finding.

    ``graph`` must be built from the same (hazard-lowered) result the
    finding was reported against, so the finding's node exists.
    """
    root = finding_node_key(finding)
    if root not in graph.nodes:
        raise AnalysisError(
            f"finding node {root} is not in this dependence graph — "
            f"was it built from the same (hazard-model) lowering?")
    return compute_slice(graph, [root], direction,
                         criterion="finding:" + "|".join(finding.key()))


#: Cap on origin lines quoted in a slice witness.
_WITNESS_ORIGINS = 10


def format_slice_witness(slice_result: SliceResult) -> str:
    """A compact, deterministic explanation block for a finding."""
    origins = slice_result.origins
    shown = origins[:_WITNESS_ORIGINS]
    more = len(origins) - len(shown)
    lines = [f"slice[{slice_result.direction}] "
             f"{slice_result.size} nodes over "
             f"{len(origins)} source lines "
             f"(digest {slice_result.digest()[:12]})"]
    for origin in shown:
        lines.append(f"  reaches {origin}")
    if more > 0:
        lines.append(f"  ... and {more} more lines")
    return "\n".join(lines)


def attach_slice_witnesses(findings: Sequence, result: AnalysisResult,
                           graph: Optional[DependenceGraph] = None
                           ) -> None:
    """Fill each finding's ``witness`` with its backward slice.

    The dependence graph is built once and shared; findings whose node
    is missing from the graph (defensive — all checker nodes come from
    the same lowering) keep their witness untouched.  Witness text is
    excluded from finding keys and digests, so attaching slices never
    perturbs the determinism gates.
    """
    if graph is None:
        graph = build_depgraph(result)
    for finding in findings:
        root = finding_node_key(finding)
        if root not in graph.nodes:
            continue
        slice_result = compute_slice(
            graph, [root], "backward",
            criterion="finding:" + "|".join(finding.key()))
        text = format_slice_witness(slice_result)
        finding.witness = (finding.witness + "\n" + text
                           if finding.witness else text)
