"""Explain *why* a points-to pair holds.

Debugging an alias analysis (or a program through one) constantly asks
"where did this pair come from?".  This module reconstructs a
derivation for any (output, pair) fact in a context-insensitive
solution by inverting the transfer functions against the final
fixpoint: for the node producing the output it finds input facts that
justify the pair, and recurses — producing a proof tree whose leaves
are the Figure 1 seeds (address constants, the initial store, root
environments).

The search is greedy (first justification found) with a visited set,
so cyclic derivations (loops, recursion) terminate by citing the fact
already being explained as "(already shown above)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import AnalysisError
from ..memory.access import EMPTY_OFFSET, INDEX, AccessPath
from ..memory.pairs import PointsToPair, direct, pair as make_pair
from ..memory.relations import dom, strong_dom
from ..ir.nodes import (
    AddressNode,
    CallNode,
    ConstNode,
    EntryNode,
    LookupNode,
    MergeNode,
    Node,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    ReturnNode,
    UpdateNode,
)
from .common import AnalysisResult

Fact = Tuple[OutputPort, PointsToPair]


@dataclass
class Derivation:
    """One step of a proof: fact, the rule that produced it, premises."""

    output: OutputPort
    pair: PointsToPair
    rule: str
    premises: List["Derivation"] = field(default_factory=list)
    cyclic: bool = False  # cites a fact already shown above

    def depth(self) -> int:
        if not self.premises:
            return 1
        return 1 + max(p.depth() for p in self.premises)


class Explainer:
    """Builds derivations against one context-insensitive result."""

    def __init__(self, result: AnalysisResult) -> None:
        if result.flavor == "sensitive":
            raise AnalysisError(
                "explain derivations against the context-insensitive "
                "result (the CS result strips its assumptions)")
        self.result = result
        self.program = result.program

    # -- public API -----------------------------------------------------------

    def explain(self, output: OutputPort,
                pair: PointsToPair) -> Derivation:
        if pair not in self.result.solution.raw_pairs(output):
            raise AnalysisError(f"{pair!r} does not hold on {output!r}")
        return self._derive(output, pair, frozenset())

    # -- derivation search -------------------------------------------------------

    def _derive(self, output: OutputPort, pair: PointsToPair,
                visiting: frozenset) -> Derivation:
        fact: Fact = (output, pair)
        if fact in visiting:
            return Derivation(output, pair, "(already shown above)",
                              cyclic=True)
        visiting = visiting | {fact}
        node = output.node

        if isinstance(node, AddressNode):
            return Derivation(output, pair, "address constant")
        if isinstance(node, EntryNode):
            return self._derive_entry(node, output, pair, visiting)
        if isinstance(node, MergeNode):
            for branch in node.branches:
                premise = self._premise(branch, pair, visiting)
                if premise is not None:
                    return Derivation(output, pair, "control-flow join",
                                      [premise])
        if isinstance(node, LookupNode):
            found = self._derive_lookup(node, pair, visiting)
            if found is not None:
                return found
        if isinstance(node, UpdateNode):
            found = self._derive_update(node, pair, visiting)
            if found is not None:
                return found
        if isinstance(node, CallNode):
            found = self._derive_call_output(node, output, pair, visiting)
            if found is not None:
                return found
        if isinstance(node, PrimopNode):
            found = self._derive_primop(node, pair, visiting)
            if found is not None:
                return found
        if isinstance(node, ConstNode):
            return Derivation(output, pair, "constant (unexpected pair)")
        for seeded_output, seeded_pair in self.program.seeded_values:
            if seeded_output is output and seeded_pair is pair:
                return Derivation(output, pair, "synthesized environment")
        return Derivation(output, pair, "(no justification found)")

    def _premise(self, input_port, pair: PointsToPair,
                 visiting: frozenset) -> Optional[Derivation]:
        if input_port is None or input_port.source is None:
            return None
        if pair not in self.result.solution.raw_pairs(input_port.source):
            return None
        return self._derive(input_port.source, pair, visiting)

    def _derive_entry(self, node: EntryNode, output: OutputPort,
                      pair: PointsToPair,
                      visiting: frozenset) -> Derivation:
        graph = node.graph
        if output is node.store_out:
            if graph.name in self.program.roots \
                    and pair in self.program.initial_store:
                return Derivation(output, pair,
                                  "static initializer (initial store)")
            for call in self.result.callgraph.callers(graph):
                premise = self._premise(call.store, pair, visiting)
                if premise is not None:
                    return Derivation(
                        output, pair,
                        f"store entering {graph.name} from a call in "
                        f"{call.graph.name}", [premise])
        else:
            index = node.formals.index(output)
            for seeded_output, seeded_pair in self.program.seeded_values:
                if seeded_output is output and seeded_pair is pair:
                    return Derivation(output, pair,
                                      "synthesized root environment")
            for call in self.result.callgraph.callers(graph):
                if index < len(call.args):
                    premise = self._premise(call.args[index], pair,
                                            visiting)
                    if premise is not None:
                        return Derivation(
                            output, pair,
                            f"argument {index} at a call in "
                            f"{call.graph.name}", [premise])
        return Derivation(output, pair, "(no caller justifies this)")

    def _derive_lookup(self, node: LookupNode, pair: PointsToPair,
                       visiting: frozenset) -> Optional[Derivation]:
        for lp in self.result.solution.raw_pairs(
                node.loc.source) if node.loc.source else ():
            if lp.path is not EMPTY_OFFSET:
                continue
            wanted_path = lp.referent.append(pair.path)
            store_pair = make_pair(wanted_path, pair.referent)
            if not dom(lp.referent, wanted_path):
                continue
            loc_premise = self._premise(node.loc, lp, visiting)
            store_premise = self._premise(node.store, store_pair, visiting)
            if loc_premise is not None and store_premise is not None:
                return Derivation(
                    node.out, pair,
                    f"memory read of {lp.referent!r}",
                    [loc_premise, store_premise])
        return None

    def _derive_update(self, node: UpdateNode, pair: PointsToPair,
                       visiting: frozenset) -> Optional[Derivation]:
        loc_pairs = [p for p in (self.result.solution.raw_pairs(
            node.loc.source) if node.loc.source else ())
            if p.path is EMPTY_OFFSET]
        # Case 1: the update wrote it: pair.path = r_l + p_v.
        for lp in loc_pairs:
            r_l = lp.referent
            if r_l.base is not pair.path.base:
                continue
            n = len(r_l.ops)
            if pair.path.ops[:n] != r_l.ops:
                continue
            offset = AccessPath(None, pair.path.ops[n:])
            value_pair = make_pair(offset, pair.referent)
            loc_premise = self._premise(node.loc, lp, visiting)
            value_premise = self._premise(node.value, value_pair, visiting)
            if loc_premise is not None and value_premise is not None:
                return Derivation(
                    node.ostore, pair,
                    f"memory write to {r_l!r}",
                    [loc_premise, value_premise])
        # Case 2: the pair survived (some location does not kill it).
        store_premise = self._premise(node.store, pair, visiting)
        if store_premise is not None:
            survivor = next((lp for lp in loc_pairs
                             if not strong_dom(lp.referent, pair.path)),
                            None)
            if survivor is not None:
                return Derivation(
                    node.ostore, pair,
                    f"survives the write (not definitely overwritten "
                    f"by {survivor.referent!r})",
                    [store_premise])
        return None

    def _derive_call_output(self, node: CallNode, output: OutputPort,
                            pair: PointsToPair,
                            visiting: frozenset) -> Optional[Derivation]:
        for callee in self.result.callgraph.callees(node):
            ret = callee.return_node
            if ret is None:
                continue
            source = ret.value if output is node.out else ret.store
            premise = self._premise(source, pair, visiting)
            if premise is not None:
                what = "return value" if output is node.out \
                    else "returned store"
                return Derivation(output, pair,
                                  f"{what} of {callee.name}", [premise])
        return None

    def _derive_primop(self, node: PrimopNode, pair: PointsToPair,
                       visiting: frozenset) -> Optional[Derivation]:
        semantics = node.semantics
        if semantics is PrimopSemantics.COPY:
            operands = (node.operands if node.copy_operand is None
                        else [node.operands[node.copy_operand]])
            for operand in operands:
                premise = self._premise(operand, pair, visiting)
                if premise is not None:
                    return Derivation(node.out, pair,
                                      f"copied through {node.op}",
                                      [premise])
            return None
        (operand,) = node.operands
        if semantics in (PrimopSemantics.FIELD, PrimopSemantics.INDEX):
            if pair.path is not EMPTY_OFFSET or not pair.referent.ops:
                return None
            base_ref = AccessPath(pair.referent.base,
                                  pair.referent.ops[:-1])
            premise = self._premise(operand, direct(base_ref), visiting)
            if premise is not None:
                op_name = ("member address" if semantics
                           is PrimopSemantics.FIELD else "element address")
                return Derivation(node.out, pair, op_name, [premise])
            return None
        if semantics is PrimopSemantics.EXTRACT:
            inner = AccessPath(None, (node.field_op,) + pair.path.ops)
            premise = self._premise(operand,
                                    make_pair(inner, pair.referent),
                                    visiting)
            if premise is not None:
                return Derivation(node.out, pair, "member extract",
                                  [premise])
        return None


def explain(result: AnalysisResult, output: OutputPort,
            pair: PointsToPair) -> Derivation:
    """Build a derivation tree for one fact (see module docstring)."""
    return Explainer(result).explain(output, pair)


def witness_explainer(result: AnalysisResult) -> Optional[Explainer]:
    """An explainer suitable for witnessing findings from ``result``.

    The context-sensitive result strips its assumption sets, so its
    facts cannot be inverted directly; they are all a subset of the
    embedded context-insensitive result's facts (the lattice guarantees
    stripped ⊆ CI), so derivations route through ``extras["ci_result"]``.
    Returns ``None`` when no explainable result is reachable.
    """
    if result.flavor == "sensitive":
        ci = result.extras.get("ci_result")
        return Explainer(ci) if ci is not None else None
    return Explainer(result)


def derivation_facts(derivation: Derivation) -> List[Tuple[OutputPort, PointsToPair]]:
    """Every (output, pair) fact a derivation tree cites, leaves
    included — each must hold in the solution it was built against
    (the witness-vs-verify tests assert exactly this)."""
    facts: List[Tuple[OutputPort, PointsToPair]] = []
    stack = [derivation]
    while stack:
        step = stack.pop()
        facts.append((step.output, step.pair))
        stack.extend(step.premises)
    return facts


def format_derivation(derivation: Derivation, indent: int = 0) -> str:
    """Render a derivation tree as indented text."""
    node = derivation.output.node
    where = f"{node.graph.name}:{node!r}"
    if node.origin:
        where += f" ({node.origin})"
    line = (" " * indent
            + f"{derivation.pair!r} on {where} — {derivation.rule}")
    lines = [line]
    for premise in derivation.premises:
        lines.append(format_derivation(premise, indent + 4))
    return "\n".join(lines)
