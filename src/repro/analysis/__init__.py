"""Points-to analyses: the paper's contribution.

* :mod:`~repro.analysis.insensitive` — Figure 1's context-insensitive
  worklist algorithm.
* :mod:`~repro.analysis.sensitive` — Figure 5's maximally
  context-sensitive algorithm with qualified pairs, plus §4.2's
  CI-based pruning optimizations.
* :mod:`~repro.analysis.flowinsensitive` — the Weihl-style program-wide
  baseline the paper's introduction contrasts with.
* :mod:`~repro.analysis.compare` — spurious-pair computation (CI ∖ CS).
* :mod:`~repro.analysis.stats` — every metric in Figures 2/3/4/6/7 and
  the §4.2/§4.3 text claims.
* :mod:`~repro.analysis.clients` — mod/ref and def/use consumers.
* :mod:`~repro.analysis.summaries` /
  :mod:`~repro.analysis.incremental` — per-SCC escape summaries and
  the content-keyed incremental re-analysis driver built on them.
"""

from .common import AnalysisResult, CallGraph, Counters, PointsToSolution
from .compare import ComparisonReport, compare_results, spurious_pairs
from .flowinsensitive import FlowInsensitiveAnalysis, analyze_flowinsensitive
from .insensitive import InsensitiveAnalysis, analyze_insensitive
from .qualified import (
    AssumptionAntichain,
    AssumptionSet,
    QualifiedPair,
    QualifiedSolution,
)
from .explain import Derivation, Explainer, explain, format_derivation
from .query import op_locations_at_call, pairs_under, project_at_call
from .verify import (
    QualifiedViolation,
    Violation,
    assert_fixpoint,
    assert_qualified_fixpoint,
    verify_qualified,
    verify_solution,
)
from .sensitive import PruneInfo, SensitiveAnalysis, analyze_sensitive
from .incremental import SummaryReplayError, analyze_incremental
from .summaries import (
    Summary,
    extract_summary,
    join_summaries,
    summary_digest,
    summary_leq,
)

__all__ = [
    "AnalysisResult",
    "AssumptionAntichain",
    "AssumptionSet",
    "CallGraph",
    "ComparisonReport",
    "Counters",
    "FlowInsensitiveAnalysis",
    "InsensitiveAnalysis",
    "PointsToSolution",
    "PruneInfo",
    "QualifiedPair",
    "QualifiedSolution",
    "SensitiveAnalysis",
    "Summary",
    "SummaryReplayError",
    "Derivation",
    "Explainer",
    "QualifiedViolation",
    "Violation",
    "analyze_flowinsensitive",
    "analyze_incremental",
    "assert_qualified_fixpoint",
    "verify_qualified",
    "analyze_insensitive",
    "analyze_sensitive",
    "assert_fixpoint",
    "compare_results",
    "explain",
    "extract_summary",
    "join_summaries",
    "summary_digest",
    "summary_leq",
    "format_derivation",
    "op_locations_at_call",
    "pairs_under",
    "project_at_call",
    "spurious_pairs",
    "verify_solution",
]
