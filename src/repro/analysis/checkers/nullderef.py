"""Null-dereference checker.

An *indirect* memory operation (Figure 4's notion: the location input
is computed, not a constant address) whose location value may be the
null/invalid pointer.  Under the hazard lowering the null pointer is
the address of the ``<null>`` summary cell, so "may be null" is simply
"the target set contains a ``<null>``-based path".  A target set that
is *empty* is the degenerate case — the operation has nothing legal it
can touch (a bare null constant under the default lowering, or an
unmodeled external pointer) — and is reported as a definite error.
"""

from __future__ import annotations

from typing import Iterator

from ...ir.nodes import LookupNode
from ..common import AnalysisResult
from .base import (
    REGISTRY, RawFinding, hazard_cells, is_summary, representative,
)


@REGISTRY.register("nullderef")
def check_null_dereference(result: AnalysisResult) -> Iterator[RawFinding]:
    null_cell = hazard_cells(result.program).get("null")
    solution = result.solution
    for graph in result.program.functions.values():
        for node in graph.memory_operations():
            src = node.loc.source
            if src is None:
                continue
            # "Indirect" per Figure 4 — except that a constant address
            # of a summary cell (a literal null) is still a hazard.
            if not node.is_indirect and not is_summary(src.node.path.base):
                continue
            verb = "read" if isinstance(node, LookupNode) else "write"
            direct = [p for p in solution.pairs(src) if p.is_direct]
            if not direct:
                yield RawFinding(
                    "nullderef", node, "error",
                    f"indirect {verb} through a pointer with no valid "
                    f"targets")
                continue
            bad = [p for p in direct if p.referent.base is null_cell]
            if null_cell is None or not bad:
                continue
            # Definite when nothing the pointer may hold is a real cell
            # (the other summary cell, <uninit>, is no more valid).
            definite = all(is_summary(p.referent.base) for p in direct)
            severity = "error" if definite else "warning"
            qualifier = "is" if definite else "may be"
            witness = representative(bad)
            yield RawFinding(
                "nullderef", node, severity,
                f"indirect {verb} through a pointer that {qualifier} null",
                path=witness.referent, evidence=(src, witness))
