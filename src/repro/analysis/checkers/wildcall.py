"""Wild-indirect-call checker.

An indirect call's function value should resolve to a set of defined
functions: bare ``FUNCTION``-kind base-locations.  Anything else is a
wild call — an empty target set (calling a scalar, a never-assigned
function pointer under the default lowering), a data cell treated as
code, or a hazard summary cell (calling a null or uninitialized
function pointer).  The discovered call graph's ``unresolved`` set
records the same phenomenon from the solver's side; the checker
reports it per offending target with evidence pairs.
"""

from __future__ import annotations

from typing import Iterator

from ...memory.base import LocationKind
from ...ir.nodes import AddressNode, CallNode
from ..common import AnalysisResult
from .base import REGISTRY, RawFinding, render_path


def _is_function_target(referent) -> bool:
    return (not referent.ops and referent.base is not None
            and referent.base.kind is LocationKind.FUNCTION)


@REGISTRY.register("wildcall")
def check_wild_calls(result: AnalysisResult) -> Iterator[RawFinding]:
    solution = result.solution
    for graph in result.program.functions.values():
        for node in graph.nodes:
            if not isinstance(node, CallNode):
                continue
            src = node.fcn.source
            if src is None:
                yield RawFinding(
                    "wildcall", node, "error",
                    "call has a dangling function input")
                continue
            if isinstance(src.node, AddressNode) \
                    and _is_function_target(src.node.path):
                continue  # direct call
            direct = [p for p in solution.pairs(src) if p.is_direct]
            if not direct:
                yield RawFinding(
                    "wildcall", node, "error",
                    "indirect call through a value with no callable "
                    "targets")
                continue
            bad = [p for p in direct
                   if not _is_function_target(p.referent)]
            severity = "error" if len(bad) == len(direct) else "warning"
            for p in sorted(bad, key=lambda p: render_path(p.referent)):
                yield RawFinding(
                    "wildcall", node, severity,
                    f"indirect call may target the non-function cell "
                    f"{render_path(p.referent)}",
                    path=p.referent, evidence=(src, p))
