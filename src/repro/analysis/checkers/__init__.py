"""Bug-finding checker clients over analysis results (DESIGN.md §9).

Importing the package registers the five concrete checkers; the
framework lives in :mod:`.base`.
"""

from .base import (
    REGISTRY,
    SEVERITIES,
    CheckerRegistry,
    Finding,
    RawFinding,
    count_by_checker,
    findings_digest,
    hazard_cells,
    render_path,
    run_checkers,
)
from . import deadstore, nullderef, stackref, uninit, wildcall  # noqa: F401 (register)

#: Registered checker ids, alphabetical — the CLI's --checkers choices.
CHECKER_IDS = REGISTRY.names()

__all__ = [
    "CHECKER_IDS",
    "CheckerRegistry",
    "Finding",
    "RawFinding",
    "REGISTRY",
    "SEVERITIES",
    "count_by_checker",
    "findings_digest",
    "hazard_cells",
    "render_path",
    "run_checkers",
]
