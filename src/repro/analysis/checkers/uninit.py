"""Uninitialized-pointer-read checker.

The hazard lowering seeds every uninitialized pointer-typed cell with
the ``<uninit>`` summary location — as the SSA value of register-class
locals, and as a store pair on memory-resident locals (killed by the
first strong update, so fully-initialized paths report nothing).  Two
shapes of hazard follow:

* a memory operation whose *location input* may hold ``<uninit>`` —
  dereferencing a pointer that was never assigned; and
* a lookup whose *result* may be ``<uninit>`` — reading a pointer cell
  before its first initialization (the value read is garbage even if
  it is never dereferenced here).
"""

from __future__ import annotations

from typing import Iterator

from ...ir.nodes import LookupNode
from ..common import AnalysisResult
from .base import (
    REGISTRY, RawFinding, hazard_cells, is_summary, representative,
)


@REGISTRY.register("uninit")
def check_uninitialized_reads(result: AnalysisResult) -> Iterator[RawFinding]:
    uninit_cell = hazard_cells(result.program).get("uninit")
    if uninit_cell is None:
        return
    solution = result.solution
    for graph in result.program.functions.values():
        for node in graph.memory_operations():
            src = node.loc.source
            if src is None:
                continue
            verb = "read" if isinstance(node, LookupNode) else "write"
            direct = [p for p in solution.pairs(src) if p.is_direct]
            bad = [p for p in direct if p.referent.base is uninit_cell]
            if bad:
                definite = all(is_summary(p.referent.base) for p in direct)
                severity = "error" if definite else "warning"
                qualifier = ("is" if definite else "may be")
                witness = representative(bad)
                yield RawFinding(
                    "uninit", node, severity,
                    f"indirect {verb} through a pointer that {qualifier} "
                    f"uninitialized",
                    path=witness.referent, evidence=(src, witness))
            if not isinstance(node, LookupNode):
                continue
            out_bad = [p for p in solution.pairs(node.out)
                       if p.is_direct and p.referent.base is uninit_cell]
            if out_bad:
                p = representative(out_bad)
                yield RawFinding(
                    "uninit", node, "warning",
                    "reads a pointer that may be uninitialized",
                    path=p.referent, evidence=(node.out, p))
