"""Checker framework: bug-finding clients over an analysis result.

Ruf's claim is that context sensitivity buys nothing *at the places
clients look*.  The aggregate clients (mod/ref, def/use, dead stores)
ask that question of summary sets; the checkers in this package ask it
of concrete bug reports: does the context-sensitive solution flag the
same null dereferences, escaping stack pointers, uninitialized reads,
and wild indirect calls as the context-insensitive one?

A checker is a generator over one :class:`AnalysisResult` yielding
:class:`RawFinding` objects (live IR nodes + interned paths).  The
framework renders them into plain-string :class:`Finding` records —
picklable, deterministic, deduplicated — attaches witness derivations
via :mod:`repro.analysis.explain`, and digests the findings so runs
can be compared across schedules and job counts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ...errors import AnalysisError
from ...memory.access import AccessPath
from ...memory.base import BaseLocation, LocationKind
from ...memory.pairs import PointsToPair
from ...ir.graph import FunctionGraph, Program
from ...ir.nodes import CallNode, Node, OutputPort
from ..common import AnalysisResult, CallGraph
from ..explain import format_derivation, witness_explainer

#: Severity levels, ordered: "error" marks a must-hazard (every target
#: of the operation is invalid), "warning" a may-hazard.
SEVERITIES = ("error", "warning")


def render_path(path: Optional[AccessPath]) -> str:
    """Stable rendering of an access path (uid-free, matches the
    export module's ``path_to_string``)."""
    if path is None:
        return ""
    base = path.base.describe() if path.base is not None else "ε"
    return base + "".join(repr(op) for op in path.ops)


def is_summary(base: Optional[BaseLocation]) -> bool:
    """Whether a base-location is a synthetic hazard cell."""
    return base is not None and base.kind is LocationKind.SUMMARY


def representative(pairs: Iterable[PointsToPair]) -> PointsToPair:
    """The canonical pair of a non-empty hazard set, for reporting.

    Checkers report one pair per finding; solution sets iterate in
    hash/decode order, which varies with the process's interning
    history — picking ``pairs[0]`` made the *rendered path* (and so
    ``findings_digest``) depend on which programs were analyzed
    earlier in the process.  The minimum rendered path is a pure
    content function of the set.
    """
    return min(pairs, key=lambda p: render_path(p.referent))


def hazard_cells(program: Program) -> Dict[str, BaseLocation]:
    """The program's ``<null>``/``<uninit>`` cells ({} when lowered
    without the hazard model)."""
    return program.extras.get("hazard") or {}


@dataclass
class RawFinding:
    """A checker's in-process report: live node, interned path.

    ``evidence`` is the (output, pair) fact whose derivation becomes
    the finding's witness; checkers leave it ``None`` when the finding
    is about an *absence* of facts (e.g. an empty call target set).
    """

    checker: str
    node: Node
    severity: str
    message: str
    path: Optional[AccessPath] = None
    evidence: Optional[Tuple[OutputPort, PointsToPair]] = None


@dataclass
class Finding:
    """A rendered finding: plain strings only, safe to pickle across
    worker processes and stable across runs.

    ``witness`` holds the derivation text for the evidence fact; it is
    *excluded* from :meth:`key` (and hence from digests) because the
    explainer's greedy search is not cross-process deterministic — the
    facts it cites are, but the tree shape may differ.
    """

    checker: str
    flavor: str
    function: str
    node: str       # "kind#uid", stable for a deterministic lowering
    origin: str     # "file:line" source position, "" when unknown
    path: str       # rendered access path the finding is about
    severity: str
    message: str
    witness: str = ""

    def key(self) -> Tuple[str, ...]:
        """Identity for dedup and digests (witness excluded)."""
        return (self.checker, self.flavor, self.function, self.node,
                self.origin, self.path, self.severity, self.message)

    @property
    def line(self) -> Optional[int]:
        """Source line parsed off the origin, for SARIF locations."""
        _, _, tail = self.origin.rpartition(":")
        return int(tail) if tail.isdigit() else None

    @property
    def file(self) -> str:
        head, sep, tail = self.origin.rpartition(":")
        return head if sep and tail.isdigit() else self.origin

    def as_dict(self) -> Dict[str, object]:
        return {"checker": self.checker, "flavor": self.flavor,
                "function": self.function, "node": self.node,
                "origin": self.origin, "path": self.path,
                "severity": self.severity, "message": self.message,
                "witness": self.witness}


#: Signature every registered checker implements.
CheckerFn = Callable[[AnalysisResult], Iterator[RawFinding]]


class CheckerRegistry:
    """Name → checker function table with validation."""

    def __init__(self) -> None:
        self._checkers: Dict[str, CheckerFn] = {}

    def register(self, name: str) -> Callable[[CheckerFn], CheckerFn]:
        def decorate(fn: CheckerFn) -> CheckerFn:
            if name in self._checkers:
                raise AnalysisError(f"checker {name!r} already registered")
            self._checkers[name] = fn
            return fn
        return decorate

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._checkers))

    def get(self, names: Optional[Sequence[str]] = None
            ) -> List[Tuple[str, CheckerFn]]:
        if names is None:
            names = self.names()
        selected = []
        for name in names:
            fn = self._checkers.get(name)
            if fn is None:
                raise AnalysisError(
                    f"unknown checker {name!r}; expected one of "
                    f"{', '.join(self.names())}")
            selected.append((name, fn))
        return selected


#: The process-wide registry the concrete checker modules populate.
REGISTRY = CheckerRegistry()


def transitive_callees(callgraph: CallGraph, call: CallNode
                       ) -> Set[FunctionGraph]:
    """Every function whose frame is dead once ``call`` returns:
    the direct callees plus everything reachable from them."""
    pending = list(callgraph.callees(call))
    reached: Set[FunctionGraph] = set()
    while pending:
        graph = pending.pop()
        if graph in reached:
            continue
        reached.add(graph)
        for node in graph.nodes:
            if isinstance(node, CallNode):
                pending.extend(callgraph.callees(node))
    return reached


def run_checkers(result: AnalysisResult,
                 names: Optional[Sequence[str]] = None, *,
                 witness: bool = False) -> List[Finding]:
    """Run checkers over one result: sorted, deduplicated findings.

    Checkers run in registry (alphabetical) order; findings are sorted
    by (checker, function, node uid, path, message) and deduplicated
    on :meth:`Finding.key`, so the list — and its digest — is identical
    for any schedule or job count that produced the same solution.
    """
    raw: List[RawFinding] = []
    for _, fn in REGISTRY.get(names):
        raw.extend(fn(result))
    raw.sort(key=lambda r: (r.checker, r.node.graph.name, r.node.uid,
                            render_path(r.path), r.message))
    explainer = witness_explainer(result) if witness else None
    findings: List[Finding] = []
    seen: Set[Tuple[str, ...]] = set()
    for r in raw:
        finding = Finding(
            checker=r.checker, flavor=result.flavor,
            function=r.node.graph.name,
            node=f"{r.node.kind}#{r.node.uid}",
            origin=r.node.origin or "",
            path=render_path(r.path), severity=r.severity,
            message=r.message)
        if finding.key() in seen:
            continue
        seen.add(finding.key())
        if explainer is not None and r.evidence is not None:
            output, pair = r.evidence
            if pair in explainer.result.solution.raw_pairs(output):
                finding.witness = format_derivation(
                    explainer.explain(output, pair))
        findings.append(finding)
    return findings


def findings_digest(findings: Iterable[Finding]) -> str:
    """Order-insensitive content hash of a finding set (witness-free),
    the cross-schedule / cross-jobs comparison primitive."""
    lines = sorted("|".join(f.key()) for f in findings)
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def count_by_checker(findings: Iterable[Finding]) -> Dict[str, int]:
    """Per-checker finding counts (zero-filled for registered ids)."""
    counts = {name: 0 for name in REGISTRY.names()}
    for f in findings:
        counts[f.checker] = counts.get(f.checker, 0) + 1
    return counts
