"""Use-after-return / escaping-stack-pointer checker.

When a call returns, every frame of its transitive callees is dead.
The store threaded through the call's ``ostore`` output records what
the caller can still reach: a pair whose *referent* is a local or
parameter cell of a dead frame, held in a cell that survives the
return (a global, the heap, or a caller-visible cell), is a pointer
into freed stack storage.  A returned value that points at a dead
frame's cell is the same bug through the return-value channel.

Both shapes need no hazard lowering — they fall straight out of the
points-to solution — and they are exactly where CI/CS precision can
differ: a callee-local that escapes in one calling context only is
reported unconditionally by CI but context-filtered by CS.
"""

from __future__ import annotations

from typing import Iterator

from ...memory.base import LocationKind
from ...ir.nodes import CallNode
from ..common import AnalysisResult
from .base import REGISTRY, RawFinding, transitive_callees

_STACK_KINDS = (LocationKind.LOCAL, LocationKind.PARAM)


@REGISTRY.register("stackref")
def check_stack_escapes(result: AnalysisResult) -> Iterator[RawFinding]:
    solution = result.solution
    for graph in result.program.functions.values():
        for node in graph.nodes:
            if not isinstance(node, CallNode):
                continue
            dead = {g.name for g in
                    transitive_callees(result.callgraph, node)}
            # A recursive call keeps the enclosing frame live; its
            # (shared, multi-instance) locals are not dead yet.
            dead.discard(graph.name)
            if not dead:
                continue
            for pair in sorted(solution.pairs(node.ostore),
                               key=repr):
                ref = pair.referent.base
                if ref is None or ref.kind not in _STACK_KINDS \
                        or ref.procedure not in dead:
                    continue
                holder = pair.path.base
                if holder is not None and holder.kind in _STACK_KINDS \
                        and holder.procedure in dead:
                    continue  # the holding cell dies with the frame too
                yield RawFinding(
                    "stackref", node, "warning",
                    f"{pair.path!r} may hold a pointer into the dead "
                    f"frame of {ref.procedure} after this call returns",
                    path=pair.referent, evidence=(node.ostore, pair))
            for pair in sorted(solution.pairs(node.out), key=repr):
                if not pair.is_direct:
                    continue
                ref = pair.referent.base
                if ref is None or ref.kind not in _STACK_KINDS \
                        or ref.procedure not in dead:
                    continue
                yield RawFinding(
                    "stackref", node, "warning",
                    f"call may return a pointer into the dead frame "
                    f"of {ref.procedure}",
                    path=pair.referent, evidence=(node.out, pair))
