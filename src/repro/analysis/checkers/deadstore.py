"""Dead-store checker: writes no read can ever observe.

Promotes :func:`repro.analysis.clients.deadstore.find_dead_stores`
into a registered checker — the client-level payoff of strong
updates, surfaced beside the hazard checkers in ``repro check``,
SARIF export, and the "checkers" experiment table.

Only ``dead`` stores are reported (severity ``warning``: the code is
legal, just wasted).  ``unreachable`` stores — an empty target set,
i.e. a write through a null-only pointer — are the nullderef
checker's territory and would be double-reported here.

The verdict inherits the may-analysis caveats spelled out in the
client module: a write is reported only when *no* modeled read can
observe it under the points-to result this checker runs over, and
writes to weakly-updated (heap/array/recursive) locations are never
reported because some instance may still be read.
"""

from __future__ import annotations

from typing import Iterator

from ..common import AnalysisResult
from ..clients.deadstore import find_dead_stores
from .base import REGISTRY, RawFinding, is_summary, render_path


@REGISTRY.register("deadstore")
def check_dead_stores(result: AnalysisResult) -> Iterator[RawFinding]:
    report = find_dead_stores(result)
    solution = result.solution
    for node in report.dead:
        locations = sorted(result.op_locations(node), key=render_path)
        # Writes that can only hit hazard summary cells (<null>,
        # <uninit>) are the nullderef/uninit checkers' findings, not
        # dead stores.
        if locations and all(is_summary(p.base) for p in locations):
            continue
        target = locations[0] if locations else None
        where = f" to {render_path(target)}" if target is not None \
            else ""
        evidence = None
        src = node.loc.source
        if src is not None:
            direct = [p for p in solution.pairs(src)
                      if p.is_direct and p.referent == target]
            if direct:
                evidence = (src, min(
                    direct, key=lambda p: render_path(p.referent)))
        yield RawFinding(
            "deadstore", node, "warning",
            f"stored value is never read (dead store{where})",
            path=target, evidence=evidence)
