"""Comparing the two analyses: spurious pairs and the §4.3 headline.

A *spurious* points-to pair is one the context-insensitive analysis
reports but the (stripped) context-sensitive analysis does not — the
imprecision attributable to exploring unrealizable call/return paths.
Figure 6 counts them; §4.3's headline result is that none of them sit
on the location inputs of indirect memory operations, so def/use and
mod/ref clients see identical answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..errors import AnalysisError
from ..memory.pairs import PointsToPair
from ..ir.nodes import Node, OutputPort
from .common import AnalysisResult
from .stats import Breakdown, PairCensus, indirect_operations, pair_census


@dataclass
class IndirectOpDiff:
    """A memory operation where CI and CS disagree (none expected on
    the paper's suite, but the adversarial programs produce them)."""

    node: Node
    ci_locations: Set
    cs_locations: Set

    @property
    def extra(self) -> Set:
        return self.ci_locations - self.cs_locations


@dataclass
class ComparisonReport:
    """Everything Figure 6 and §4.3 report for one program."""

    program_name: str
    ci_census: PairCensus
    cs_census: PairCensus
    spurious_pairs: int
    spurious_by_output: Dict[OutputPort, Set[PointsToPair]]
    indirect_diffs: List[IndirectOpDiff] = field(default_factory=list)

    @property
    def total_insensitive(self) -> int:
        return self.ci_census.total

    @property
    def total_sensitive(self) -> int:
        return self.cs_census.total

    @property
    def percent_spurious(self) -> float:
        """Figure 6's final column: spurious pairs as a percentage of
        the context-insensitive total."""
        total = self.ci_census.total
        return 100.0 * self.spurious_pairs / total if total else 0.0

    @property
    def indirect_ops_identical(self) -> bool:
        """§4.3: "the results for indirect memory references are
        identical to the context-insensitive results"."""
        return not self.indirect_diffs


def _check_same_program(ci: AnalysisResult, cs: AnalysisResult) -> None:
    if ci.program is not cs.program:
        raise AnalysisError("comparing analyses of different programs")
    if ci.flavor != "insensitive":
        raise AnalysisError(f"first result must be context-insensitive, "
                            f"got {ci.flavor!r}")
    if cs.flavor != "sensitive":
        raise AnalysisError(f"second result must be context-sensitive, "
                            f"got {cs.flavor!r}")


def spurious_pairs(ci: AnalysisResult, cs: AnalysisResult
                   ) -> Dict[OutputPort, Set[PointsToPair]]:
    """Per-output CI ∖ CS pair sets (only non-empty entries)."""
    _check_same_program(ci, cs)
    spurious: Dict[OutputPort, Set[PointsToPair]] = {}
    for output, pairs in ci.solution.items():
        extra = pairs - cs.solution.raw_pairs(output)
        if extra:
            spurious[output] = extra
    return spurious


def spurious_breakdown(ci: AnalysisResult, cs: AnalysisResult) -> Breakdown:
    """Figure 7's right half: path × referent types of spurious pairs."""
    breakdown: Breakdown = {}
    for pairs in spurious_pairs(ci, cs).values():
        for pair in pairs:
            key = (pair.path.report_category, pair.referent.report_category)
            breakdown[key] = breakdown.get(key, 0) + 1
    return breakdown


def compare_results(ci: AnalysisResult, cs: AnalysisResult
                    ) -> ComparisonReport:
    """Build the Figure 6 / §4.3 report for one program."""
    _check_same_program(ci, cs)
    by_output = spurious_pairs(ci, cs)
    # Sanity: CS must be a refinement of CI (it only removes pairs).
    for output, pairs in cs.solution.items():
        unsound = pairs - ci.solution.raw_pairs(output)
        if unsound:
            raise AnalysisError(
                f"context-sensitive result is not a subset of the "
                f"context-insensitive result at {output!r}: {unsound!r}")
    diffs: List[IndirectOpDiff] = []
    for node in indirect_operations(ci.program):
        ci_locs = ci.op_locations(node)
        cs_locs = cs.op_locations(node)
        if ci_locs != cs_locs:
            diffs.append(IndirectOpDiff(node, ci_locs, cs_locs))
    return ComparisonReport(
        program_name=ci.program.name,
        ci_census=pair_census(ci),
        cs_census=pair_census(cs),
        spurious_pairs=sum(len(p) for p in by_output.values()),
        spurious_by_output=by_output,
        indirect_diffs=diffs,
    )
