"""Every metric the paper's evaluation reports.

* :func:`program_sizes` — Figure 2 (source lines, VDG nodes,
  alias-related outputs).
* :func:`pair_census` — Figures 3 and 6 (points-to pairs by output
  type: pointer / function / aggregate / store).
* :func:`indirect_op_stats` — Figure 4 (locations referenced/modified
  by indirect reads and writes: 1/2/3/≥4 histogram, max, average).
* :func:`pair_breakdown` — Figure 7 (pairs by path type × referent
  type).
* :func:`pruning_coverage` — the §4.2 text claims (87% of indirect ops
  single-location; 9% of reads / 7% of writes need assumptions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import AnalysisError
from ..ir.graph import Program
from ..ir.nodes import LookupNode, Node, UpdateNode, ValueTag
from .common import AnalysisResult


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------


@dataclass
class ProgramSizes:
    """One row of Figure 2."""

    name: str
    source_lines: int
    vdg_nodes: int
    alias_related_outputs: int


def program_sizes(program: Program) -> ProgramSizes:
    return ProgramSizes(
        name=program.name,
        source_lines=program.source_lines,
        vdg_nodes=program.node_count(),
        alias_related_outputs=program.alias_related_output_count(),
    )


# ---------------------------------------------------------------------------
# Figures 3 and 6 (pair census by output type)
# ---------------------------------------------------------------------------


@dataclass
class PairCensus:
    """One row of Figure 3 (or the first five columns of Figure 6)."""

    pointer: int = 0
    function: int = 0
    aggregate: int = 0
    store: int = 0
    other: int = 0  # pairs on scalar-tagged outputs (should stay zero)

    @property
    def total(self) -> int:
        return (self.pointer + self.function + self.aggregate
                + self.store + self.other)


_TAG_FIELD = {
    ValueTag.POINTER: "pointer",
    ValueTag.FUNCTION: "function",
    ValueTag.AGGREGATE: "aggregate",
    ValueTag.STORE: "store",
    ValueTag.SCALAR: "other",
}


def pair_census(result: AnalysisResult) -> PairCensus:
    census = PairCensus()
    for output, pairs in result.solution.items():
        bucket = _TAG_FIELD[output.tag]
        setattr(census, bucket, getattr(census, bucket) + len(pairs))
    return census


# ---------------------------------------------------------------------------
# Figure 4 (indirect memory operations)
# ---------------------------------------------------------------------------


@dataclass
class IndirectOpStats:
    """One (program, read-or-write) row of Figure 4."""

    kind: str                 # "read" or "write"
    total: int = 0
    one: int = 0              # operations referencing exactly 1 location
    two: int = 0
    three: int = 0
    four_plus: int = 0
    zero: int = 0             # e.g. dereferences of the null pointer only
    max_locations: int = 0
    sum_locations: int = 0

    @property
    def avg(self) -> float:
        """Average locations per op, over *all* ops (the paper's
        backprop row averages 0.97 because one read references only the
        null pointer)."""
        return self.sum_locations / self.total if self.total else 0.0

    def record(self, count: int) -> None:
        self.total += 1
        self.sum_locations += count
        self.max_locations = max(self.max_locations, count)
        if count == 0:
            self.zero += 1
        elif count == 1:
            self.one += 1
        elif count == 2:
            self.two += 1
        elif count == 3:
            self.three += 1
        else:
            self.four_plus += 1


def indirect_operations(program: Program,
                        kind: Optional[str] = None) -> Iterable[Node]:
    """Every indirect lookup/update, optionally filtered by kind."""
    for graph in program.functions.values():
        for node in graph.memory_operations():
            if not node.is_indirect:
                continue
            if kind == "read" and not isinstance(node, LookupNode):
                continue
            if kind == "write" and not isinstance(node, UpdateNode):
                continue
            yield node


def indirect_op_stats(result: AnalysisResult,
                      kind: str) -> IndirectOpStats:
    if kind not in ("read", "write"):
        raise AnalysisError(f"kind must be 'read' or 'write', not {kind!r}")
    stats = IndirectOpStats(kind=kind)
    for node in indirect_operations(result.program, kind):
        stats.record(len(result.op_locations(node)))
    return stats


# ---------------------------------------------------------------------------
# Figure 7 (path type × referent type breakdown)
# ---------------------------------------------------------------------------

PATH_CATEGORIES = ("offset", "local", "global", "heap")
REFERENT_CATEGORIES = ("function", "local", "global", "heap")

Breakdown = Dict[Tuple[str, str], int]


def pair_breakdown(result: AnalysisResult) -> Breakdown:
    """Counts of (path category, referent category) over every pair on
    every output (pairs appearing on several outputs count once each,
    as in the paper's totals)."""
    breakdown: Breakdown = {}
    for _, pairs in result.solution.items():
        for pair in pairs:
            key = (pair.path.report_category, pair.referent.report_category)
            breakdown[key] = breakdown.get(key, 0) + 1
    return breakdown


def breakdown_percentages(breakdown: Breakdown) -> Dict[Tuple[str, str], float]:
    total = sum(breakdown.values())
    if total == 0:
        return {}
    return {key: 100.0 * count / total for key, count in breakdown.items()}


# ---------------------------------------------------------------------------
# §4.2 (CI-based pruning coverage)
# ---------------------------------------------------------------------------


@dataclass
class StructureStats:
    """§5.1.2's structural explanations, made measurable.

    The paper attributes the lack of spurious pairs to benchmark
    structure: "these programs have relatively sparse call graphs;
    procedures average 4.2 callers, 54% of procedures have only one
    caller", and "these programs exhibit only shallow nesting of
    pointer datatypes; the vast majority of pointers are single-level
    (i.e., they reference scalar datatypes)".
    """

    procedures: int = 0
    called_procedures: int = 0
    call_edges: int = 0             # distinct (call site, callee) pairs
    single_caller: int = 0
    value_pairs: int = 0            # direct pairs on value outputs
    multi_level_pairs: int = 0      # referent itself holds pointers

    @property
    def avg_callers(self) -> float:
        """Call sites per called procedure (paper: 4.2)."""
        return (self.call_edges / self.called_procedures
                if self.called_procedures else 0.0)

    @property
    def single_caller_fraction(self) -> float:
        """Procedures with exactly one caller (paper: 54%)."""
        return (self.single_caller / self.called_procedures
                if self.called_procedures else 0.0)

    @property
    def multi_level_fraction(self) -> float:
        """Pointers whose referent holds further pointers — the
        complement of the paper's "single-level" majority."""
        return (self.multi_level_pairs / self.value_pairs
                if self.value_pairs else 0.0)


def structure_stats(result: AnalysisResult) -> StructureStats:
    """Compute the §5.1.2 structural statistics from a CI result."""
    stats = StructureStats()
    program = result.program
    stats.procedures = len(program.functions)
    caller_counts: Dict[str, int] = {}
    for call, callee in result.callgraph.edges():
        caller_counts[callee.name] = caller_counts.get(callee.name, 0) + 1
        stats.call_edges += 1
    stats.called_procedures = len(caller_counts)
    stats.single_caller = sum(1 for c in caller_counts.values() if c == 1)

    # A referent "holds pointers" when some store pair's path extends
    # it: dereferencing the pointer can yield another pointer.
    pointerish_prefixes = set()
    for output, pairs in result.solution.items():
        if output.tag is not ValueTag.STORE:
            continue
        for pair in pairs:
            path = pair.path
            for cut in range(len(path.ops) + 1):
                pointerish_prefixes.add((path.base, path.ops[:cut]))
    for output, pairs in result.solution.items():
        if output.tag is ValueTag.STORE:
            continue
        for pair in pairs:
            if not pair.is_direct:
                continue
            stats.value_pairs += 1
            referent = pair.referent
            if (referent.base, referent.ops) in pointerish_prefixes:
                stats.multi_level_pairs += 1
    return stats


@dataclass
class ContextStats:
    """How many contexts the CS analysis actually distinguished.

    A procedure's context count is the number of distinct assumption
    sets observed across its formals' qualified pairs — the quantity
    whose worst case is exponential (§4.1) and which the call-graph
    sparsity of §5.1.2 keeps small in practice.
    """

    per_procedure: Dict[str, int] = field(default_factory=dict)

    @property
    def max_contexts(self) -> int:
        return max(self.per_procedure.values(), default=0)

    @property
    def avg_contexts(self) -> float:
        if not self.per_procedure:
            return 0.0
        return sum(self.per_procedure.values()) / len(self.per_procedure)


def context_stats(cs_result: AnalysisResult) -> ContextStats:
    """Distinct assumption-set counts per procedure (CS results only)."""
    qualified = cs_result.extras.get("qualified")
    if qualified is None:
        raise AnalysisError("context statistics need a context-sensitive "
                            "result")
    stats = ContextStats()
    for graph in cs_result.program.functions.values():
        contexts = set()
        formals = list(graph.formals) + [graph.store_formal]
        for formal in formals:
            for pair in qualified.plain_pairs(formal):
                for assumptions in qualified.assumption_sets(formal, pair):
                    contexts.add(assumptions)
        stats.per_procedure[graph.name] = len(contexts)
    return stats


@dataclass
class PruningCoverage:
    """How widely the §4.2 optimizations apply, from the CI result."""

    indirect_total: int = 0
    single_location: int = 0           # paper: 87% of indirect ops
    reads_total: int = 0
    reads_needing_assumptions: int = 0  # paper: 9% of indirect reads
    writes_total: int = 0
    writes_needing_assumptions: int = 0  # paper: 7% of indirect writes

    @property
    def single_location_fraction(self) -> float:
        return (self.single_location / self.indirect_total
                if self.indirect_total else 0.0)

    @property
    def reads_fraction(self) -> float:
        return (self.reads_needing_assumptions / self.reads_total
                if self.reads_total else 0.0)

    @property
    def writes_fraction(self) -> float:
        return (self.writes_needing_assumptions / self.writes_total
                if self.writes_total else 0.0)


def pruning_coverage(ci_result: AnalysisResult) -> PruningCoverage:
    """§4.2: an indirect op that CI proves single-location needs no
    location assumptions; of the rest, only those moving pointer or
    function values affect the analysis and must introduce them."""
    coverage = PruningCoverage()
    for node in indirect_operations(ci_result.program):
        count = len(ci_result.op_locations(node))
        coverage.indirect_total += 1
        single = count <= 1
        if single:
            coverage.single_location += 1
        if isinstance(node, LookupNode):
            coverage.reads_total += 1
            if not single and node.out.alias_related:
                coverage.reads_needing_assumptions += 1
        else:
            coverage.writes_total += 1
            value_src = node.value.source
            moves_pointers = value_src is not None and value_src.alias_related
            if not single and moves_pointers:
                coverage.writes_needing_assumptions += 1
    return coverage
