"""Independent fixpoint verification of a points-to solution.

The worklist algorithms are incremental and event-driven; a missed
notification (say, a forgotten repropagation case at indirect calls)
would silently produce a non-fixpoint — too few pairs, i.e. an
*unsound* result.  This module re-checks a finished solution from
scratch, with straight-line code that shares nothing with the solver:
for every node it recomputes the expected output pairs from the input
pairs (Figure 1's transfer functions in their declarative reading) and
reports anything missing.

Used by the test suite (including the property-based tests) as an
oracle: ``verify_solution`` must return no violations for any program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from ..memory.access import EMPTY_OFFSET, INDEX, AccessPath
from ..memory.pairs import PointsToPair, direct, pair as make_pair
from ..memory.relations import dom, strong_dom
from ..ir.graph import Program
from ..ir.nodes import (
    AddressNode,
    CallNode,
    ConstNode,
    EntryNode,
    LookupNode,
    MergeNode,
    Node,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    ReturnNode,
    UpdateNode,
)
from .common import AnalysisResult


@dataclass
class Violation:
    """One missing pair: the fixpoint inequality that failed."""

    output: OutputPort
    missing: PointsToPair
    reason: str

    def __str__(self) -> str:
        node = self.output.node
        return (f"{node.graph.name}:{node!r}.{self.output.name} misses "
                f"{self.missing!r} ({self.reason})")


class _Checker:
    def __init__(self, result: AnalysisResult) -> None:
        self.result = result
        self.program = result.program
        self.violations: List[Violation] = []

    def pairs(self, port) -> Set[PointsToPair]:
        if port is None or port.source is None:
            return set()
        return set(self.result.solution.raw_pairs(port.source))

    def expect(self, output: OutputPort, wanted: Iterable[PointsToPair],
               reason: str) -> None:
        have = self.result.solution.raw_pairs(output)
        for pair in wanted:
            if pair not in have:
                self.violations.append(Violation(output, pair, reason))

    # -- per-node checks ---------------------------------------------------

    def check(self) -> List[Violation]:
        self._check_seeds()
        for graph in self.program.functions.values():
            for node in graph.nodes:
                self._check_node(node)
        return self.violations

    def _check_seeds(self) -> None:
        for node in self.program.address_nodes():
            self.expect(node.out, [direct(node.path)],
                        "address seed (Figure 1 initialization)")
        for graph in self.program.root_graphs():
            self.expect(graph.store_formal, self.program.initial_store,
                        "root entry store seed")
        for output, pair in self.program.seeded_values:
            self.expect(output, [pair], "explicit value seed")

    def _check_node(self, node: Node) -> None:
        if isinstance(node, LookupNode):
            self._check_lookup(node)
        elif isinstance(node, UpdateNode):
            self._check_update(node)
        elif isinstance(node, CallNode):
            self._check_call(node)
        elif isinstance(node, ReturnNode):
            self._check_return(node)
        elif isinstance(node, MergeNode):
            self._check_merge(node)
        elif isinstance(node, PrimopNode):
            self._check_primop(node)
        # entry/const/address have no input-derived obligations here.

    def _check_lookup(self, node: LookupNode) -> None:
        store_pairs = self.pairs(node.store)
        for lp in self.pairs(node.loc):
            if lp.path is not EMPTY_OFFSET:
                continue
            for sp in store_pairs:
                if dom(lp.referent, sp.path):
                    self.expect(node.out,
                                [make_pair(sp.path.subtract(lp.referent),
                                           sp.referent)],
                                "lookup transfer")

    def _check_update(self, node: UpdateNode) -> None:
        loc_pairs = [p for p in self.pairs(node.loc)
                     if p.path is EMPTY_OFFSET]
        value_pairs = self.pairs(node.value)
        store_pairs = self.pairs(node.store)
        for lp in loc_pairs:
            for vp in value_pairs:
                self.expect(node.ostore,
                            [make_pair(lp.referent.append(vp.path),
                                       vp.referent)],
                            "update writes value")
        for sp in store_pairs:
            survives = any(not strong_dom(lp.referent, sp.path)
                           for lp in loc_pairs)
            if survives:
                self.expect(node.ostore, [sp], "update propagates store")

    def _check_call(self, node: CallNode) -> None:
        for callee in self.result.callgraph.callees(node):
            for index, arg in enumerate(node.args):
                formal = callee.corresponding_formal(index)
                if formal is not None:
                    self.expect(formal, self.pairs(arg),
                                "actual flows to formal")
            self.expect(callee.store_formal, self.pairs(node.store),
                        "store flows to callee")
        # Callee discovery itself: every resolvable function value must
        # be an edge in the call graph.
        from .common import resolve_function_value
        callees = self.result.callgraph.callees(node)
        for fp in self.pairs(node.fcn):
            if fp.path is not EMPTY_OFFSET:
                continue
            target = resolve_function_value(self.program, fp.referent)
            if target is not None and target not in callees:
                self.violations.append(Violation(
                    node.out, fp, "undiscovered call edge"))

    def _check_return(self, node: ReturnNode) -> None:
        for call in self.result.callgraph.callers(node.graph):
            if node.value is not None:
                self.expect(call.out, self.pairs(node.value),
                            "return value flows to caller")
            self.expect(call.ostore, self.pairs(node.store),
                        "return store flows to caller")

    def _check_merge(self, node: MergeNode) -> None:
        for branch in node.branches:
            self.expect(node.out, self.pairs(branch), "merge union")

    def _check_primop(self, node: PrimopNode) -> None:
        semantics = node.semantics
        if semantics is PrimopSemantics.OPAQUE:
            return
        if semantics is PrimopSemantics.COPY:
            operands = (node.operands if node.copy_operand is None
                        else [node.operands[node.copy_operand]])
            for operand in operands:
                self.expect(node.out, self.pairs(operand), "copy")
            return
        (operand,) = node.operands
        for p in self.pairs(operand):
            if semantics is PrimopSemantics.FIELD:
                if p.path is EMPTY_OFFSET:
                    self.expect(node.out,
                                [direct(p.referent.extend(node.field_op))],
                                "field address")
            elif semantics is PrimopSemantics.INDEX:
                if p.path is EMPTY_OFFSET:
                    self.expect(node.out,
                                [direct(p.referent.extend(INDEX))],
                                "index address")
            elif semantics is PrimopSemantics.EXTRACT:
                path = p.path
                if path.base is None and path.ops \
                        and path.ops[0] is node.field_op:
                    self.expect(node.out,
                                [make_pair(AccessPath(None, path.ops[1:]),
                                           p.referent)],
                                "member extract")


def verify_solution(result: AnalysisResult) -> List[Violation]:
    """All fixpoint violations of a (context-insensitive) solution.

    Applies to the context-insensitive result and to the *stripped*
    context-sensitive result, because stripping a correct CS solution
    yields a CI-style fixpoint only at intraprocedural nodes — for a
    CS result the interprocedural checks are skipped (that is where
    context-sensitivity legitimately removes flows).
    """
    checker = _Checker(result)
    if result.flavor == "sensitive":
        checker._check_seeds()
        for graph in result.program.functions.values():
            for node in graph.nodes:
                if isinstance(node, (LookupNode, UpdateNode, MergeNode,
                                     PrimopNode)):
                    checker._check_node(node)
        return checker.violations
    return checker.check()


def assert_fixpoint(result: AnalysisResult) -> None:
    """Raise ``AssertionError`` listing any violations (test helper)."""
    violations = verify_solution(result)
    if violations:
        listing = "\n".join(f"  {v}" for v in violations[:20])
        raise AssertionError(
            f"{len(violations)} fixpoint violations:\n{listing}")


# ---------------------------------------------------------------------------
# Qualified-pair (context-sensitive) fixpoint verification
# ---------------------------------------------------------------------------


@dataclass
class QualifiedViolation:
    """One missing qualified pair: no stored assumption set is weak
    enough to justify a derivable consequence."""

    output: OutputPort
    missing: object                # PointsToPair
    assumptions: frozenset         # the naive derivation's assumption set
    reason: str

    def __str__(self) -> str:
        node = self.output.node
        return (f"{node.graph.name}:{node!r}.{self.output.name} misses "
                f"{self.missing!r} under ⊆{len(self.assumptions)} "
                f"assumptions ({self.reason})")


class _QualifiedChecker:
    """Declarative re-check of Figure 5's intraprocedural transfer
    functions over the *qualified* solution.

    For every consequence derivable from the stored input facts the
    solution must hold the same plain pair under **some** assumption
    set that is a subset of the naive derivation's — subsets arise
    legitimately from the subsumption rule and both §4.2 pruning
    optimizations (which only ever *weaken* assumption sets), so the
    tolerance is exact: a transfer function that drops or mangles
    facts still gets caught, while a correct optimized run verifies
    clean.  Interprocedural nodes are skipped for the same reason they
    are in :func:`verify_solution`'s sensitive branch: call/return
    flows are where context-sensitivity legitimately filters pairs.
    """

    def __init__(self, result: AnalysisResult) -> None:
        from .qualified import QualifiedSolution

        qualified = result.extras.get("qualified")
        if not isinstance(qualified, QualifiedSolution):
            raise ValueError(
                "result has no qualified solution in extras['qualified']; "
                "verify_qualified applies to sensitive-analysis results")
        self.qualified = qualified
        self.program = result.program
        self.violations: List[QualifiedViolation] = []

    def qpairs(self, port):
        if port is None or port.source is None:
            return ()
        return list(self.qualified.qualified_pairs(port.source))

    def expect(self, output: OutputPort, pair, assumptions,
               reason: str) -> None:
        for stored in self.qualified.assumption_sets(output, pair):
            if stored <= assumptions:
                return
        self.violations.append(
            QualifiedViolation(output, pair, assumptions, reason))

    # -- per-node checks ---------------------------------------------------

    def check(self) -> List[QualifiedViolation]:
        for graph in self.program.functions.values():
            for node in graph.nodes:
                if isinstance(node, LookupNode):
                    self._check_lookup(node)
                elif isinstance(node, UpdateNode):
                    self._check_update(node)
                elif isinstance(node, MergeNode):
                    self._check_merge(node)
                elif isinstance(node, PrimopNode):
                    self._check_primop(node)
        return self.violations

    def _check_lookup(self, node: LookupNode) -> None:
        store_pairs = self.qpairs(node.store)
        for lq in self.qpairs(node.loc):
            if lq.pair.path is not EMPTY_OFFSET:
                continue
            r_l = lq.pair.referent
            for sq in store_pairs:
                if dom(r_l, sq.pair.path):
                    self.expect(
                        node.out,
                        make_pair(sq.pair.path.subtract(r_l),
                                  sq.pair.referent),
                        lq.assumptions | sq.assumptions,
                        "qualified lookup transfer")

    def _check_update(self, node: UpdateNode) -> None:
        loc_pairs = [lq for lq in self.qpairs(node.loc)
                     if lq.pair.path is EMPTY_OFFSET]
        for lq in loc_pairs:
            for vq in self.qpairs(node.value):
                self.expect(
                    node.ostore,
                    make_pair(lq.pair.referent.append(vq.pair.path),
                              vq.pair.referent),
                    lq.assumptions | vq.assumptions,
                    "qualified update writes value")
        # §4.1's survive rule: nothing flows until a location pair has
        # arrived (the CWZ90 delay), then each non-overwriting location
        # pair contributes one qualified survival.
        for sq in self.qpairs(node.store):
            for lq in loc_pairs:
                if strong_dom(lq.pair.referent, sq.pair.path):
                    continue
                self.expect(node.ostore, sq.pair,
                            lq.assumptions | sq.assumptions,
                            "qualified update propagates store")

    def _check_merge(self, node: MergeNode) -> None:
        for branch in node.branches:
            for qp in self.qpairs(branch):
                self.expect(node.out, qp.pair, qp.assumptions,
                            "qualified merge union")

    def _check_primop(self, node: PrimopNode) -> None:
        semantics = node.semantics
        if semantics is PrimopSemantics.OPAQUE:
            return
        if semantics is PrimopSemantics.COPY:
            operands = (node.operands if node.copy_operand is None
                        else [node.operands[node.copy_operand]])
            for operand in operands:
                for qp in self.qpairs(operand):
                    self.expect(node.out, qp.pair, qp.assumptions,
                                "qualified copy")
            return
        (operand,) = node.operands
        for qp in self.qpairs(operand):
            path = qp.pair.path
            if semantics is PrimopSemantics.FIELD:
                if path is EMPTY_OFFSET:
                    self.expect(
                        node.out,
                        direct(qp.pair.referent.extend(node.field_op)),
                        qp.assumptions, "qualified field address")
            elif semantics is PrimopSemantics.INDEX:
                if path is EMPTY_OFFSET:
                    self.expect(node.out,
                                direct(qp.pair.referent.extend(INDEX)),
                                qp.assumptions, "qualified index address")
            elif semantics is PrimopSemantics.EXTRACT:
                if path.base is None and path.ops \
                        and path.ops[0] is node.field_op:
                    self.expect(
                        node.out,
                        make_pair(AccessPath(None, path.ops[1:]),
                                  qp.pair.referent),
                        qp.assumptions, "qualified member extract")


def verify_qualified(result: AnalysisResult) -> List[QualifiedViolation]:
    """Fixpoint violations of a context-sensitive *qualified* solution.

    Complements :func:`verify_solution` (which only sees the stripped
    pair sets): this walks the assumption-qualified facts in
    ``result.extras['qualified']`` and re-derives every intraprocedural
    consequence, so a CS transfer function that strips, drops, or
    mis-qualifies pairs is caught even when the stripped solution
    happens to look plausible.
    """
    return _QualifiedChecker(result).check()


def assert_qualified_fixpoint(result: AnalysisResult) -> None:
    """Raise ``AssertionError`` listing qualified violations."""
    violations = verify_qualified(result)
    if violations:
        listing = "\n".join(f"  {v}" for v in violations[:20])
        raise AssertionError(
            f"{len(violations)} qualified fixpoint violations:\n{listing}")
