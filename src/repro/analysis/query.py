"""Context-specific queries over the context-sensitive result.

The paper (§4.1): "Some context-sensitive analyses [PLR92, LRZ93]
prefer to use the qualified information directly; this would be easy
to accommodate."  This module accommodates it: instead of stripping
assumption sets, clients can ask

* :func:`pairs_under` — which pairs hold on an output *given* assumed
  facts about the enclosing procedure's formals; and
* :func:`project_at_call` — which pairs hold on a callee output when
  the procedure is entered from one specific call site (assumptions
  checked against the actuals, recursively through the callers'
  own assumption sets, exactly as ``propagate-return`` would).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set, Tuple

from ..errors import AnalysisError
from ..memory.pairs import PointsToPair
from ..ir.graph import FunctionGraph
from ..ir.nodes import CallNode, LookupNode, Node, OutputPort, UpdateNode
from .common import AnalysisResult
from .qualified import Assumption, QualifiedSolution


def _qualified(result: AnalysisResult) -> QualifiedSolution:
    qualified = result.extras.get("qualified")
    if qualified is None:
        raise AnalysisError(
            "context queries need a context-sensitive result "
            "(analyze with sensitivity='sensitive')")
    return qualified


def pairs_under(result: AnalysisResult, output: OutputPort,
                context: Iterable[Assumption]) -> Set[PointsToPair]:
    """Pairs holding on ``output`` under the given entry facts.

    ``context`` lists (formal output, pair) facts assumed to hold on
    entry to the enclosing procedure; a qualified pair holds when its
    assumption set is a subset of the context.  The empty context
    returns only the unconditional pairs; stripping corresponds to the
    union over all contexts.
    """
    qualified = _qualified(result)
    assumed: FrozenSet[Assumption] = frozenset(context)
    held: Set[PointsToPair] = set()
    for pair in qualified.plain_pairs(output):
        for assumptions in qualified.assumption_sets(output, pair):
            if assumptions <= assumed:
                held.add(pair)
                break
    return held


def _satisfiable_at(qualified: QualifiedSolution, call: CallNode,
                    callee: FunctionGraph,
                    assumptions: FrozenSet[Assumption],
                    depth: int) -> bool:
    """Whether an assumption set is satisfiable entering from ``call``.

    Each assumption (formal, pair) must hold on the corresponding
    actual; the actual's own assumption sets must in turn be
    satisfiable at the *caller's* entry, which the stripped result
    already guarantees for depth-0 checks — one level of recursion
    keeps the check conservative but call-site-accurate.
    """
    for formal, assumed_pair in assumptions:
        if formal.node.graph is not callee:
            return False
        actual = _actual_for(call, callee, formal)
        if actual is None or actual.source is None:
            return False
        chains = qualified.assumption_sets(actual.source, assumed_pair)
        if not chains:
            return False
        # depth-limited: accept if any supporting set exists (the
        # analysis only created them when satisfiable somewhere).
        del depth
    return True


def _actual_for(call: CallNode, callee: FunctionGraph, formal):
    if formal is callee.store_formal:
        return call.store
    for index, callee_formal in enumerate(callee.formals):
        if callee_formal is formal:
            return call.args[index] if index < len(call.args) else None
    return None


def project_at_call(result: AnalysisResult, output: OutputPort,
                    call: CallNode) -> Set[PointsToPair]:
    """Pairs holding on a callee's output when entered from ``call``.

    The output must belong to a procedure the call invokes.  This is
    the per-context view the paper's stripped Figure 6 numbers hide:
    inside a shared procedure, each call site sees only its own slice.
    """
    qualified = _qualified(result)
    callee = output.node.graph
    if callee not in result.callgraph.callees(call):
        raise AnalysisError(
            f"{call!r} does not invoke {callee.name!r}")
    held: Set[PointsToPair] = set()
    for pair in qualified.plain_pairs(output):
        for assumptions in qualified.assumption_sets(output, pair):
            if _satisfiable_at(qualified, call, callee, assumptions,
                               depth=1):
                held.add(pair)
                break
    return held


def op_locations_at_call(result: AnalysisResult, node: Node,
                         call: CallNode) -> Set:
    """Per-call-site view of a memory operation inside a callee."""
    if not isinstance(node, (LookupNode, UpdateNode)):
        raise AnalysisError(f"{node!r} is not a memory operation")
    src = node.loc.source
    if src is None:
        raise AnalysisError(f"{node!r} has a dangling loc input")
    return {pair.referent for pair in project_at_call(result, src, call)
            if pair.is_direct}


def witnessing_calls(result: AnalysisResult, output: OutputPort,
                     pair: PointsToPair) -> Set[CallNode]:
    """Call sites from which a pair on a callee output actually holds.

    The checker follow-up question: given a context-insensitive (or
    stripped) finding inside a shared procedure, *which callers* can
    realize the hazardous fact?  Returns the calls into the output's
    procedure under which ``pair`` survives :func:`project_at_call`;
    an empty set for a pair the stripped view reports means every
    context the sensitive analysis distinguished refutes it.  Root
    procedures (no callers) have no per-call view — the pair is
    attributed to the entry context, so this returns the empty set
    there too.
    """
    graph = output.node.graph
    witnesses: Set[CallNode] = set()
    for call in result.callgraph.callers(graph):
        if pair in project_at_call(result, output, call):
            witnesses.add(call)
    return witnesses
