"""SCC condensation of the port dependency graph.

The ``"scc"`` schedule processes worklist ports in topological order
of the strongly connected components of the *port dependency graph*:
facts flow from an input port, through its node's transfer function,
to the node's outputs, and on to every consumer of those outputs.
Draining an upstream component to saturation before its downstream
consumers run means each downstream transfer sees its inputs whole —
the classic topology-aware scheduling of scalable dataflow solvers —
while round-robin rotation inside a component keeps cyclic regions
(loops, recursion) fair.

The graph condensed here is *static*: intraprocedural edges come from
the value dependence edges themselves, and interprocedural edges are
added for calls whose function value is a syntactically evident
function address (the common direct-call case).  Indirect calls
resolved only at analysis time fall outside the condensation; when
such an edge pushes facts into an already-drained earlier component,
the SCC worklists simply re-activate it (see
:class:`repro.analysis.common._SccQueue`) — priority is a heuristic,
never a soundness obligation.

The computed order is cached per program (``Program.extras``), so the
CI and CS passes — and repeated runs — condense once.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import AddressNode, CallNode, InputPort, ReturnNode
from ..memory.base import LocationKind

#: Key under which a program's (order, scc count) lives in
#: ``Program.extras``.
EXTRAS_KEY = "scc_order"

#: Key under which a program's (port → (level, scc), level count,
#: scc count) lives in ``Program.extras``.
LEVELS_KEY = "scc_levels"


def _static_callee(program: Program, call: CallNode):
    """The callee of a syntactically direct call, else ``None``."""
    source = call.fcn.source
    if source is None or not isinstance(source.node, AddressNode):
        return None
    path = source.node.path
    if path.ops or path.base is None:
        return None
    if path.base.kind is not LocationKind.FUNCTION:
        return None
    return program.function_for_location(path.base)


def _successors(program: Program, node, callers: Dict[FunctionGraph,
                                                      List[CallNode]]
                ) -> Iterator[InputPort]:
    """Input ports facts at any of ``node``'s inputs can reach next."""
    for output in node.outputs:
        yield from output.consumers
    if isinstance(node, CallNode):
        callee = _static_callee(program, node)
        if callee is not None and callee.entry is not None:
            yield from callee.store_formal.consumers
            for formal in callee.formals:
                yield from formal.consumers
    elif isinstance(node, ReturnNode):
        for call in callers.get(node.graph, ()):
            yield from call.out.consumers
            yield from call.ostore.consumers


def compute_port_scc_order(program: Program
                           ) -> Tuple[Dict[InputPort, int], int]:
    """Condense the port dependency graph into SCCs.

    Returns ``(order, count)``: ``order`` maps every input port to the
    topological index of its SCC (0 runs first), ``count`` is the
    number of SCCs.
    """
    callers: Dict[FunctionGraph, List[CallNode]] = {}
    for node in program.all_nodes():
        if isinstance(node, CallNode):
            callee = _static_callee(program, node)
            if callee is not None:
                callers.setdefault(callee, []).append(node)

    ports: List[InputPort] = []
    adjacency: Dict[InputPort, List[InputPort]] = {}
    for node in program.all_nodes():
        successors = None
        for port in node.inputs:
            if successors is None:
                successors = list(_successors(program, node, callers))
            ports.append(port)
            adjacency[port] = successors

    # Iterative Tarjan.  SCCs pop in reverse topological order, so a
    # component's topological index is (count - 1 - pop order).
    indices: Dict[InputPort, int] = {}
    lowlinks: Dict[InputPort, int] = {}
    on_stack: Dict[InputPort, bool] = {}
    stack: List[InputPort] = []
    pop_order: Dict[InputPort, int] = {}
    sccs_popped = 0
    counter = 0

    for root in ports:
        if root in indices:
            continue
        work: List[Tuple[InputPort, int]] = [(root, 0)]
        while work:
            vertex, child = work[-1]
            if child == 0:
                indices[vertex] = lowlinks[vertex] = counter
                counter += 1
                stack.append(vertex)
                on_stack[vertex] = True
            advanced = False
            successors = adjacency[vertex]
            while child < len(successors):
                succ = successors[child]
                child += 1
                if succ not in indices:
                    work[-1] = (vertex, child)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack.get(succ):
                    if indices[succ] < lowlinks[vertex]:
                        lowlinks[vertex] = indices[succ]
            if advanced:
                continue
            work.pop()
            if lowlinks[vertex] == indices[vertex]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    pop_order[member] = sccs_popped
                    if member is vertex:
                        break
                sccs_popped += 1
            if work:
                parent = work[-1][0]
                if lowlinks[vertex] < lowlinks[parent]:
                    lowlinks[parent] = lowlinks[vertex]

    order = {port: sccs_popped - 1 - pop_order[port] for port in ports}
    return order, sccs_popped


def port_scc_order(program: Program) -> Tuple[Dict[InputPort, int], int]:
    """Cached :func:`compute_port_scc_order` (one condensation per
    program, shared by the CI and CS passes)."""
    cached = program.extras.get(EXTRAS_KEY)
    if cached is None:
        cached = compute_port_scc_order(program)
        program.extras[EXTRAS_KEY] = cached
    return cached


def compute_port_scc_levels(program: Program
                            ) -> Tuple[Dict[InputPort, Tuple[int, int]],
                                       int, int]:
    """Topological *levels* of the SCC condensation.

    A level is the longest condensation path from any root to the SCC
    (roots sit at level 0), so two SCCs on the same level share no
    dependency path in the static port graph and can be solved
    concurrently — the shard boundary of ``--parallel-scc``.

    Returns ``(info, level_count, scc_count)`` where ``info`` maps
    every input port to ``(level, scc index)``.
    """
    order, count = port_scc_order(program)
    # Rebuild the port adjacency (cheap, linear) and sweep the
    # cross-SCC edges in topological order: because Tarjan's pop order
    # is reverse-topological, every edge goes from a lower to a higher
    # SCC index, so a single pass over ports sorted by SCC index sees
    # each component's predecessors finalized before its successors.
    callers: Dict[FunctionGraph, List[CallNode]] = {}
    for node in program.all_nodes():
        if isinstance(node, CallNode):
            callee = _static_callee(program, node)
            if callee is not None:
                callers.setdefault(callee, []).append(node)

    edges = set()
    ports: List[InputPort] = []
    for node in program.all_nodes():
        successors = None
        for port in node.inputs:
            ports.append(port)
            if successors is None:
                successors = list(_successors(program, node, callers))
            scc = order[port]
            for succ in successors:
                succ_scc = order[succ]
                if succ_scc != scc:
                    edges.add((scc, succ_scc))

    levels = [0] * count
    for scc, succ_scc in sorted(edges):
        depth = levels[scc] + 1
        if depth > levels[succ_scc]:
            levels[succ_scc] = depth

    level_count = max(levels) + 1 if levels else 0
    info = {port: (levels[order[port]], order[port]) for port in ports}
    return info, level_count, count


def port_scc_levels(program: Program
                    ) -> Tuple[Dict[InputPort, Tuple[int, int]], int, int]:
    """Cached :func:`compute_port_scc_levels`."""
    cached = program.extras.get(LEVELS_KEY)
    if cached is None:
        cached = compute_port_scc_levels(program)
        program.extras[LEVELS_KEY] = cached
    return cached
