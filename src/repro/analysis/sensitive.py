"""Maximally context-sensitive points-to analysis — the paper's Figure 5.

The goal (Section 4.1) is not a practical compromise but an empirical
*upper bound* on the precision of alias analysis in the points-to
framework: assumption-set-based contexts with no limit on assumption
set size, at a willingly exponential cost.

The algorithm is Figure 1 altered to propagate *qualified* points-to
pairs.  Assumptions are introduced and removed at procedure calls and
returns: when a pair ``p`` arrives at an actual, the corresponding
formal ``f`` of each callee receives ``p`` qualified by ``{(f, p)}``;
when a qualified pair reaches a return node, its assumptions are
checked against the pairs holding at each call site and it is
propagated only to satisfying callers, re-qualified by the Cartesian
product of the satisfying actual pairs' assumption sets
(``propagate-return``).  Lookups and updates chain assumptions (the
output pair may require multiple input pairs), and strong updates
qualify each surviving store pair with the non-overwriting location
pair that lets it survive.

Function values are handled context-insensitively, as in the paper
("we have not yet implemented this feature... our function pointer
results are context-insensitive"): the call graph is taken from a
prior context-insensitive run.

Section 4.2's optimizations, on by default and individually toggleable:

* the subsumption rule (inside :class:`QualifiedSolution`);
* no location assumptions at indirect operations the CI analysis
  proved single-target (87% of indirect ops in the paper's suite);
* store pairs the CI analysis proves unmodified by an update pass
  through without acquiring location assumptions.

Like the CI analysis, the solver accepts ``schedule="batched"``
(default; port-keyed worklist plus a per-port dispatch table bound
before the run) or ``schedule="fifo"`` (the original one-fact queue).
Because subsumption makes the amount of work order-dependent, the CS
counters vary between schedules; the *stripped* solution does not.
"""

from __future__ import annotations

import itertools
import time
from functools import partial
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import AnalysisError
from ..memory.access import EMPTY_OFFSET, INDEX, AccessPath
from ..memory.pairs import PointsToPair, direct, pair as make_pair
from ..memory.relations import dom, strong_dom
from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import (
    CallNode,
    InputPort,
    LookupNode,
    MergeNode,
    Node,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    ReturnNode,
    UpdateNode,
    input_roles,
)
from .common import (
    AnalysisResult,
    BatchedWorklist,
    CallGraph,
    Counters,
    PointsToSolution,
    SCCWorklist,
    Worklist,
    check_schedule,
)
from .insensitive import analyze_insensitive
from .scheduling import port_scc_order
from .qualified import (
    EMPTY_ASSUMPTIONS,
    Assumption,
    AssumptionSet,
    QualifiedPair,
    QualifiedSolution,
)

#: Per-fact handler bound to one (node, role, index) at dispatch-build time.
FactHandler = Callable[[QualifiedPair], None]


class PruneInfo:
    """What the CI result licenses the CS analysis to skip (§4.2)."""

    def __init__(self, ci_result: AnalysisResult, enabled: bool = True) -> None:
        self.enabled = enabled
        #: Memory operations whose location input resolves to exactly
        #: one location context-insensitively: the same location is
        #: referenced under all calling contexts (footnote 8's standard
        #: assumptions), so no assumptions about the location are needed.
        self.single_location_ops: Set[object] = set()
        #: Upper bound on the locations each update may modify.
        self.modified_bound: Dict[UpdateNode, FrozenSet[AccessPath]] = {}
        if not enabled:
            return
        for graph in ci_result.program.functions.values():
            for node in graph.memory_operations():
                locs = ci_result.solution.op_locations(node)
                if len(locs) == 1:
                    self.single_location_ops.add(node)
                if isinstance(node, UpdateNode):
                    self.modified_bound[node] = frozenset(locs)

    def is_single_location(self, node) -> bool:
        return self.enabled and node in self.single_location_ops

    def cannot_modify(self, node: UpdateNode, path: AccessPath) -> bool:
        """True when the CI bound proves ``node`` never writes ``path``,
        so a store pair at ``path`` passes through unqualified.

        Footnote 8's caveat applies: when the CI location set is empty
        the node never executes with a valid pointer, and the analyses'
        blocking semantics (store pairs delayed until a location
        arrives) must be preserved — so an empty bound disables the
        optimization rather than licensing a bypass.
        """
        if not self.enabled:
            return False
        bound = self.modified_bound.get(node)
        if not bound:
            return False
        return not any(dom(loc, path) for loc in bound)


class SensitiveAnalysis:
    """One run of the context-sensitive analysis over a program."""

    def __init__(self, program: Program,
                 ci_result: Optional[AnalysisResult] = None,
                 optimize: bool = True,
                 max_transfers: Optional[int] = None,
                 schedule: str = "batched") -> None:
        self.program = program
        if ci_result is None:
            ci_result = analyze_insensitive(program)
        elif ci_result.program is not program:
            raise AnalysisError("CI result belongs to a different program")
        self.ci_result = ci_result
        self.prune = PruneInfo(ci_result, enabled=optimize)
        self.solution = QualifiedSolution()
        #: The call graph is fixed from the CI pass (function values are
        #: context-insensitive in the paper's implementation too).
        self.callgraph = ci_result.callgraph
        self.counters = Counters()
        self.schedule = check_schedule(schedule)
        self._dispatch: Dict[InputPort, FactHandler] = {}
        if self.schedule == "scc":
            self.worklist: object = SCCWorklist(port_scc_order(program)[0])
        elif self.schedule == "batched":
            self.worklist = BatchedWorklist()
        else:
            self.worklist = Worklist()
        self.max_transfers = max_transfers

    # -- driver -------------------------------------------------------------

    def run(self) -> AnalysisResult:
        started = time.perf_counter()
        if self.schedule == "fifo":
            self._run_fifo()
        else:
            self._run_batched()
        elapsed = time.perf_counter() - started
        stripped = self.solution.strip(self.ci_result.solution.table)
        return AnalysisResult(
            program=self.program,
            solution=stripped,
            callgraph=self.callgraph,
            counters=self.counters,
            elapsed_seconds=elapsed,
            flavor="sensitive",
            extras={
                "phases": {"solve": elapsed},
                "qualified": self.solution,
                "ci_result": self.ci_result,
                "qualified_pair_count": self.solution.total_qualified_pairs(),
                "max_assumption_set_size":
                    self.solution.max_assumption_set_size(),
            },
        )

    def _run_fifo(self) -> None:
        self._seed()
        while self.worklist:
            input_port, fact = self.worklist.pop()
            self.counters.transfers += 1
            self.counters.batches += 1
            if (self.max_transfers is not None
                    and self.counters.transfers > self.max_transfers):
                raise AnalysisError(
                    f"context-sensitive analysis exceeded "
                    f"{self.max_transfers} transfer functions")
            self.flow_in(input_port, fact)

    def _run_batched(self) -> None:
        dispatch = self._dispatch
        self._seed()
        worklist = self.worklist
        counters = self.counters
        max_transfers = self.max_transfers
        bind_node = self._bind_node
        while worklist:
            input_port, facts = worklist.pop()
            counters.batches += 1
            counters.transfers += len(facts)
            if (max_transfers is not None
                    and counters.transfers > max_transfers):
                raise AnalysisError(
                    f"context-sensitive analysis exceeded "
                    f"{max_transfers} transfer functions")
            handler = dispatch.get(input_port)
            if handler is None:
                handler = bind_node(input_port)
            for qp in facts:
                handler(qp)

    def _seed(self) -> None:
        for node in self.program.address_nodes():
            self.flow_out(node.out, QualifiedPair(direct(node.path)))
        for graph in self.program.root_graphs():
            for pair in self.program.initial_store:
                self.flow_out(graph.store_formal, QualifiedPair(pair))
        for output, pair in self.program.seeded_values:
            self.flow_out(output, QualifiedPair(pair))

    # -- propagation -----------------------------------------------------------

    def flow_out(self, output: OutputPort, qp: QualifiedPair) -> None:
        self.counters.meets += 1
        if not self.solution.add(output, qp):
            return
        self.counters.pairs_added += 1
        for consumer in output.consumers:
            self.worklist.push(consumer, qp)

    def _qpairs(self, input_port: Optional[InputPort]) -> List[QualifiedPair]:
        if input_port is None or input_port.source is None:
            return []
        return list(self.solution.qualified_pairs(input_port.source))

    # -- batched dispatch ----------------------------------------------------

    def _bind_node(self, input_port: InputPort) -> FactHandler:
        """Bind handlers for one node, on the first fact to reach it.

        Unlike the CI analysis, handlers stay per-fact (assumption
        chaining and subsumption make batch-level set algebra
        unprofitable); the win is replacing the per-event
        ``isinstance`` chain and port-identity scans with a single
        dict lookup.  Binding is lazy per node — see the CI analysis
        for why that matters on small programs."""
        dispatch = self._dispatch
        for port, role, index in input_roles(input_port.node):
            dispatch[port] = self._make_handler(input_port.node, role, index)
        handler = dispatch.get(input_port)
        if handler is None:
            raise AnalysisError(
                f"qualified pair at unexpected node {input_port.node!r}")
        return handler

    def _make_handler(self, node: Node, role: str, index: int) -> FactHandler:
        if role == "lookup.loc":
            return partial(self._lookup_loc, node)
        if role == "lookup.store":
            return partial(self._lookup_store, node)
        if role == "update.loc":
            return partial(self._update_loc, node)
        if role == "update.store":
            return partial(self._update_store, node)
        if role == "update.value":
            return partial(self._update_value, node)
        if role == "call.fcn":
            return _consume_q  # call graph is fixed from the CI pass
        if role == "call.store":
            return partial(self._call_store, node)
        if role == "call.arg":
            return partial(self._call_arg, node, index)
        if role == "return.value":
            return partial(self._return_value, node)
        if role == "return.store":
            return partial(self._return_store, node)
        if role == "merge.pred":
            return _consume_q  # predicate is ignored (Figure 1)
        if role == "merge.branch":
            return partial(self.flow_out, node.out)
        if role == "primop.operand":
            return self._make_primop_handler(node, index)

        def handler(qp: QualifiedPair) -> None:
            raise AnalysisError(f"qualified pair at unexpected node {node!r}")
        return handler

    def _make_primop_handler(self, node: PrimopNode, index: int) -> FactHandler:
        semantics = node.semantics
        if semantics is PrimopSemantics.OPAQUE:
            return _consume_q
        if semantics is PrimopSemantics.COPY:
            if node.copy_operand is not None and index != node.copy_operand:
                return _consume_q  # consumed, but pairs do not flow
            return partial(self.flow_out, node.out)
        if semantics is PrimopSemantics.EXTRACT:
            return partial(self._primop_extract, node)
        if semantics is PrimopSemantics.FIELD:
            return partial(self._primop_field, node)
        if semantics is PrimopSemantics.INDEX:
            return partial(self._primop_index, node)

        def handler(qp: QualifiedPair) -> None:  # pragma: no cover
            raise AnalysisError(f"unknown primop semantics {semantics!r}")
        return handler

    # -- transfer functions (flow-in, Figure 5) -----------------------------------

    def flow_in(self, input_port: InputPort, qp: QualifiedPair) -> None:
        node = input_port.node
        if isinstance(node, LookupNode):
            self._flow_lookup(node, input_port, qp)
        elif isinstance(node, UpdateNode):
            self._flow_update(node, input_port, qp)
        elif isinstance(node, CallNode):
            self._flow_call(node, input_port, qp)
        elif isinstance(node, ReturnNode):
            self._flow_return(node, input_port, qp)
        elif isinstance(node, MergeNode):
            if input_port is not node.pred:
                self.flow_out(node.out, qp)
        elif isinstance(node, PrimopNode):
            self._flow_primop(node, input_port, qp)
        else:
            raise AnalysisError(f"qualified pair at unexpected node {node!r}")

    # .. lookup ..................................................................

    def _loc_assumptions(self, node, a_l: AssumptionSet) -> AssumptionSet:
        """Optimization 1 of §4.2: drop location assumptions at
        CI-proven single-target operations."""
        if self.prune.is_single_location(node):
            return EMPTY_ASSUMPTIONS
        return a_l

    def _flow_lookup(self, node: LookupNode, input_port: InputPort,
                     qp: QualifiedPair) -> None:
        if input_port is node.loc:
            self._lookup_loc(node, qp)
        elif input_port is node.store:
            self._lookup_store(node, qp)
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown lookup input {input_port!r}")

    def _lookup_loc(self, node: LookupNode, qp: QualifiedPair) -> None:
        if qp.pair.path is not EMPTY_OFFSET:
            return
        r_l = qp.pair.referent
        a_l = self._loc_assumptions(node, qp.assumptions)
        for sp in self._qpairs(node.store):
            if dom(r_l, sp.pair.path):
                self.flow_out(node.out, QualifiedPair(
                    make_pair(sp.pair.path.subtract(r_l), sp.pair.referent),
                    a_l | sp.assumptions))

    def _lookup_store(self, node: LookupNode, qp: QualifiedPair) -> None:
        for lp in self._qpairs(node.loc):
            if lp.pair.path is not EMPTY_OFFSET:
                continue
            r_l = lp.pair.referent
            if dom(r_l, qp.pair.path):
                a_l = self._loc_assumptions(node, lp.assumptions)
                self.flow_out(node.out, QualifiedPair(
                    make_pair(qp.pair.path.subtract(r_l), qp.pair.referent),
                    a_l | qp.assumptions))

    # .. update ..................................................................

    def _flow_update(self, node: UpdateNode, input_port: InputPort,
                     qp: QualifiedPair) -> None:
        if input_port is node.loc:
            self._update_loc(node, qp)
        elif input_port is node.store:
            self._update_store(node, qp)
        elif input_port is node.value:
            self._update_value(node, qp)
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown update input {input_port!r}")

    def _update_loc(self, node: UpdateNode, qp: QualifiedPair) -> None:
        if qp.pair.path is not EMPTY_OFFSET:
            return
        r_l = qp.pair.referent
        a_l = self._loc_assumptions(node, qp.assumptions)
        for vp in self._qpairs(node.value):
            self.flow_out(node.ostore, QualifiedPair(
                make_pair(r_l.append(vp.pair.path), vp.pair.referent),
                a_l | vp.assumptions))
        for sp in self._qpairs(node.store):
            self._update_survive(node, qp, sp)

    def _update_store(self, node: UpdateNode, qp: QualifiedPair) -> None:
        loc_pairs = [lp for lp in self._qpairs(node.loc)
                     if lp.pair.path is EMPTY_OFFSET]
        if self.prune.cannot_modify(node, qp.pair.path):
            # Optimization 2 of §4.2: CI proves this update never
            # writes the pair's path; pass it through unqualified.
            # The CWZ90 delay still applies: nothing flows until a
            # location pair has arrived (the loc-arrival rescan
            # releases delayed pairs), so the optimization cannot
            # change the solution, only the amount of work.
            if loc_pairs:
                self.flow_out(node.ostore, qp)
            return
        for lp in loc_pairs:
            self._update_survive(node, lp, qp)

    def _update_value(self, node: UpdateNode, qp: QualifiedPair) -> None:
        for lp in self._qpairs(node.loc):
            if lp.pair.path is not EMPTY_OFFSET:
                continue
            a_l = self._loc_assumptions(node, lp.assumptions)
            self.flow_out(node.ostore, QualifiedPair(
                make_pair(lp.pair.referent.append(qp.pair.path),
                          qp.pair.referent),
                a_l | qp.assumptions))

    def _update_survive(self, node: UpdateNode, lp: QualifiedPair,
                        sp: QualifiedPair) -> None:
        """Strong updates under context-sensitivity: a surviving store
        pair must be qualified by each non-overwriting location pair —
        "we must enumerate all of the ways in which the input pair
        could fail to be overwritten" (§4.1)."""
        if self.prune.cannot_modify(node, sp.pair.path):
            self.flow_out(node.ostore, sp)
            return
        if strong_dom(lp.pair.referent, sp.pair.path):
            return
        a_l = self._loc_assumptions(node, lp.assumptions)
        self.flow_out(node.ostore,
                      QualifiedPair(sp.pair, a_l | sp.assumptions))

    # .. calls and returns ...........................................................

    def _flow_call(self, node: CallNode, input_port: InputPort,
                   qp: QualifiedPair) -> None:
        if input_port is node.fcn:
            return  # call graph is fixed from the CI pass
        if input_port is node.store:
            self._call_store(node, qp)
            return
        for index, arg in enumerate(node.args):
            if input_port is arg:
                self._call_arg(node, index, qp)
                return
        raise AnalysisError(f"unknown call input {input_port!r}")

    def _call_store(self, node: CallNode, qp: QualifiedPair) -> None:
        for callee in self.callgraph.callees(node):
            self._into_formal(node, callee, callee.store_formal, qp)

    def _call_arg(self, node: CallNode, index: int, qp: QualifiedPair) -> None:
        for callee in self.callgraph.callees(node):
            formal = callee.corresponding_formal(index)
            if formal is not None:
                self._into_formal(node, callee, formal, qp)

    def _into_formal(self, call: CallNode, callee: FunctionGraph,
                     formal: OutputPort, qp: QualifiedPair) -> None:
        """Propagate an actual's pair into a formal under the assumption
        that it held on entry, then re-examine the callee's return pairs
        — the new actual pair may newly satisfy their assumptions."""
        assumption: Assumption = (formal, qp.pair)
        self.flow_out(formal, QualifiedPair(qp.pair, frozenset((assumption,))))
        ret = callee.return_node
        if ret is None:
            return
        # Targeted form of Figure 5's "for each r ∈ returns c ...": only
        # return pairs assuming exactly (formal, pair) can be affected.
        if ret.value is not None:
            for rp in self._qpairs(ret.value):
                if assumption in rp.assumptions:
                    self._propagate_return(call, callee, rp, call.out)
        for rp in self._qpairs(ret.store):
            if assumption in rp.assumptions:
                self._propagate_return(call, callee, rp, call.ostore)

    def _flow_return(self, node: ReturnNode, input_port: InputPort,
                     qp: QualifiedPair) -> None:
        if input_port is node.value:
            self._return_value(node, qp)
        elif input_port is node.store:
            self._return_store(node, qp)
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown return input {input_port!r}")

    def _return_value(self, node: ReturnNode, qp: QualifiedPair) -> None:
        graph = node.graph
        for call in self.callgraph.callers(graph):
            self._propagate_return(call, graph, qp, call.out)

    def _return_store(self, node: ReturnNode, qp: QualifiedPair) -> None:
        graph = node.graph
        for call in self.callgraph.callers(graph):
            self._propagate_return(call, graph, qp, call.ostore)

    def _actual_for_formal(self, call: CallNode, callee: FunctionGraph,
                           formal: OutputPort) -> Optional[InputPort]:
        """The call input corresponding to one of the callee's formals."""
        if formal is callee.store_formal:
            return call.store
        for index, callee_formal in enumerate(callee.formals):
            if callee_formal is formal:
                if index < len(call.args):
                    return call.args[index]
                return None
        return None

    def _propagate_return(self, call: CallNode, callee: FunctionGraph,
                          qp: QualifiedPair, target: OutputPort) -> None:
        """Figure 5's ``propagate-return``: for each assumption of the
        returned pair, collect the assumption sets under which the
        assumed pair holds at this call site; the Cartesian product of
        those collections gives every caller assumption set sufficient
        to satisfy the callee's assumptions."""
        satisfier_sets: List[List[AssumptionSet]] = []
        for formal, assumed_pair in qp.assumptions:
            if formal.node.graph is not callee:
                # Assumption about some other procedure's formal: can
                # only happen on a malformed graph.
                raise AnalysisError(
                    f"assumption on foreign formal {formal!r} at {call!r}")
            actual = self._actual_for_formal(call, callee, formal)
            if actual is None or actual.source is None:
                return  # nothing feeds this formal here: unsatisfiable
            chains = self.solution.assumption_sets(actual.source, assumed_pair)
            if not chains:
                return  # the assumed pair never holds at this call site
            satisfier_sets.append(chains)
        if not satisfier_sets:
            self.flow_out(target, QualifiedPair(qp.pair))
            return
        for combination in itertools.product(*satisfier_sets):
            merged: AssumptionSet = frozenset().union(*combination)
            self.flow_out(target, QualifiedPair(qp.pair, merged))

    # .. primops ...................................................................

    def _flow_primop(self, node: PrimopNode, input_port: InputPort,
                     qp: QualifiedPair) -> None:
        semantics = node.semantics
        if semantics is PrimopSemantics.OPAQUE:
            return
        if semantics is PrimopSemantics.COPY:
            if node.copy_operand is not None and \
                    input_port is not node.operands[node.copy_operand]:
                return
            self.flow_out(node.out, qp)
            return
        if semantics is PrimopSemantics.EXTRACT:
            self._primop_extract(node, qp)
            return
        if semantics is PrimopSemantics.FIELD:
            self._primop_field(node, qp)
        elif semantics is PrimopSemantics.INDEX:
            self._primop_index(node, qp)
        else:  # pragma: no cover - future semantics
            raise AnalysisError(f"unknown primop semantics {semantics!r}")

    def _primop_extract(self, node: PrimopNode, qp: QualifiedPair) -> None:
        path = qp.pair.path
        if path.base is None and path.ops and path.ops[0] is node.field_op:
            self.flow_out(node.out, QualifiedPair(
                make_pair(AccessPath(None, path.ops[1:]), qp.pair.referent),
                qp.assumptions))

    def _primop_field(self, node: PrimopNode, qp: QualifiedPair) -> None:
        if qp.pair.path is not EMPTY_OFFSET:
            return
        self.flow_out(node.out, QualifiedPair(
            direct(qp.pair.referent.extend(node.field_op)), qp.assumptions))

    def _primop_index(self, node: PrimopNode, qp: QualifiedPair) -> None:
        if qp.pair.path is not EMPTY_OFFSET:
            return
        self.flow_out(node.out, QualifiedPair(
            direct(qp.pair.referent.extend(INDEX)), qp.assumptions))


def _consume_q(qp: QualifiedPair) -> None:
    """Handler for ports that consume facts without producing pairs."""


def analyze_sensitive(program: Program,
                      ci_result: Optional[AnalysisResult] = None,
                      optimize: bool = True,
                      max_transfers: Optional[int] = None,
                      schedule: str = "batched",
                      parallel_scc: bool = False) -> AnalysisResult:
    """Run the maximally context-sensitive analysis (paper Section 4).

    ``ci_result`` may supply a previously computed context-insensitive
    result (it is computed on demand otherwise); ``optimize=False``
    disables the §4.2 CI-based pruning, which must not change the
    stripped solution — a property the test suite checks.

    ``parallel_scc`` is accepted for driver uniformity but ignored: the
    qualified-pair solver's assumption-set subsumption makes transfer
    order observable in its intermediate counters, so it stays serial.
    """
    return SensitiveAnalysis(program, ci_result, optimize, max_transfers,
                             schedule=schedule).run()
