"""Shared infrastructure for both points-to analyses.

Both the context-insensitive (Figure 1) and context-sensitive
(Figure 5) algorithms are worklist analyses over the same graphs; they
share the solution container, the operation counters the paper reports
(transfer functions executed, meet operations performed), and the
dynamically discovered call graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..errors import AnalysisError
from ..memory.access import EMPTY_OFFSET, AccessPath
from ..memory.base import LocationKind
from ..memory.pairs import PointsToPair
from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import CallNode, InputPort, LookupNode, Node, OutputPort, UpdateNode

if TYPE_CHECKING:  # pragma: no cover
    pass

#: Shared immutable empty views, returned on misses instead of
#: allocating a fresh ``set()`` per query (these calls sit on hot
#: paths: every transfer function consults its sibling inputs).
_NO_PAIRS: FrozenSet[PointsToPair] = frozenset()
_NO_CALLEES: FrozenSet["FunctionGraph"] = frozenset()
_NO_CALLERS: FrozenSet["CallNode"] = frozenset()

#: Scheduling strategies the solvers accept.  The paper notes the
#: algorithms converge to the same solution under any strategy;
#: ``"fifo"`` is the original one-fact-per-pop queue (kept for the
#: determinism cross-check), ``"batched"`` drains every pending fact
#: at a port through a single transfer application.
SCHEDULES = ("batched", "fifo")


def check_schedule(schedule: str) -> str:
    if schedule not in SCHEDULES:
        raise AnalysisError(
            f"unknown schedule {schedule!r}; expected one of "
            f"{', '.join(SCHEDULES)}")
    return schedule


@dataclass
class Counters:
    """Operation counts the paper compares across the two analyses.

    * ``transfers`` — facts processed by ``flow-in``.  The paper: CS
      executes only ~10% more than CI.  Schedule-independent for the
      context-insensitive analysis (each fact is queued to a consumer
      exactly once, when it is first added to the producing output).
    * ``meets`` — applications of ``flow-out`` (attempted set joins).
      The paper: CS performs up to 100× more than CI.  *Not*
      schedule-independent: whether a (location, store) combination is
      attempted once or twice depends on arrival order.
    * ``pairs_added`` — joins that actually grew a set.  Equals the
      final solution size, hence schedule-independent for CI.
    * ``batches`` — worklist pops under the batched schedule (equals
      ``transfers`` under FIFO).  Not a paper counter; reported via
      :meth:`as_dict` only when ``extended=True`` so the paper tables
      keep their original three columns.
    """

    transfers: int = 0
    meets: int = 0
    pairs_added: int = 0
    batches: int = 0

    def as_dict(self, extended: bool = False) -> Dict[str, int]:
        base = {"transfers": self.transfers, "meets": self.meets,
                "pairs_added": self.pairs_added}
        if extended:
            base["batches"] = self.batches
        return base


class CallGraph:
    """Call edges discovered while the analysis runs.

    ``callees`` / ``callers`` mirror the primitives of Figure 1's
    definitions box; edges appear as function values reach ``fcn``
    inputs (new edges trigger repropagation of already-known facts).
    """

    def __init__(self) -> None:
        self._callees: Dict[CallNode, Set[FunctionGraph]] = {}
        self._callers: Dict[FunctionGraph, Set[CallNode]] = {}
        #: Call sites whose function value resolved to something that is
        #: not a defined function (e.g. data treated as code); recorded
        #: rather than silently dropped.
        self.unresolved: Set[CallNode] = set()

    def callees(self, call: CallNode) -> Set[FunctionGraph]:
        return self._callees.get(call, _NO_CALLEES)

    def callers(self, graph: FunctionGraph) -> Set[CallNode]:
        return self._callers.get(graph, _NO_CALLERS)

    def add_edge(self, call: CallNode, callee: FunctionGraph) -> bool:
        """Record a call edge; returns True if it is new."""
        known = self._callees.setdefault(call, set())
        if callee in known:
            return False
        known.add(callee)
        self._callers.setdefault(callee, set()).add(call)
        return True

    def edges(self) -> Iterator[tuple[CallNode, FunctionGraph]]:
        for call, callees in self._callees.items():
            for callee in callees:
                yield call, callee

    def edge_count(self) -> int:
        return sum(len(c) for c in self._callees.values())


class PointsToSolution:
    """The analysis output: node output → set of points-to pairs.

    Query helpers cover the patterns clients (mod/ref, def/use, the
    statistics module) need: the *targets* of a pointer value and the
    locations an indirect memory operation may reference or modify.
    """

    def __init__(self) -> None:
        self._pairs: Dict[OutputPort, Set[PointsToPair]] = {}
        #: Optional per-output grouping of pairs by their path's base
        #: location, maintained incrementally for outputs registered
        #: via :meth:`enable_base_index`.  Lets lookup transfer
        #: functions test only same-base store pairs instead of the
        #: full cross product (``dom`` fails on base identity first).
        self._base_index: Dict[OutputPort, Dict[object, List[PointsToPair]]] = {}

    # -- mutation (analysis-internal) -------------------------------------

    def add(self, output: OutputPort, pair: PointsToPair) -> bool:
        pairs = self._pairs.get(output)
        if pairs is None:
            pairs = set()
            self._pairs[output] = pairs
        if pair in pairs:
            return False
        pairs.add(pair)
        index = self._base_index.get(output)
        if index is not None:
            index.setdefault(pair.path.base, []).append(pair)
        return True

    def join(self, output: OutputPort,
             pairs: Iterable[PointsToPair]) -> Set[PointsToPair]:
        """Delta-join: add ``pairs`` to ``output``'s set in one set
        operation and return only the genuinely new pairs (possibly
        empty).  The workhorse of the batched schedule — one difference
        plus one in-place union instead of per-pair membership tests
        and frozenset copies."""
        bucket = self._pairs.get(output)
        if bucket is None:
            new = set(pairs)
            self._pairs[output] = set(new)
        else:
            new = set(pairs)
            new -= bucket
            if new:
                bucket |= new
        if new:
            index = self._base_index.get(output)
            if index is not None:
                for pair in new:
                    index.setdefault(pair.path.base, []).append(pair)
        return new

    def enable_base_index(self, output: OutputPort
                          ) -> Dict[object, List[PointsToPair]]:
        """Return the live base-location index for ``output``, creating
        (and back-filling) it on first request.  The returned dict is
        updated in place by :meth:`add`/:meth:`join`, so callers may
        capture it once and reread it across fixpoint iterations."""
        index = self._base_index.get(output)
        if index is None:
            index = {}
            for pair in self._pairs.get(output, ()):
                index.setdefault(pair.path.base, []).append(pair)
            self._base_index[output] = index
        return index

    # -- queries ------------------------------------------------------------

    def pairs(self, output: OutputPort) -> FrozenSet[PointsToPair]:
        return frozenset(self._pairs.get(output, ()))

    def raw_pairs(self, output: OutputPort) -> Set[PointsToPair]:
        """Internal: the live set (not copied).  Do not mutate."""
        return self._pairs.get(output, _NO_PAIRS)

    def targets(self, output: OutputPort,
                offset: Optional[AccessPath] = None) -> Set[AccessPath]:
        """Locations this value may point at (referents of direct pairs,
        or of pairs at ``offset`` within an aggregate value)."""
        if offset is None:
            offset = EMPTY_OFFSET
        return {p.referent for p in self._pairs.get(output, ())
                if p.path is offset}

    def op_locations(self, node: Node) -> Set[AccessPath]:
        """Locations a lookup may reference / an update may modify: the
        direct referents at the node's location input.  This is what
        Figure 4 tabulates and what a def/use or mod/ref client reads."""
        if isinstance(node, (LookupNode, UpdateNode)):
            src = node.loc.source
            if src is None:
                raise AnalysisError(f"{node!r} has a dangling loc input")
            return self.targets(src)
        raise AnalysisError(f"{node!r} is not a memory operation")

    def outputs(self) -> Iterator[OutputPort]:
        return iter(self._pairs)

    def total_pairs(self) -> int:
        return sum(len(p) for p in self._pairs.values())

    def items(self) -> Iterator[tuple[OutputPort, Set[PointsToPair]]]:
        return iter(self._pairs.items())


@dataclass
class AnalysisResult:
    """Everything one analysis run produces."""

    program: Program
    solution: PointsToSolution
    callgraph: CallGraph
    counters: Counters
    elapsed_seconds: float = 0.0
    #: "insensitive", "sensitive", or "flowinsensitive".
    flavor: str = "insensitive"
    extras: dict = field(default_factory=dict)

    @property
    def phases(self) -> Dict[str, float]:
        """Wall-clock phase accounting for this result: the program's
        frontend phases (preprocess/parse/lower, or cache_load on a
        cache hit — recorded by the lowering path in
        ``program.extras["phases"]``) merged with the analysis's own
        phases (``solve``).  Frontend phases are program-level and thus
        shared by every flavor analyzed from the same program."""
        merged: Dict[str, float] = {}
        merged.update(self.program.extras.get("phases", {}))
        merged.update(self.extras.get("phases", {}))
        return merged

    @property
    def cache_status(self) -> str:
        """Lowering-cache outcome for this result's program:
        ``"hit"``, ``"miss"``, or ``"off"``."""
        return self.program.extras.get("cache", "off")

    def pairs(self, output: OutputPort) -> FrozenSet[PointsToPair]:
        return self.solution.pairs(output)

    def targets(self, output: OutputPort) -> Set[AccessPath]:
        return self.solution.targets(output)

    def op_locations(self, node: Node) -> Set[AccessPath]:
        return self.solution.op_locations(node)


class Worklist:
    """FIFO queue of (input port, fact) items.

    The paper notes the algorithm's convergence time is independent of
    the scheduling strategy; FIFO keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._queue: deque = deque()

    def push(self, input_port: InputPort, fact: object) -> None:
        if input_port is None:
            raise AnalysisError(
                f"fact {fact!r} pushed to a None input port (dangling "
                "graph edge?)")
        self._queue.append((input_port, fact))

    def pop(self) -> tuple[InputPort, object]:
        return self._queue.popleft()

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class BatchedWorklist:
    """Port-keyed deduplicating worklist.

    Facts are bucketed per input port (``pending``); a FIFO of dirty
    ports decides processing order.  One pop drains *every* fact
    pending at a port, so a single transfer application handles the
    whole batch.  Because each fact reaches a given consumer at most
    once (producers only forward pairs their solution set did not
    already contain, and every input port has exactly one source
    output), the per-port lists are duplicate-free by construction —
    a plain list beats a set here.
    """

    def __init__(self) -> None:
        self.pending: Dict[InputPort, List[object]] = {}
        self._dirty: deque = deque()

    def push(self, input_port: InputPort, fact: object) -> None:
        if input_port is None:
            raise AnalysisError(
                f"fact {fact!r} pushed to a None input port (dangling "
                "graph edge?)")
        bucket = self.pending.get(input_port)
        if bucket is None:
            self.pending[input_port] = [fact]
            self._dirty.append(input_port)
        else:
            bucket.append(fact)

    def push_many(self, input_port: InputPort, facts: Iterable[object]) -> None:
        if input_port is None:
            raise AnalysisError(
                "facts pushed to a None input port (dangling graph edge?)")
        bucket = self.pending.get(input_port)
        if bucket is None:
            bucket = list(facts)
            if bucket:
                self.pending[input_port] = bucket
                self._dirty.append(input_port)
        else:
            bucket.extend(facts)

    def pop(self) -> Tuple[InputPort, List[object]]:
        """Pop the oldest dirty port with all its pending facts."""
        port = self._dirty.popleft()
        return port, self.pending.pop(port)

    def __bool__(self) -> bool:
        return bool(self._dirty)

    def __len__(self) -> int:
        return sum(len(b) for b in self.pending.values())


def resolve_function_value(program: Program, referent: AccessPath
                           ) -> Optional[FunctionGraph]:
    """Map a function value's referent to a defined function graph.

    Function values are direct pairs whose referent is a bare
    FUNCTION-kind base-location path.
    """
    if referent.ops or referent.base is None:
        return None
    if referent.base.kind is not LocationKind.FUNCTION:
        return None
    return program.function_for_location(referent.base)


def seed_addresses(program: Program, flow_out) -> None:
    """Figure 1's initialization: every base-location producer emits
    the direct pair ``(ε, path)`` on its output."""
    from ..memory.pairs import direct

    for node in program.address_nodes():
        flow_out(node.out, direct(node.path))


def seed_roots(program: Program, flow_out) -> None:
    """Seed each analysis root's entry store with the initial store
    (global-initializer) pairs, plus any explicit value seeds (e.g.
    ``main``'s synthesized ``argv`` environment)."""
    for graph in program.root_graphs():
        for pair in program.initial_store:
            flow_out(graph.store_formal, pair)
    for output, pair in program.seeded_values:
        flow_out(output, pair)
