"""Shared infrastructure for both points-to analyses.

Both the context-insensitive (Figure 1) and context-sensitive
(Figure 5) algorithms are worklist analyses over the same graphs; they
share the solution container, the operation counters the paper reports
(transfer functions executed, meet operations performed), and the
dynamically discovered call graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator, Optional, Set

from ..errors import AnalysisError
from ..memory.access import EMPTY_OFFSET, AccessPath
from ..memory.base import LocationKind
from ..memory.pairs import PointsToPair
from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import CallNode, InputPort, LookupNode, Node, OutputPort, UpdateNode

if TYPE_CHECKING:  # pragma: no cover
    pass


@dataclass
class Counters:
    """Operation counts the paper compares across the two analyses.

    * ``transfers`` — applications of ``flow-in`` (worklist items
      processed).  The paper: CS executes only ~10% more than CI.
    * ``meets`` — applications of ``flow-out`` (attempted set joins).
      The paper: CS performs up to 100× more than CI.
    * ``pairs_added`` — joins that actually grew a set.
    """

    transfers: int = 0
    meets: int = 0
    pairs_added: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"transfers": self.transfers, "meets": self.meets,
                "pairs_added": self.pairs_added}


class CallGraph:
    """Call edges discovered while the analysis runs.

    ``callees`` / ``callers`` mirror the primitives of Figure 1's
    definitions box; edges appear as function values reach ``fcn``
    inputs (new edges trigger repropagation of already-known facts).
    """

    def __init__(self) -> None:
        self._callees: Dict[CallNode, Set[FunctionGraph]] = {}
        self._callers: Dict[FunctionGraph, Set[CallNode]] = {}
        #: Call sites whose function value resolved to something that is
        #: not a defined function (e.g. data treated as code); recorded
        #: rather than silently dropped.
        self.unresolved: Set[CallNode] = set()

    def callees(self, call: CallNode) -> Set[FunctionGraph]:
        return self._callees.get(call, set())

    def callers(self, graph: FunctionGraph) -> Set[CallNode]:
        return self._callers.get(graph, set())

    def add_edge(self, call: CallNode, callee: FunctionGraph) -> bool:
        """Record a call edge; returns True if it is new."""
        known = self._callees.setdefault(call, set())
        if callee in known:
            return False
        known.add(callee)
        self._callers.setdefault(callee, set()).add(call)
        return True

    def edges(self) -> Iterator[tuple[CallNode, FunctionGraph]]:
        for call, callees in self._callees.items():
            for callee in callees:
                yield call, callee

    def edge_count(self) -> int:
        return sum(len(c) for c in self._callees.values())


class PointsToSolution:
    """The analysis output: node output → set of points-to pairs.

    Query helpers cover the patterns clients (mod/ref, def/use, the
    statistics module) need: the *targets* of a pointer value and the
    locations an indirect memory operation may reference or modify.
    """

    def __init__(self) -> None:
        self._pairs: Dict[OutputPort, Set[PointsToPair]] = {}

    # -- mutation (analysis-internal) -------------------------------------

    def add(self, output: OutputPort, pair: PointsToPair) -> bool:
        pairs = self._pairs.get(output)
        if pairs is None:
            pairs = set()
            self._pairs[output] = pairs
        if pair in pairs:
            return False
        pairs.add(pair)
        return True

    # -- queries ------------------------------------------------------------

    def pairs(self, output: OutputPort) -> FrozenSet[PointsToPair]:
        return frozenset(self._pairs.get(output, ()))

    def raw_pairs(self, output: OutputPort) -> Set[PointsToPair]:
        """Internal: the live set (not copied).  Do not mutate."""
        return self._pairs.get(output, set())

    def targets(self, output: OutputPort,
                offset: Optional[AccessPath] = None) -> Set[AccessPath]:
        """Locations this value may point at (referents of direct pairs,
        or of pairs at ``offset`` within an aggregate value)."""
        if offset is None:
            offset = EMPTY_OFFSET
        return {p.referent for p in self._pairs.get(output, ())
                if p.path is offset}

    def op_locations(self, node: Node) -> Set[AccessPath]:
        """Locations a lookup may reference / an update may modify: the
        direct referents at the node's location input.  This is what
        Figure 4 tabulates and what a def/use or mod/ref client reads."""
        if isinstance(node, (LookupNode, UpdateNode)):
            src = node.loc.source
            if src is None:
                raise AnalysisError(f"{node!r} has a dangling loc input")
            return self.targets(src)
        raise AnalysisError(f"{node!r} is not a memory operation")

    def outputs(self) -> Iterator[OutputPort]:
        return iter(self._pairs)

    def total_pairs(self) -> int:
        return sum(len(p) for p in self._pairs.values())

    def items(self) -> Iterator[tuple[OutputPort, Set[PointsToPair]]]:
        return iter(self._pairs.items())


@dataclass
class AnalysisResult:
    """Everything one analysis run produces."""

    program: Program
    solution: PointsToSolution
    callgraph: CallGraph
    counters: Counters
    elapsed_seconds: float = 0.0
    #: "insensitive", "sensitive", or "flowinsensitive".
    flavor: str = "insensitive"
    extras: dict = field(default_factory=dict)

    def pairs(self, output: OutputPort) -> FrozenSet[PointsToPair]:
        return self.solution.pairs(output)

    def targets(self, output: OutputPort) -> Set[AccessPath]:
        return self.solution.targets(output)

    def op_locations(self, node: Node) -> Set[AccessPath]:
        return self.solution.op_locations(node)


class Worklist:
    """FIFO queue of (input port, fact) items.

    The paper notes the algorithm's convergence time is independent of
    the scheduling strategy; FIFO keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._queue: deque = deque()

    def push(self, input_port: InputPort, fact: object) -> None:
        self._queue.append((input_port, fact))

    def pop(self) -> tuple[InputPort, object]:
        return self._queue.popleft()

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


def resolve_function_value(program: Program, referent: AccessPath
                           ) -> Optional[FunctionGraph]:
    """Map a function value's referent to a defined function graph.

    Function values are direct pairs whose referent is a bare
    FUNCTION-kind base-location path.
    """
    if referent.ops or referent.base is None:
        return None
    if referent.base.kind is not LocationKind.FUNCTION:
        return None
    return program.function_for_location(referent.base)


def seed_addresses(program: Program, flow_out) -> None:
    """Figure 1's initialization: every base-location producer emits
    the direct pair ``(ε, path)`` on its output."""
    from ..memory.pairs import direct

    for node in program.address_nodes():
        flow_out(node.out, direct(node.path))


def seed_roots(program: Program, flow_out) -> None:
    """Seed each analysis root's entry store with the initial store
    (global-initializer) pairs, plus any explicit value seeds (e.g.
    ``main``'s synthesized ``argv`` environment)."""
    for graph in program.root_graphs():
        for pair in program.initial_store:
            flow_out(graph.store_formal, pair)
    for output, pair in program.seeded_values:
        flow_out(output, pair)
