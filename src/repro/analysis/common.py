"""Shared infrastructure for both points-to analyses.

Both the context-insensitive (Figure 1) and context-sensitive
(Figure 5) algorithms are worklist analyses over the same graphs; they
share the solution container, the operation counters the paper reports
(transfer functions executed, meet operations performed), and the
dynamically discovered call graph.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..errors import AnalysisError
from ..memory.access import EMPTY_OFFSET, AccessPath
from ..memory.base import LocationKind
from ..memory.facttable import FactTable, bitset_words
from ..memory.packedbits import PackedBits
from ..memory.pairs import PointsToPair
from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import CallNode, InputPort, LookupNode, Node, OutputPort, UpdateNode

if TYPE_CHECKING:  # pragma: no cover
    pass

#: Shared immutable empty views, returned on misses instead of
#: allocating a fresh ``set()`` per query (these calls sit on hot
#: paths: every transfer function consults its sibling inputs).
_NO_PAIRS: FrozenSet[PointsToPair] = frozenset()
_NO_CALLEES: FrozenSet["FunctionGraph"] = frozenset()
_NO_CALLERS: FrozenSet["CallNode"] = frozenset()

#: Scheduling strategies the solvers accept.  The paper notes the
#: algorithms converge to the same solution under any strategy;
#: ``"fifo"`` is the original one-fact-per-pop queue (kept for the
#: determinism cross-check), ``"batched"`` drains every pending fact
#: at a port through a single transfer application, ``"scc"`` batches
#: the same way but pops ports in topological order of the port
#: dependency graph's strongly connected components (round-robin
#: inside each SCC), so downstream components see their inputs
#: saturated before they run.
SCHEDULES = ("batched", "fifo", "scc")


def check_schedule(schedule: str) -> str:
    if schedule not in SCHEDULES:
        raise AnalysisError(
            f"unknown schedule {schedule!r}; expected one of "
            f"{', '.join(SCHEDULES)}")
    return schedule


@dataclass
class Counters:
    """Operation counts the paper compares across the two analyses.

    * ``transfers`` — facts processed by ``flow-in``.  The paper: CS
      executes only ~10% more than CI.  Schedule-independent for the
      context-insensitive analysis (each fact is queued to a consumer
      exactly once, when it is first added to the producing output).
    * ``meets`` — applications of ``flow-out`` (attempted set joins).
      The paper: CS performs up to 100× more than CI.  *Not*
      schedule-independent: whether a (location, store) combination is
      attempted once or twice depends on arrival order.
    * ``pairs_added`` — joins that actually grew a set.  Equals the
      final solution size, hence schedule-independent for CI.
    * ``batches`` — worklist pops under the batched schedule (equals
      ``transfers`` under FIFO).  Not a paper counter; reported via
      :meth:`as_dict` only when ``extended=True`` so the paper tables
      keep their original three columns.
    """

    transfers: int = 0
    meets: int = 0
    pairs_added: int = 0
    batches: int = 0

    def as_dict(self, extended: bool = False) -> Dict[str, int]:
        base = {"transfers": self.transfers, "meets": self.meets,
                "pairs_added": self.pairs_added}
        if extended:
            base["batches"] = self.batches
        return base


class CallGraph:
    """Call edges discovered while the analysis runs.

    ``callees`` / ``callers`` mirror the primitives of Figure 1's
    definitions box; edges appear as function values reach ``fcn``
    inputs (new edges trigger repropagation of already-known facts).
    """

    def __init__(self) -> None:
        self._callees: Dict[CallNode, Set[FunctionGraph]] = {}
        self._callers: Dict[FunctionGraph, Set[CallNode]] = {}
        #: Call sites whose function value resolved to something that is
        #: not a defined function (e.g. data treated as code); recorded
        #: rather than silently dropped.
        self.unresolved: Set[CallNode] = set()

    def callees(self, call: CallNode) -> Set[FunctionGraph]:
        return self._callees.get(call, _NO_CALLEES)

    def callers(self, graph: FunctionGraph) -> Set[CallNode]:
        return self._callers.get(graph, _NO_CALLERS)

    def add_edge(self, call: CallNode, callee: FunctionGraph) -> bool:
        """Record a call edge; returns True if it is new."""
        known = self._callees.setdefault(call, set())
        if callee in known:
            return False
        known.add(callee)
        self._callers.setdefault(callee, set()).add(call)
        return True

    def edges(self) -> Iterator[tuple[CallNode, FunctionGraph]]:
        for call, callees in self._callees.items():
            for callee in callees:
                yield call, callee

    def edge_count(self) -> int:
        return sum(len(c) for c in self._callees.values())


class PointsToSolution:
    """The analysis output: node output → set of points-to pairs.

    Internally each output's set is a big-int **bitset** over the dense
    pair ids of a :class:`~repro.memory.facttable.FactTable` — joins
    are ``|``/``& ~`` over machine words, membership is one shift and
    AND.  The object-level API (:meth:`pairs`, :meth:`targets`,
    :meth:`op_locations`, :meth:`items`) is a *lazy decoding view*:
    bitsets materialize into interned pair objects only when queried,
    with a per-output cache invalidated by bitset growth, so clients
    (stats, verify, compare, the fuzz oracle) observe exactly the sets
    they always did.

    Query helpers cover the patterns clients (mod/ref, def/use, the
    statistics module) need: the *targets* of a pointer value and the
    locations an indirect memory operation may reference or modify.
    """

    def __init__(self, table: Optional[FactTable] = None) -> None:
        #: The id table bitsets are encoded against.  Solutions built
        #: by one analysis share the program-wide table so CI, CS, and
        #: repeat runs agree on ids.
        self.table = table if table is not None else FactTable()
        #: Per-output fact set, stored word-packed: narrow sets stay
        #: big ints, wide sets live in a fixed-width u64 buffer joined
        #: in place (see :mod:`repro.memory.packedbits`).  The bitset
        #: *values* exchanged with callers remain plain ints.
        self._packed: Dict[OutputPort, PackedBits] = {}
        #: Decode cache: output → (bits snapshot, decoded frozenset).
        self._decoded: Dict[OutputPort, Tuple[int, FrozenSet[PointsToPair]]] = {}

    # -- mutation (analysis-internal) -------------------------------------

    def add(self, output: OutputPort, pair: PointsToPair) -> bool:
        bit = 1 << self.table.pair_id(pair)
        packed = self._packed.get(output)
        if packed is None:
            self._packed[output] = PackedBits(bit)
            return True
        return packed.or_mask(bit) != 0

    def join(self, output: OutputPort,
             pairs: Iterable[PointsToPair]) -> Set[PointsToPair]:
        """Delta-join: add ``pairs`` to ``output``'s set and return
        only the genuinely new pairs (possibly empty).  Object-level
        wrapper over :meth:`join_mask`."""
        new = self.join_mask(output, self.table.pair_mask(pairs))
        if not new:
            return set()
        return set(self.table.decode_pairs(new))

    def join_mask(self, output: OutputPort, mask: int) -> int:
        """Bitset delta-join: OR ``mask`` into the output's set and
        return the sub-bitset of genuinely new facts.  The workhorse of
        the dense engine — an in-place word-packed join replaces
        per-pair membership tests."""
        packed = self._packed.get(output)
        if packed is None:
            if not mask:
                return 0
            self._packed[output] = PackedBits(mask)
            return mask
        return packed.or_mask(mask)

    def mask(self, output: OutputPort) -> int:
        """The output's current bitset (0 when empty)."""
        packed = self._packed.get(output)
        return packed.to_mask() if packed is not None else 0

    def targets_mask(self, output: OutputPort) -> int:
        """Path-id bitset of :meth:`targets` (the direct referents of
        the output's pairs) — no objects materialized."""
        return self.table.targets_mask(self.mask(output))

    def op_targets_mask(self, node: Node) -> int:
        """Mask-level :meth:`op_locations`: the path-id bitset a
        lookup may reference / an update may modify.  The decode-free
        clients (mod/ref, dead stores) are built on this."""
        if isinstance(node, (LookupNode, UpdateNode)):
            src = node.loc.source
            if src is None:
                raise AnalysisError(f"{node!r} has a dangling loc input")
            return self.targets_mask(src)
        raise AnalysisError(f"{node!r} is not a memory operation")

    # -- queries (lazy decoding view) --------------------------------------

    def pairs(self, output: OutputPort) -> FrozenSet[PointsToPair]:
        bits = self.mask(output)
        if not bits:
            return _NO_PAIRS
        cached = self._decoded.get(output)
        if cached is not None and cached[0] == bits:
            return cached[1]
        decoded = frozenset(self.table.decode_pairs(bits))
        self._decoded[output] = (bits, decoded)
        return decoded

    def raw_pairs(self, output: OutputPort) -> FrozenSet[PointsToPair]:
        """Internal: the decoded view (cached, not copied per call).
        A snapshot of the current set — do not mutate."""
        return self.pairs(output)

    def targets(self, output: OutputPort,
                offset: Optional[AccessPath] = None) -> Set[AccessPath]:
        """Locations this value may point at (referents of direct pairs,
        or of pairs at ``offset`` within an aggregate value)."""
        if offset is None:
            offset = EMPTY_OFFSET
        return {p.referent for p in self.pairs(output)
                if p.path is offset}

    def op_locations(self, node: Node) -> Set[AccessPath]:
        """Locations a lookup may reference / an update may modify: the
        direct referents at the node's location input.  This is what
        Figure 4 tabulates and what a def/use or mod/ref client reads."""
        if isinstance(node, (LookupNode, UpdateNode)):
            src = node.loc.source
            if src is None:
                raise AnalysisError(f"{node!r} has a dangling loc input")
            return self.targets(src)
        raise AnalysisError(f"{node!r} is not a memory operation")

    def outputs(self) -> Iterator[OutputPort]:
        return iter(self._packed)

    def total_pairs(self) -> int:
        return sum(packed.popcount() for packed in self._packed.values())

    def bitset_words(self) -> int:
        """Total 64-bit words the per-output bitsets span (telemetry)."""
        return sum(bitset_words(packed.to_mask())
                   for packed in self._packed.values())

    def packed_words(self) -> int:
        """Total 64-bit words of per-output *storage* (telemetry):
        buffer allocations for packed sets, spanned words for sets
        still in the narrow big-int representation."""
        return sum(packed.storage_words()
                   for packed in self._packed.values())

    def storage_stats(self) -> Tuple[int, int]:
        """``(bitset_words, packed_words)`` in one sweep — the dense
        engine reports both every run, and one pass over the outputs
        halves the telemetry cost of a warm solve."""
        spanned = 0
        allocated = 0
        for packed in self._packed.values():
            spanned += (packed.bit_length() + 63) >> 6
            allocated += packed.storage_words()
        return spanned, allocated

    def items(self) -> Iterator[tuple[OutputPort, FrozenSet[PointsToPair]]]:
        for output in self._packed:
            yield output, self.pairs(output)


@dataclass
class AnalysisResult:
    """Everything one analysis run produces."""

    program: Program
    solution: PointsToSolution
    callgraph: CallGraph
    counters: Counters
    elapsed_seconds: float = 0.0
    #: "insensitive", "sensitive", or "flowinsensitive".
    flavor: str = "insensitive"
    extras: dict = field(default_factory=dict)

    @property
    def phases(self) -> Dict[str, float]:
        """Wall-clock phase accounting for this result: the program's
        frontend phases (preprocess/parse/lower, or cache_load on a
        cache hit — recorded by the lowering path in
        ``program.extras["phases"]``) merged with the analysis's own
        phases (``solve``).  Frontend phases are program-level and thus
        shared by every flavor analyzed from the same program."""
        merged: Dict[str, float] = {}
        merged.update(self.program.extras.get("phases", {}))
        merged.update(self.extras.get("phases", {}))
        return merged

    @property
    def cache_status(self) -> str:
        """Lowering-cache outcome for this result's program:
        ``"hit"``, ``"miss"``, or ``"off"``."""
        return self.program.extras.get("cache", "off")

    def pairs(self, output: OutputPort) -> FrozenSet[PointsToPair]:
        return self.solution.pairs(output)

    def targets(self, output: OutputPort) -> Set[AccessPath]:
        return self.solution.targets(output)

    def op_locations(self, node: Node) -> Set[AccessPath]:
        return self.solution.op_locations(node)


class Worklist:
    """FIFO queue of (input port, fact) items.

    The paper notes the algorithm's convergence time is independent of
    the scheduling strategy; FIFO keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._queue: deque = deque()

    def push(self, input_port: InputPort, fact: object) -> None:
        if input_port is None:
            raise AnalysisError(
                f"fact {fact!r} pushed to a None input port (dangling "
                "graph edge?)")
        self._queue.append((input_port, fact))

    def pop(self) -> tuple[InputPort, object]:
        return self._queue.popleft()

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class BatchedWorklist:
    """Port-keyed deduplicating worklist.

    Facts are bucketed per input port (``pending``); a FIFO of dirty
    ports decides processing order.  One pop drains *every* fact
    pending at a port, so a single transfer application handles the
    whole batch.  Because each fact reaches a given consumer at most
    once (producers only forward pairs their solution set did not
    already contain, and every input port has exactly one source
    output), the per-port lists are duplicate-free by construction —
    a plain list beats a set here.
    """

    def __init__(self) -> None:
        self.pending: Dict[InputPort, List[object]] = {}
        self._dirty: deque = deque()

    def push(self, input_port: InputPort, fact: object) -> None:
        if input_port is None:
            raise AnalysisError(
                f"fact {fact!r} pushed to a None input port (dangling "
                "graph edge?)")
        bucket = self.pending.get(input_port)
        if bucket is None:
            self.pending[input_port] = [fact]
            self._dirty.append(input_port)
        else:
            bucket.append(fact)

    def push_many(self, input_port: InputPort, facts: Iterable[object]) -> None:
        if input_port is None:
            raise AnalysisError(
                "facts pushed to a None input port (dangling graph edge?)")
        bucket = self.pending.get(input_port)
        if bucket is None:
            bucket = list(facts)
            if bucket:
                self.pending[input_port] = bucket
                self._dirty.append(input_port)
        else:
            bucket.extend(facts)

    def pop(self) -> Tuple[InputPort, List[object]]:
        """Pop the oldest dirty port with all its pending facts."""
        port = self._dirty.popleft()
        return port, self.pending.pop(port)

    def __bool__(self) -> bool:
        return bool(self._dirty)

    def __len__(self) -> int:
        return sum(len(b) for b in self.pending.values())


class MaskWorklist:
    """Port-keyed worklist over fact bitsets (the dense engine's
    counterpart of :class:`BatchedWorklist`).

    Pending facts per port are one big-int; merging a later push is a
    single OR.  A FIFO of dirty ports decides processing order, and a
    pop drains the port's whole pending bitset through one handler
    application.
    """

    __slots__ = ("pending", "_dirty")

    def __init__(self) -> None:
        self.pending: Dict[InputPort, int] = {}
        self._dirty: deque = deque()

    def push_mask(self, input_port: InputPort, mask: int) -> None:
        if input_port is None:
            raise AnalysisError(
                "facts pushed to a None input port (dangling graph edge?)")
        if not mask:
            return
        current = self.pending.get(input_port)
        if current is None:
            self.pending[input_port] = mask
            self._dirty.append(input_port)
        else:
            self.pending[input_port] = current | mask

    def pop(self) -> Tuple[InputPort, int]:
        """Pop the oldest dirty port with its whole pending bitset."""
        port = self._dirty.popleft()
        return port, self.pending.pop(port)

    def __bool__(self) -> bool:
        return bool(self._dirty)

    def __len__(self) -> int:
        return len(self._dirty)


class _SccQueue:
    """Dirty-port bookkeeping shared by the SCC-priority worklists.

    Ports are grouped by the topological index of their SCC in the
    port dependency graph (see :mod:`repro.analysis.scheduling`); the
    next pop always comes from the *lowest* dirty SCC, and within an
    SCC ports rotate round-robin (a re-dirtied port re-enters at the
    back of its component's queue).  Facts that flow "backwards" —
    e.g. through a dynamically discovered call edge the static
    condensation could not see — simply re-activate an earlier SCC.
    """

    __slots__ = ("_order", "_queues", "_heap", "_queued")

    def __init__(self, order: Mapping[InputPort, int]) -> None:
        self._order = order
        self._queues: Dict[int, deque] = {}
        self._heap: List[int] = []
        self._queued: Set[int] = set()

    def enqueue(self, port: InputPort) -> None:
        index = self._order.get(port, 0)
        queue = self._queues.get(index)
        if queue is None:
            queue = self._queues[index] = deque()
        queue.append(port)
        if index not in self._queued:
            self._queued.add(index)
            heapq.heappush(self._heap, index)

    def dequeue(self) -> InputPort:
        while True:
            index = self._heap[0]
            queue = self._queues.get(index)
            if queue:
                return queue.popleft()
            heapq.heappop(self._heap)
            self._queued.discard(index)


class SCCMaskWorklist:
    """:class:`MaskWorklist` with SCC-priority scheduling.

    Dirty ports live in one heap of ``(scc index, sequence, port)``
    entries rather than the per-SCC deque map of :class:`_SccQueue`:
    push and pop are the dense solver's innermost operations, and one
    heap operation beats the deque-map's four dict/deque touches.  The
    monotone sequence number preserves exactly the deque scheme's
    order — FIFO within an SCC, re-dirtied ports re-entering at the
    back — and, being unique, keeps the (unorderable) ports out of
    tuple comparisons.  A heap entry exists iff its port is pending
    (pushes only on the absent→pending transition, pops consume the
    port), so entries are never stale.
    """

    __slots__ = ("pending", "_order", "_heap", "_seq")

    def __init__(self, order: Mapping[InputPort, int]) -> None:
        self.pending: Dict[InputPort, int] = {}
        self._order = order
        self._heap: List[Tuple[int, int, InputPort]] = []
        self._seq = 0

    def push_mask(self, input_port: InputPort, mask: int) -> None:
        if input_port is None:
            raise AnalysisError(
                "facts pushed to a None input port (dangling graph edge?)")
        if not mask:
            return
        pending = self.pending
        current = pending.get(input_port)
        if current is None:
            pending[input_port] = mask
            self._seq = seq = self._seq + 1
            heapq.heappush(
                self._heap,
                (self._order.get(input_port, 0), seq, input_port))
        else:
            pending[input_port] = current | mask

    def pop(self) -> Tuple[InputPort, int]:
        port = heapq.heappop(self._heap)[2]
        return port, self.pending.pop(port)

    def __bool__(self) -> bool:
        return bool(self.pending)

    def __len__(self) -> int:
        return len(self.pending)


class LevelMaskWorklist:
    """Mask worklist that drains one condensation *level* at a time.

    Ports are grouped by ``(level, scc)`` from
    :func:`repro.analysis.scheduling.port_scc_levels`.  ``pop_level``
    removes every dirty port of the lowest dirty level and returns
    them as per-SCC shards: two SCCs on the same level share no static
    dependency path, so the shards can be drained concurrently.
    Ports dirtied while a level runs — including ports of that same
    level, re-activated by cyclic or dynamically discovered edges —
    simply surface on a later ``pop_level``; the fixpoint loop runs
    until nothing is pending, so priority stays a heuristic, never a
    soundness obligation.

    The structure itself is not thread-safe; the parallel driver
    funnels every concurrent ``push_mask`` through the engine's join
    lock and calls ``pop_level`` only between level barriers.
    """

    __slots__ = ("pending", "_info", "_levels", "_heap", "_queued")

    def __init__(self, info: Mapping[InputPort, Tuple[int, int]]) -> None:
        self.pending: Dict[InputPort, int] = {}
        self._info = info
        #: level → scc index → dirty ports, plus a heap of dirty levels.
        self._levels: Dict[int, Dict[int, List[InputPort]]] = {}
        self._heap: List[int] = []
        self._queued: Set[int] = set()

    def push_mask(self, input_port: InputPort, mask: int) -> None:
        if input_port is None:
            raise AnalysisError(
                "facts pushed to a None input port (dangling graph edge?)")
        if not mask:
            return
        current = self.pending.get(input_port)
        if current is None:
            self.pending[input_port] = mask
            level, scc = self._info.get(input_port, (0, -1))
            by_scc = self._levels.get(level)
            if by_scc is None:
                by_scc = self._levels[level] = {}
            by_scc.setdefault(scc, []).append(input_port)
            if level not in self._queued:
                self._queued.add(level)
                heapq.heappush(self._heap, level)
        else:
            self.pending[input_port] = current | mask

    def pop_level(self) -> Optional[List[List[Tuple[InputPort, int]]]]:
        """All dirty ports of the lowest dirty level, grouped into
        per-SCC shards with their pending bitsets; None when drained."""
        pending = self.pending
        while self._heap:
            level = heapq.heappop(self._heap)
            self._queued.discard(level)
            by_scc = self._levels.pop(level, None)
            if not by_scc:
                continue
            shards = []
            for ports in by_scc.values():
                shard = [(port, pending.pop(port)) for port in ports
                         if port in pending]
                if shard:
                    shards.append(shard)
            if shards:
                return shards
        return None

    def __bool__(self) -> bool:
        return bool(self.pending)

    def __len__(self) -> int:
        return len(self.pending)


class SCCWorklist:
    """:class:`BatchedWorklist` (fact-list buckets) with SCC-priority
    scheduling — used by the CS and FI solvers, whose facts are not
    bitset-encodable (qualified pairs / global-store cascades)."""

    __slots__ = ("pending", "_queue")

    def __init__(self, order: Mapping[InputPort, int]) -> None:
        self.pending: Dict[InputPort, List[object]] = {}
        self._queue = _SccQueue(order)

    def push(self, input_port: InputPort, fact: object) -> None:
        if input_port is None:
            raise AnalysisError(
                f"fact {fact!r} pushed to a None input port (dangling "
                "graph edge?)")
        bucket = self.pending.get(input_port)
        if bucket is None:
            self.pending[input_port] = [fact]
            self._queue.enqueue(input_port)
        else:
            bucket.append(fact)

    def push_many(self, input_port: InputPort, facts: Iterable[object]) -> None:
        if input_port is None:
            raise AnalysisError(
                "facts pushed to a None input port (dangling graph edge?)")
        bucket = self.pending.get(input_port)
        if bucket is None:
            bucket = list(facts)
            if bucket:
                self.pending[input_port] = bucket
                self._queue.enqueue(input_port)
        else:
            bucket.extend(facts)

    def pop(self) -> Tuple[InputPort, List[object]]:
        port = self._queue.dequeue()
        return port, self.pending.pop(port)

    def __bool__(self) -> bool:
        return bool(self.pending)

    def __len__(self) -> int:
        return sum(len(b) for b in self.pending.values())


def resolve_function_value(program: Program, referent: AccessPath
                           ) -> Optional[FunctionGraph]:
    """Map a function value's referent to a defined function graph.

    Function values are direct pairs whose referent is a bare
    FUNCTION-kind base-location path.
    """
    if referent.ops or referent.base is None:
        return None
    if referent.base.kind is not LocationKind.FUNCTION:
        return None
    return program.function_for_location(referent.base)


def seed_addresses(program: Program, flow_out) -> None:
    """Figure 1's initialization: every base-location producer emits
    the direct pair ``(ε, path)`` on its output."""
    from ..memory.pairs import direct

    for node in program.address_nodes():
        flow_out(node.out, direct(node.path))


def seed_roots(program: Program, flow_out) -> None:
    """Seed each analysis root's entry store with the initial store
    (global-initializer) pairs, plus any explicit value seeds (e.g.
    ``main``'s synthesized ``argv`` environment)."""
    for graph in program.root_graphs():
        for pair in program.initial_store:
            flow_out(graph.store_formal, pair)
    for output, pair in program.seeded_values:
        flow_out(output, pair)
