"""Exception hierarchy for the repro package.

Every error deliberately raised by the library derives from
:class:`ReproError`, so callers can catch one type.  Sub-hierarchies
distinguish the three stages a program passes through: preprocessing /
parsing, lowering to the VDG, and analysis proper.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FrontendError(ReproError):
    """Base class for errors in the C frontend (preprocess/parse/lower)."""

    def __init__(self, message: str, filename: str | None = None,
                 line: int | None = None) -> None:
        self.filename = filename
        self.line = line
        prefix = ""
        if filename is not None:
            prefix = filename
            if line is not None:
                prefix += f":{line}"
            prefix += ": "
        super().__init__(prefix + message)


class PreprocessorError(FrontendError):
    """Malformed preprocessor directive or unresolvable include."""


class ParseError(FrontendError):
    """The C parser rejected the (preprocessed) source."""


class TypeError_(FrontendError):
    """Type elaboration failed (undeclared identifier, bad member, ...)."""


class UnsupportedFeatureError(FrontendError):
    """The program uses a C feature outside the modeled subset.

    The paper (Section 2) excludes signal handlers, longjmp, and casts
    between pointer and non-pointer types; we additionally reject
    ``goto``.  Anything we cannot lower soundly raises this rather than
    producing a silently unsound graph.
    """


class LoweringError(FrontendError):
    """Internal inconsistency while building the VDG from the AST."""


class IRError(ReproError):
    """Structural violation in the VDG (caught by the validator)."""


class AnalysisError(ReproError):
    """The points-to analysis was driven with inconsistent inputs."""


class SuiteError(ReproError):
    """A named benchmark program could not be located or loaded."""
