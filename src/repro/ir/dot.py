"""Graphviz (DOT) export of function graphs.

Renders one procedure's VDG — optionally annotated with a points-to
solution — for debugging lowering and for documentation figures:

    dot = to_dot(program.functions["main"], result=ci)
    Path("main.dot").write_text(dot)   # then: dot -Tsvg main.dot

Store-carrying edges are drawn bold so the store thread (the paper's
explicit store values) stands out; control uses are drawn dashed.
"""

from __future__ import annotations

from io import StringIO
from typing import Optional

from .graph import FunctionGraph, Program
from .nodes import (
    AddressNode,
    CallNode,
    ConstNode,
    EntryNode,
    LookupNode,
    MergeNode,
    Node,
    PrimopNode,
    ReturnNode,
    UpdateNode,
    ValueTag,
)

_SHAPES = {
    "entry": "invhouse",
    "return": "house",
    "lookup": "ellipse",
    "update": "box",
    "call": "hexagon",
    "merge": "invtriangle",
    "primop": "oval",
    "const": "plaintext",
    "address": "note",
}

_COLORS = {
    "lookup": "#2e86de",
    "update": "#c0392b",
    "call": "#8e44ad",
    "merge": "#7f8c8d",
    "entry": "#27ae60",
    "return": "#27ae60",
    "address": "#d68910",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_label(node: Node, result=None) -> str:
    if isinstance(node, ConstNode):
        label = f"const {node.value!r}"
    elif isinstance(node, AddressNode):
        label = f"&{node.path!r}"
    elif isinstance(node, PrimopNode):
        label = node.op
    elif isinstance(node, EntryNode):
        formals = ", ".join(p.name.split(":", 1)[-1] for p in node.formals)
        label = f"entry({formals})"
    elif isinstance(node, (LookupNode, UpdateNode)) and node.is_indirect:
        label = f"{node.kind}*"
    else:
        label = node.kind
    if result is not None and isinstance(node, (LookupNode, UpdateNode)):
        locations = sorted(repr(p) for p in result.op_locations(node))
        if locations:
            label += "\\n{" + ", ".join(locations) + "}"
    return label


def _emit_body(out: StringIO, graph: FunctionGraph, result,
               include_origins: bool, prefix: str, indent: str) -> None:
    """Emit one graph's node and edge statements with id prefix."""
    for node in graph.nodes:
        shape = _SHAPES.get(node.kind, "box")
        color = _COLORS.get(node.kind, "#2c3e50")
        label = _escape(_node_label(node, result))
        if include_origins and node.origin:
            label += f"\\n{_escape(node.origin)}"
        out.write(f'{indent}{prefix}n{node.uid} [label="{label}", '
                  f'shape={shape}, color="{color}"];\n')

    for node in graph.nodes:
        for port in node.inputs:
            src = port.source
            if src is None:
                continue
            attrs = [f'label="{_escape(port.name)}"']
            if src.tag is ValueTag.STORE:
                attrs.append("style=bold")
                attrs.append('color="#555555"')
            if isinstance(node, MergeNode) and port is node.pred:
                attrs.append("style=dashed")
            out.write(f'{indent}{prefix}n{src.node.uid} -> '
                      f'{prefix}n{node.uid} [{", ".join(attrs)}];\n')

    for index, port in enumerate(graph.control_uses):
        out.write(f'{indent}{prefix}ctl{index} [label="γ", '
                  f'shape=diamond, color="#7f8c8d"];\n')
        out.write(f'{indent}{prefix}n{port.node.uid} -> '
                  f'{prefix}ctl{index} [style=dashed, label="pred"];\n')


def to_dot(graph: FunctionGraph, result=None,
           include_origins: bool = False) -> str:
    """Render one function graph as DOT text."""
    out = StringIO()
    out.write(f'digraph "{_escape(graph.name)}" {{\n')
    out.write('  rankdir=TB;\n')
    out.write('  node [fontname="monospace", fontsize=10];\n')
    out.write('  edge [fontname="monospace", fontsize=8];\n')
    _emit_body(out, graph, result, include_origins, prefix="", indent="  ")
    out.write("}\n")
    return out.getvalue()


def program_to_dot(program: Program, result=None,
                   include_origins: bool = False) -> str:
    """Render every function as a cluster in one DOT digraph."""
    out = StringIO()
    out.write(f'digraph "{_escape(program.name)}" {{\n')
    out.write('  node [fontname="monospace", fontsize=10];\n')
    out.write('  edge [fontname="monospace", fontsize=8];\n')
    for index, (name, graph) in enumerate(sorted(program.functions.items())):
        out.write(f'  subgraph "cluster_{_escape(name)}" {{\n')
        out.write(f'    label="{_escape(name)}";\n')
        _emit_body(out, graph, result, include_origins,
                   prefix=f"f{index}_", indent="    ")
        out.write("  }\n")
    out.write("}\n")
    return out.getvalue()
