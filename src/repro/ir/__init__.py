"""The VDG-style intermediate representation the analyses run over."""

from .builder import GraphBuilder, unify_tags
from .dot import program_to_dot, to_dot
from .graph import FunctionGraph, Program
from .nodes import (
    AddressNode,
    CallNode,
    ConstNode,
    EntryNode,
    InputPort,
    LookupNode,
    MergeNode,
    Node,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    ReturnNode,
    UpdateNode,
    ValueTag,
)
from .pretty import format_function, format_node, format_program
from .simplify import simplify_function, simplify_program
from .validate import validate_function, validate_program

__all__ = [
    "AddressNode",
    "CallNode",
    "ConstNode",
    "EntryNode",
    "FunctionGraph",
    "GraphBuilder",
    "InputPort",
    "LookupNode",
    "MergeNode",
    "Node",
    "OutputPort",
    "PrimopNode",
    "PrimopSemantics",
    "Program",
    "ReturnNode",
    "UpdateNode",
    "ValueTag",
    "format_function",
    "format_node",
    "format_program",
    "program_to_dot",
    "simplify_function",
    "simplify_program",
    "to_dot",
    "unify_tags",
    "validate_function",
    "validate_program",
]
