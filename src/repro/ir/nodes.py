"""VDG node vocabulary.

The paper analyzes C programs represented as value dependence graphs
(Weise et al., POPL 1994): computation is expressed by nodes that
consume input values and produce output values, with memory accesses
uniformly represented as ``lookup`` and ``update`` operations that
consume (and, for update, produce) explicit *store* values.

We implement the node kinds the paper's transfer functions dispatch on
(Figure 1): ``lookup``, ``update``, ``call``, ``return``, ``if`` (our
``merge``), and ``primop`` — plus the producers that seed points-to
facts: ``const``, ``address`` (base-location producer, covering
``&x``, string literals, malloc sites, and function references), and
the per-procedure ``entry`` node whose outputs are the formals.

Graphs are per-procedure; there are no interprocedural edges.  The
analyses connect calls to callees through the discovered call graph,
exactly as the paper's ``callees``/``callers``/``corresponding-formal``
/``corresponding-result`` primitives do.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..memory.access import AccessOp, AccessPath

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import FunctionGraph


class ValueTag(enum.Enum):
    """Coarse type of the value an output carries (Figure 3 columns)."""

    SCALAR = "scalar"
    POINTER = "pointer"
    FUNCTION = "function"
    AGGREGATE = "aggregate"
    STORE = "store"


class OutputPort:
    """A value produced by a node; the unit points-to sets attach to."""

    __slots__ = ("node", "name", "tag", "carries_pointers", "consumers")

    def __init__(self, node: "Node", name: str, tag: ValueTag,
                 carries_pointers: Optional[bool] = None) -> None:
        self.node = node
        self.name = name
        self.tag = tag
        if carries_pointers is None:
            carries_pointers = tag in (ValueTag.POINTER, ValueTag.FUNCTION,
                                       ValueTag.STORE)
        self.carries_pointers = carries_pointers
        self.consumers: List[InputPort] = []

    @property
    def alias_related(self) -> bool:
        """Whether this output can carry pointer or function values.

        Figure 2's "alias-related outputs" column: type is pointer,
        function, aggregate containing pointer or function, or store.
        """
        if self.tag in (ValueTag.POINTER, ValueTag.FUNCTION, ValueTag.STORE):
            return True
        return self.tag is ValueTag.AGGREGATE and self.carries_pointers

    def __repr__(self) -> str:
        return f"{self.node!r}.{self.name}"


class InputPort:
    """A value consumed by a node; fed by exactly one output."""

    __slots__ = ("node", "name", "source")

    def __init__(self, node: "Node", name: str) -> None:
        self.node = node
        self.name = name
        self.source: Optional[OutputPort] = None

    def connect(self, source: OutputPort) -> None:
        if self.source is not None:
            self.source.consumers.remove(self)
        self.source = source
        source.consumers.append(self)

    def __repr__(self) -> str:
        return f"{self.node!r}.{self.name}<-"


class Node:
    """Common behaviour for all VDG nodes."""

    kind: str = "node"

    __slots__ = ("graph", "uid", "inputs", "outputs", "origin")

    def __init__(self, graph: "FunctionGraph", origin: Optional[str] = None) -> None:
        self.graph = graph
        self.uid = graph.register(self)
        self.inputs: List[InputPort] = []
        self.outputs: List[OutputPort] = []
        self.origin = origin

    def _input(self, name: str) -> InputPort:
        port = InputPort(self, name)
        self.inputs.append(port)
        return port

    def _output(self, name: str, tag: ValueTag,
                carries_pointers: Optional[bool] = None) -> OutputPort:
        port = OutputPort(self, name, tag, carries_pointers)
        self.outputs.append(port)
        return port

    def input(self, name: str) -> InputPort:
        for port in self.inputs:
            if port.name == name:
                return port
        raise KeyError(f"{self!r} has no input {name!r}")

    def output(self, name: str) -> OutputPort:
        for port in self.outputs:
            if port.name == name:
                return port
        raise KeyError(f"{self!r} has no output {name!r}")

    def __repr__(self) -> str:
        return f"{self.kind}#{self.uid}"


class ConstNode(Node):
    """A literal (or the null pointer, which points at nothing)."""

    kind = "const"
    __slots__ = ("value", "out")

    def __init__(self, graph: "FunctionGraph", value: object,
                 tag: ValueTag = ValueTag.SCALAR,
                 origin: Optional[str] = None) -> None:
        super().__init__(graph, origin)
        self.value = value
        self.out = self._output("out", tag, carries_pointers=False)


class AddressNode(Node):
    """Producer of a constant address: the value ``(ε, path)``.

    Covers ``&x`` for store-resident variables, decayed arrays, string
    literals, heap allocation sites (one base-location per static
    ``malloc`` call, Section 2), and function references (tag
    ``FUNCTION``).  The analyses seed each address output with the
    direct pair ``(ε, path)`` — Figure 1's initialization loop.
    """

    kind = "address"
    __slots__ = ("path", "out")

    def __init__(self, graph: "FunctionGraph", path: AccessPath,
                 tag: ValueTag = ValueTag.POINTER,
                 origin: Optional[str] = None) -> None:
        super().__init__(graph, origin)
        if path.base is None:
            raise ValueError(f"address node needs a location path, got {path!r}")
        self.path = path
        self.out = self._output("out", tag)


class LookupNode(Node):
    """A memory read: dereference the ``loc`` value in ``store``."""

    kind = "lookup"
    __slots__ = ("loc", "store", "out")

    def __init__(self, graph: "FunctionGraph", tag: ValueTag,
                 carries_pointers: Optional[bool] = None,
                 origin: Optional[str] = None) -> None:
        super().__init__(graph, origin)
        self.loc = self._input("loc")
        self.store = self._input("store")
        self.out = self._output("out", tag, carries_pointers)

    @property
    def is_indirect(self) -> bool:
        """Figure 4's notion of an *indirect* read: the location input
        is computed (not a constant address)."""
        src = self.loc.source
        return src is not None and not isinstance(src.node, AddressNode)


class UpdateNode(Node):
    """A memory write: store ``value`` at the ``loc`` value's target."""

    kind = "update"
    __slots__ = ("loc", "store", "value", "ostore")

    def __init__(self, graph: "FunctionGraph",
                 origin: Optional[str] = None) -> None:
        super().__init__(graph, origin)
        self.loc = self._input("loc")
        self.store = self._input("store")
        self.value = self._input("value")
        self.ostore = self._output("store", ValueTag.STORE)

    @property
    def is_indirect(self) -> bool:
        src = self.loc.source
        return src is not None and not isinstance(src.node, AddressNode)


class CallNode(Node):
    """A procedure call: ``fcn`` selects callees discovered on the fly."""

    kind = "call"
    __slots__ = ("fcn", "args", "store", "out", "ostore")

    def __init__(self, graph: "FunctionGraph", n_args: int,
                 result_tag: ValueTag = ValueTag.SCALAR,
                 result_carries_pointers: Optional[bool] = None,
                 origin: Optional[str] = None) -> None:
        super().__init__(graph, origin)
        self.fcn = self._input("fcn")
        self.args = [self._input(f"arg{i}") for i in range(n_args)]
        self.store = self._input("store")
        self.out = self._output("out", result_tag, result_carries_pointers)
        self.ostore = self._output("store", ValueTag.STORE)


class EntryNode(Node):
    """Procedure entry: one output per formal, plus the store formal."""

    kind = "entry"
    __slots__ = ("formals", "store_out")

    def __init__(self, graph: "FunctionGraph",
                 formal_specs: Sequence[tuple[str, ValueTag, Optional[bool]]],
                 origin: Optional[str] = None) -> None:
        super().__init__(graph, origin)
        self.formals = [self._output(f"formal:{name}", tag, cp)
                        for name, tag, cp in formal_specs]
        self.store_out = self._output("store", ValueTag.STORE)


class ReturnNode(Node):
    """Procedure exit: consumes the return value (if any) and store."""

    kind = "return"
    __slots__ = ("value", "store")

    def __init__(self, graph: "FunctionGraph", has_value: bool,
                 origin: Optional[str] = None) -> None:
        super().__init__(graph, origin)
        self.value = self._input("value") if has_value else None
        self.store = self._input("store")


class MergeNode(Node):
    """Control-flow join (the paper's ``if`` node).

    Values from all branches propagate to the output; the predicate
    input, when present, is ignored by the analyses — exactly the
    Figure 1 behaviour ("values from both branches propagate to the
    output; predicate is ignored").  Also used as loop headers, where
    one input is the back edge.
    """

    kind = "merge"
    __slots__ = ("pred", "branches", "out")

    def __init__(self, graph: "FunctionGraph", n_branches: int,
                 tag: ValueTag, carries_pointers: Optional[bool] = None,
                 with_pred: bool = False,
                 origin: Optional[str] = None) -> None:
        super().__init__(graph, origin)
        self.pred = self._input("pred") if with_pred else None
        self.branches = [self._input(f"in{i}") for i in range(n_branches)]
        self.out = self._output("out", tag, carries_pointers)

    def add_branch(self) -> InputPort:
        """Grow the merge by one input (used while lowering joins)."""
        port = self._input(f"in{len(self.branches)}")
        self.branches.append(port)
        return port


class PrimopSemantics(enum.Enum):
    """How a primop's output points-to set derives from its inputs."""

    OPAQUE = "opaque"    # arithmetic/comparison: produces no pairs
    COPY = "copy"        # pairs of designated inputs flow through unchanged
                         # (pointer arithmetic stays inside the array, casts
                         # between pointer types, strcpy-style returns)
    FIELD = "field"      # (ε, r) becomes (ε, r.field): member address
    INDEX = "index"      # (ε, r) becomes (ε, r[*]): element address / decay
    EXTRACT = "extract"  # (field·o, r) becomes (o, r): member read out of
                         # an aggregate *value* (e.g. f().member)


def input_roles(node: Node):
    """Yield ``(port, role, index)`` for every input of ``node``.

    The role string names the transfer-function case the port selects
    (e.g. ``"lookup.loc"``); ``index`` is the positional index for
    ``call.arg`` / ``merge.branch`` / ``primop.operand`` ports and
    ``-1`` otherwise.  This is the single place the solvers' dispatch
    tables are derived from — built once per run, replacing the
    per-event ``isinstance``/port-identity chains of the naive loop.
    """
    if isinstance(node, LookupNode):
        yield node.loc, "lookup.loc", -1
        yield node.store, "lookup.store", -1
    elif isinstance(node, UpdateNode):
        yield node.loc, "update.loc", -1
        yield node.store, "update.store", -1
        yield node.value, "update.value", -1
    elif isinstance(node, CallNode):
        yield node.fcn, "call.fcn", -1
        for i, arg in enumerate(node.args):
            yield arg, "call.arg", i
        yield node.store, "call.store", -1
    elif isinstance(node, ReturnNode):
        if node.value is not None:
            yield node.value, "return.value", -1
        yield node.store, "return.store", -1
    elif isinstance(node, MergeNode):
        if node.pred is not None:
            yield node.pred, "merge.pred", -1
        for i, branch in enumerate(node.branches):
            yield branch, "merge.branch", i
    elif isinstance(node, PrimopNode):
        for i, operand in enumerate(node.operands):
            yield operand, "primop.operand", i
    else:
        for port in node.inputs:
            yield port, "unknown", -1


class PrimopNode(Node):
    """Primitive operation; behaviour varies by operator (Figure 1).

    ``copy_operand`` restricts COPY semantics to one designated input:
    pairs flow from that operand only, while the others are merely
    consumed (e.g. a library call modeled as the identity function on
    stores still *reads* its arguments).
    """

    kind = "primop"
    __slots__ = ("op", "semantics", "field_op", "operands", "out",
                 "copy_operand")

    def __init__(self, graph: "FunctionGraph", op: str, n_operands: int,
                 tag: ValueTag,
                 semantics: PrimopSemantics = PrimopSemantics.OPAQUE,
                 field_op: Optional[AccessOp] = None,
                 carries_pointers: Optional[bool] = None,
                 copy_operand: Optional[int] = None,
                 origin: Optional[str] = None) -> None:
        super().__init__(graph, origin)
        if semantics in (PrimopSemantics.FIELD, PrimopSemantics.EXTRACT) \
                and field_op is None:
            raise ValueError(f"{semantics.value} primop requires a field_op")
        if copy_operand is not None:
            if semantics is not PrimopSemantics.COPY:
                raise ValueError("copy_operand requires COPY semantics")
            if copy_operand < 0:
                copy_operand += n_operands
            if not 0 <= copy_operand < n_operands:
                raise ValueError("copy_operand out of range")
        self.op = op
        self.semantics = semantics
        self.field_op = field_op
        self.copy_operand = copy_operand
        self.operands = [self._input(f"in{i}") for i in range(n_operands)]
        self.out = self._output("out", tag, carries_pointers)

    def __repr__(self) -> str:
        return f"primop:{self.op}#{self.uid}"
