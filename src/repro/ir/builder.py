"""Convenience API for constructing function graphs.

Used by the C lowering pass and directly by tests and examples that
hand-craft graphs (the analyses are defined over the IR, not over C, so
graph-level construction is a supported public workflow).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..errors import IRError
from ..memory.access import AccessOp, AccessPath
from .graph import FunctionGraph, Program
from .nodes import (
    AddressNode,
    CallNode,
    ConstNode,
    EntryNode,
    MergeNode,
    Node,
    OutputPort,
    PrimopNode,
    PrimopSemantics,
    ReturnNode,
    UpdateNode,
    LookupNode,
    ValueTag,
)


def unify_tags(ports: Sequence[OutputPort]) -> tuple[ValueTag, bool]:
    """Infer the (tag, carries_pointers) for a merge of ``ports``.

    All-store merges stay stores; otherwise the join of the value tags:
    any pointer/function/aggregate wins over scalar, mixes degrade to
    aggregate (which is conservative for alias-relatedness).
    """
    tags = {p.tag for p in ports}
    carries = any(p.carries_pointers for p in ports)
    if tags == {ValueTag.STORE}:
        return ValueTag.STORE, True
    if ValueTag.STORE in tags:
        raise IRError("cannot merge store with non-store values")
    if len(tags) == 1:
        return next(iter(tags)), carries
    tags.discard(ValueTag.SCALAR)
    if len(tags) == 1:
        return next(iter(tags)), carries
    return ValueTag.AGGREGATE, carries


class GraphBuilder:
    """Builds one :class:`FunctionGraph` node by node."""

    def __init__(self, name_or_graph, program: Optional[Program] = None) -> None:
        if isinstance(name_or_graph, FunctionGraph):
            self.graph = name_or_graph
        else:
            self.graph = FunctionGraph(name_or_graph)
        self.program = program
        self._origin: Optional[str] = None
        #: Hazard model (opt-in lowering option): when set, the null
        #: pointer is an address of the ``<null>`` summary location, so
        #: dereferences of maybe-null values carry it in their
        #: location sets instead of silently pointing at nothing.
        self.null_path: Optional[AccessPath] = None

    # -- source positions ---------------------------------------------------

    def set_origin(self, origin: Optional[str]) -> None:
        """Record the source position attached to subsequent nodes."""
        self._origin = origin

    # -- structural nodes -----------------------------------------------------

    def entry(self, formal_specs: Sequence[tuple[str, ValueTag, Optional[bool]]]
              ) -> EntryNode:
        node = EntryNode(self.graph, formal_specs, origin=self._origin)
        self.graph.set_entry(node)
        return node

    def ret(self, value: Optional[OutputPort], store: OutputPort) -> ReturnNode:
        node = ReturnNode(self.graph, has_value=value is not None,
                          origin=self._origin)
        if value is not None:
            node.value.connect(value)
        node.store.connect(store)
        self.graph.set_return(node)
        return node

    # -- producers ----------------------------------------------------------

    def const(self, value: object, tag: ValueTag = ValueTag.SCALAR) -> OutputPort:
        return ConstNode(self.graph, value, tag, origin=self._origin).out

    def null_pointer(self) -> OutputPort:
        """The null pointer: a pointer-tagged constant with no pairs —
        or, under the hazard model, the address of ``<null>``."""
        if self.null_path is not None:
            return self.address(self.null_path)
        return ConstNode(self.graph, 0, ValueTag.POINTER,
                         origin=self._origin).out

    def undef(self, tag: ValueTag = ValueTag.SCALAR) -> OutputPort:
        """An undefined value (e.g. falling off a non-void function)."""
        return ConstNode(self.graph, None, tag, origin=self._origin).out

    def address(self, path: AccessPath,
                tag: ValueTag = ValueTag.POINTER) -> OutputPort:
        return AddressNode(self.graph, path, tag, origin=self._origin).out

    # -- memory -------------------------------------------------------------

    def lookup(self, loc: OutputPort, store: OutputPort, tag: ValueTag,
               carries_pointers: Optional[bool] = None) -> OutputPort:
        node = LookupNode(self.graph, tag, carries_pointers,
                          origin=self._origin)
        node.loc.connect(loc)
        node.store.connect(store)
        return node.out

    def update(self, loc: OutputPort, store: OutputPort,
               value: OutputPort) -> OutputPort:
        node = UpdateNode(self.graph, origin=self._origin)
        node.loc.connect(loc)
        node.store.connect(store)
        node.value.connect(value)
        return node.ostore

    # -- calls ---------------------------------------------------------------

    def call(self, fcn: OutputPort, args: Sequence[OutputPort],
             store: OutputPort, result_tag: ValueTag = ValueTag.SCALAR,
             result_carries_pointers: Optional[bool] = None
             ) -> tuple[OutputPort, OutputPort]:
        node = CallNode(self.graph, len(args), result_tag,
                        result_carries_pointers, origin=self._origin)
        node.fcn.connect(fcn)
        for port, arg in zip(node.args, args):
            port.connect(arg)
        node.store.connect(store)
        return node.out, node.ostore

    # -- joins ----------------------------------------------------------------

    def merge(self, branches: Sequence[OutputPort],
              tag: Optional[ValueTag] = None,
              carries_pointers: Optional[bool] = None,
              pred: Optional[OutputPort] = None) -> OutputPort:
        """Join several values.  A one-branch merge is just the value."""
        branches = list(branches)
        if not branches:
            raise IRError("merge needs at least one branch")
        if len(branches) == 1 and pred is None:
            return branches[0]
        if tag is None:
            tag, inferred_cp = unify_tags(branches)
            if carries_pointers is None:
                carries_pointers = inferred_cp
        node = MergeNode(self.graph, len(branches), tag, carries_pointers,
                         with_pred=pred is not None, origin=self._origin)
        if pred is not None:
            node.pred.connect(pred)
        for port, branch in zip(node.branches, branches):
            port.connect(branch)
        return node.out

    def loop_header(self, initial: OutputPort,
                    tag: Optional[ValueTag] = None,
                    carries_pointers: Optional[bool] = None) -> MergeNode:
        """A merge with the back edge left open; close with
        :meth:`close_loop` once the body has been lowered."""
        if tag is None:
            tag = initial.tag
            if carries_pointers is None:
                carries_pointers = initial.carries_pointers
        node = MergeNode(self.graph, 1, tag, carries_pointers,
                         origin=self._origin)
        node.branches[0].connect(initial)
        return node

    def close_loop(self, header: MergeNode, back_edge: OutputPort) -> None:
        header.add_branch().connect(back_edge)

    # -- primops ----------------------------------------------------------------

    def primop(self, op: str, operands: Sequence[OutputPort],
               tag: ValueTag = ValueTag.SCALAR,
               semantics: PrimopSemantics = PrimopSemantics.OPAQUE,
               field_op: Optional[AccessOp] = None,
               carries_pointers: Optional[bool] = None,
               copy_operand: Optional[int] = None) -> OutputPort:
        node = PrimopNode(self.graph, op, len(operands), tag, semantics,
                          field_op, carries_pointers, copy_operand,
                          origin=self._origin)
        for port, operand in zip(node.operands, operands):
            port.connect(operand)
        return node.out

    def library_store(self, name: str, args: Sequence[OutputPort],
                      store: OutputPort) -> OutputPort:
        """A library call modeled as the identity function on stores
        (paper §5.1.2): consumes the arguments (they are genuinely
        read), passes the store's pairs through untouched."""
        return self.primop(f"lib:{name}", list(args) + [store],
                           ValueTag.STORE, PrimopSemantics.COPY,
                           copy_operand=-1)

    def copy(self, value: OutputPort, op: str = "copy") -> OutputPort:
        """Identity-on-pairs primop (pointer cast, strcpy-style return)."""
        return self.primop(op, [value], value.tag, PrimopSemantics.COPY,
                           carries_pointers=value.carries_pointers)

    def ptradd(self, ptr: OutputPort, offset: OutputPort) -> OutputPort:
        """Pointer arithmetic: stays within the array (paper caveat)."""
        return self.primop("ptradd", [ptr, offset], ValueTag.POINTER,
                           PrimopSemantics.COPY)

    def field_addr(self, ptr: OutputPort, field_op: AccessOp) -> OutputPort:
        """``&p->f``: each referent ``r`` becomes ``r.f``."""
        return self.primop(f"field_addr{field_op!r}", [ptr],
                           ValueTag.POINTER, PrimopSemantics.FIELD,
                           field_op=field_op)

    def index_addr(self, ptr: OutputPort) -> OutputPort:
        """``&(*p)[i]`` / array decay: each referent ``r`` becomes ``r[*]``."""
        return self.primop("index_addr", [ptr], ValueTag.POINTER,
                           PrimopSemantics.INDEX)

    def extract(self, aggregate: OutputPort, field_op: AccessOp,
                tag: ValueTag, carries_pointers: Optional[bool] = None
                ) -> OutputPort:
        """Member read out of an aggregate value: pairs at offset
        ``field·o`` become pairs at offset ``o``."""
        return self.primop(f"extract{field_op!r}", [aggregate], tag,
                           PrimopSemantics.EXTRACT, field_op=field_op,
                           carries_pointers=carries_pointers)

    # -- finishing ---------------------------------------------------------------

    def finish(self) -> FunctionGraph:
        if self.graph.entry is None:
            raise IRError(f"{self.graph.name}: missing entry node")
        if self.graph.return_node is None:
            raise IRError(f"{self.graph.name}: missing return node")
        return self.graph
