"""Graph simplification: trivial-merge elimination and dead-node removal.

The lowering pass conservatively creates a merge per live variable at
every join; most are trivial (all branches carry the same value).  The
paper's VDG is sparse precisely because such noise is removed ("they
merely run faster on the VDG because it is more sparse"), and Figure 2's
node counts assume a cleaned graph, so we simplify before reporting.
"""

from __future__ import annotations

from typing import Set

from .graph import FunctionGraph, Program
from .nodes import MergeNode, Node, OutputPort, ReturnNode


def _redirect(old: OutputPort, new: OutputPort) -> None:
    """Point every consumer of ``old`` at ``new``, including any
    control-use registrations."""
    for consumer in list(old.consumers):
        consumer.connect(new)
    graph = old.node.graph
    graph.control_uses = [new if port is old else port
                          for port in graph.control_uses]


def _detach(node: Node) -> None:
    """Disconnect all of a node's inputs so it can be unregistered."""
    for port in node.inputs:
        if port.source is not None:
            port.source.consumers.remove(port)
            port.source = None


def eliminate_trivial_merges(graph: FunctionGraph) -> int:
    """Collapse merges whose branches all come from one output.

    Self-referential loop headers whose only other input is the initial
    value (``m = merge(x, m)``) also collapse to ``x`` — the variable
    was loop-invariant.  Returns the number of merges removed.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for node in list(graph.nodes):
            if not isinstance(node, MergeNode):
                continue
            sources = {port.source for port in node.branches}
            sources.discard(node.out)  # ignore self loops (back edges)
            if len(sources) != 1:
                continue
            replacement = next(iter(sources))
            if replacement is None or replacement is node.out:
                continue
            _redirect(node.out, replacement)
            _detach(node)
            graph.unregister(node)
            removed += 1
            changed = True
    return removed


def remove_dead_nodes(graph: FunctionGraph) -> int:
    """Drop nodes not reachable backwards from the return node.

    The return node anchors liveness: the store chain keeps updates and
    calls alive, merge predicates keep comparisons alive, and so on.
    The entry node is always retained (its formals define the
    procedure's interface even when unused).
    """
    live: Set[Node] = set()
    stack: list[Node] = []
    if graph.return_node is not None:
        stack.append(graph.return_node)
    for port in graph.control_uses:
        stack.append(port.node)
    if graph.entry is not None:
        live.add(graph.entry)
    while stack:
        node = stack.pop()
        if node in live:
            continue
        live.add(node)
        for port in node.inputs:
            if port.source is not None and port.source.node not in live:
                stack.append(port.source.node)
    removed = 0
    for node in list(graph.nodes):
        if node not in live:
            _detach(node)
            graph.unregister(node)
            removed += 1
    return removed


def simplify_function(graph: FunctionGraph) -> int:
    """Run all simplifications to fixpoint; returns nodes removed."""
    total = 0
    while True:
        removed = eliminate_trivial_merges(graph)
        removed += remove_dead_nodes(graph)
        total += removed
        if not removed:
            return total


def simplify_program(program: Program) -> int:
    return sum(simplify_function(g) for g in program.functions.values())
