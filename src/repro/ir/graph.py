"""Function graphs and whole programs.

A :class:`FunctionGraph` is the VDG of one procedure: an entry node
whose outputs are the formals (plus the store formal), a single return
node, and the dataflow nodes in between.  A :class:`Program` collects
the function graphs, the base-location registry, the initial store
contents contributed by global initializers, and the analysis roots.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import IRError
from ..memory.base import BaseLocation
from ..memory.pairs import PointsToPair
from .nodes import (
    AddressNode,
    EntryNode,
    LookupNode,
    Node,
    OutputPort,
    ReturnNode,
    UpdateNode,
    ValueTag,
)


class FunctionGraph:
    """The value dependence graph of one procedure."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[Node] = []
        self._next_uid = 0
        self.entry: Optional[EntryNode] = None
        self.return_node: Optional[ReturnNode] = None
        #: Source line count of the procedure, when known (Figure 2).
        self.source_lines: int = 0
        #: Whether the procedure participates in recursion (footnote 4).
        self.recursive: bool = False
        #: Values consumed by control decisions (branch/loop/switch
        #: predicates).  In a full VDG these are γ/μ-node inputs; here
        #: they anchor liveness so dead-node removal never deletes a
        #: computation the program's control flow depends on.
        self.control_uses: List["OutputPort"] = []

    # -- construction ----------------------------------------------------

    def register(self, node: Node) -> int:
        """Assign a uid; called from ``Node.__init__``."""
        uid = self._next_uid
        self._next_uid += 1
        self.nodes.append(node)
        return uid

    def unregister(self, node: Node) -> None:
        """Drop a node (used by the simplifier); ports must be detached."""
        self.nodes.remove(node)

    def set_entry(self, entry: EntryNode) -> None:
        if self.entry is not None:
            raise IRError(f"{self.name}: entry node already set")
        self.entry = entry

    def set_return(self, ret: ReturnNode) -> None:
        if self.return_node is not None:
            raise IRError(f"{self.name}: return node already set")
        self.return_node = ret

    def add_control_use(self, port: "OutputPort") -> None:
        """Record that a value steers control flow (stays live)."""
        if port.node.graph is not self:
            raise IRError(f"{self.name}: foreign control use {port!r}")
        self.control_uses.append(port)

    # -- interprocedural correspondence (paper's primitives) -------------

    @property
    def formals(self) -> List[OutputPort]:
        if self.entry is None:
            raise IRError(f"{self.name}: no entry node")
        return self.entry.formals

    @property
    def store_formal(self) -> OutputPort:
        if self.entry is None:
            raise IRError(f"{self.name}: no entry node")
        return self.entry.store_out

    def corresponding_formal(self, arg_index: int) -> Optional[OutputPort]:
        """Formal output for the ``arg_index``-th actual, or ``None``
        when the call passes more arguments than the procedure declares
        (extra varargs-style actuals are dropped, as the paper's
        benchmarks' printf-style calls require)."""
        formals = self.formals
        if arg_index < len(formals):
            return formals[arg_index]
        return None

    # -- queries ----------------------------------------------------------

    def outputs(self) -> Iterator[OutputPort]:
        for node in self.nodes:
            yield from node.outputs

    def alias_related_outputs(self) -> Iterator[OutputPort]:
        for port in self.outputs():
            if port.alias_related:
                yield port

    def memory_operations(self) -> Iterator[Node]:
        for node in self.nodes:
            if isinstance(node, (LookupNode, UpdateNode)):
                yield node

    def __repr__(self) -> str:
        return f"<FunctionGraph {self.name}: {len(self.nodes)} nodes>"


class Program:
    """A whole analyzed program: graphs, locations, roots, initial store."""

    def __init__(self, name: str = "<program>") -> None:
        self.name = name
        self.functions: Dict[str, FunctionGraph] = {}
        #: Analysis roots; the worklist seeds their entry stores with the
        #: initial (global-initializer) store pairs.
        self.roots: List[str] = []
        #: Points-to pairs established by static initializers.
        self.initial_store: List[PointsToPair] = []
        #: Extra unconditional value seeds: (output, pair).  Used for
        #: synthesized environments such as ``main``'s ``argv``.
        self.seeded_values: List[tuple] = []
        #: Every base-location the frontend created, for Figure 1's
        #: initialization loop and for reporting.
        self.locations: List[BaseLocation] = []
        #: Code-address location of each defined function, used to
        #: resolve function values at (indirect) calls.
        self.function_locations: Dict[str, BaseLocation] = {}
        self._function_by_location: Dict[int, str] = {}
        #: Total source line count (Figure 2), set by the frontend.
        self.source_lines: int = 0
        #: Free-form metadata (frontend warnings, provenance, ...).
        self.extras: Dict[str, object] = {}

    # -- construction -----------------------------------------------------

    def add_function(self, graph: FunctionGraph,
                     location: Optional[BaseLocation] = None) -> None:
        if graph.name in self.functions:
            raise IRError(f"duplicate function {graph.name}")
        self.functions[graph.name] = graph
        if location is not None:
            self.function_locations[graph.name] = location
            self._function_by_location[id(location)] = graph.name

    def add_root(self, name: str) -> None:
        if name not in self.functions:
            raise IRError(f"root {name!r} is not a defined function")
        if name not in self.roots:
            self.roots.append(name)

    def register_location(self, loc: BaseLocation) -> BaseLocation:
        self.locations.append(loc)
        return loc

    def seed_store(self, pairs: Iterable[PointsToPair]) -> None:
        self.initial_store.extend(pairs)

    def seed_value(self, output: "OutputPort", pair: PointsToPair) -> None:
        """Record an unconditional points-to seed on an arbitrary output
        (e.g. a root formal's synthesized environment)."""
        self.seeded_values.append((output, pair))

    # -- pickling ---------------------------------------------------------

    def __getstate__(self) -> dict:
        # _function_by_location is keyed by id(location); ids are not
        # stable across processes, so drop it and rebuild on load.
        state = self.__dict__.copy()
        del state["_function_by_location"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._function_by_location = {
            id(loc): name for name, loc in self.function_locations.items()}

    # -- queries ------------------------------------------------------------

    def function_for_location(self, loc: BaseLocation) -> Optional[FunctionGraph]:
        """Resolve a FUNCTION base-location to its graph (indirect calls)."""
        name = self._function_by_location.get(id(loc))
        if name is None:
            return None
        return self.functions[name]

    def root_graphs(self) -> List[FunctionGraph]:
        return [self.functions[name] for name in self.roots]

    def all_nodes(self) -> Iterator[Node]:
        for graph in self.functions.values():
            yield from graph.nodes

    def all_outputs(self) -> Iterator[OutputPort]:
        for graph in self.functions.values():
            yield from graph.outputs()

    def node_count(self) -> int:
        return sum(len(g.nodes) for g in self.functions.values())

    def alias_related_output_count(self) -> int:
        return sum(1 for port in self.all_outputs() if port.alias_related)

    def address_nodes(self) -> Iterator[AddressNode]:
        for node in self.all_nodes():
            if isinstance(node, AddressNode):
                yield node

    def __repr__(self) -> str:
        return (f"<Program {self.name}: {len(self.functions)} functions, "
                f"{self.node_count()} nodes>")
