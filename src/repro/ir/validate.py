"""Structural well-formedness checks for function graphs and programs.

The lowering pass and hand-built test graphs both run through here
before analysis; a malformed graph (dangling input, dangling store
output, open loop header, type-confused store wiring) raises
:class:`~repro.errors.IRError` instead of producing silently wrong
points-to sets.
"""

from __future__ import annotations

from typing import List

from ..errors import IRError
from .graph import FunctionGraph, Program
from .nodes import (
    CallNode,
    EntryNode,
    LookupNode,
    MergeNode,
    Node,
    ReturnNode,
    UpdateNode,
    ValueTag,
)


def _expect_tag(port_owner: Node, name: str, tag: ValueTag, expect_store: bool,
                errors: List[str]) -> None:
    where = f"{port_owner.graph.name}:{port_owner!r}.{name}"
    if expect_store and tag is not ValueTag.STORE:
        errors.append(f"{where}: expected store input, got {tag.value}")
    if not expect_store and tag is ValueTag.STORE:
        errors.append(f"{where}: store value used as ordinary value")


def validate_function(graph: FunctionGraph) -> None:
    """Raise :class:`IRError` describing every violation found."""
    errors: List[str] = []

    if graph.entry is None:
        errors.append(f"{graph.name}: no entry node")
    if graph.return_node is None:
        errors.append(f"{graph.name}: no return node")

    entry_count = sum(1 for n in graph.nodes if isinstance(n, EntryNode))
    return_count = sum(1 for n in graph.nodes if isinstance(n, ReturnNode))
    if entry_count != 1:
        errors.append(f"{graph.name}: {entry_count} entry nodes")
    if return_count != 1:
        errors.append(f"{graph.name}: {return_count} return nodes")

    for node in graph.nodes:
        if node.graph is not graph:
            errors.append(f"{graph.name}: foreign node {node!r}")
        for port in node.inputs:
            if port.source is None:
                errors.append(
                    f"{graph.name}: dangling input {node!r}.{port.name}")
                continue
            if port.source.node.graph is not graph:
                errors.append(
                    f"{graph.name}: cross-function edge into "
                    f"{node!r}.{port.name}")
            if port not in port.source.consumers:
                errors.append(
                    f"{graph.name}: consumers list out of sync at "
                    f"{node!r}.{port.name}")
        for out in node.outputs:
            for consumer in out.consumers:
                if consumer.source is not out:
                    errors.append(
                        f"{graph.name}: stale consumer {consumer!r} "
                        f"recorded on {out!r}")
            # A store output nobody consumes is a dropped effect: the
            # store thread must be linear and terminate at the return
            # node.  (Unconsumed *value* outputs are legal — discarded
            # call results, dead lookups before simplification.)
            if (out.tag is ValueTag.STORE and not out.consumers
                    and not isinstance(node, ReturnNode)):
                errors.append(
                    f"{graph.name}: dangling store output at node "
                    f"{node.kind}#{node.uid} ({out.name})")

        # Store-typing discipline.
        if isinstance(node, LookupNode):
            if node.store.source is not None:
                _expect_tag(node, "store", node.store.source.tag, True, errors)
            if node.loc.source is not None:
                _expect_tag(node, "loc", node.loc.source.tag, False, errors)
        elif isinstance(node, UpdateNode):
            if node.store.source is not None:
                _expect_tag(node, "store", node.store.source.tag, True, errors)
            if node.loc.source is not None:
                _expect_tag(node, "loc", node.loc.source.tag, False, errors)
            if node.value.source is not None:
                _expect_tag(node, "value", node.value.source.tag, False, errors)
        elif isinstance(node, CallNode):
            if node.store.source is not None:
                _expect_tag(node, "store", node.store.source.tag, True, errors)
        elif isinstance(node, ReturnNode):
            if node.store.source is not None:
                _expect_tag(node, "store", node.store.source.tag, True, errors)
        elif isinstance(node, MergeNode):
            if not node.branches:
                errors.append(f"{graph.name}: empty merge {node!r}")
            for branch in node.branches:
                src = branch.source
                if src is None:
                    continue
                if node.out.tag is ValueTag.STORE and src.tag is not ValueTag.STORE:
                    errors.append(
                        f"{graph.name}: non-store branch into store merge "
                        f"{node!r}")
                if node.out.tag is not ValueTag.STORE and src.tag is ValueTag.STORE:
                    errors.append(
                        f"{graph.name}: store branch into value merge {node!r}")

    if errors:
        raise IRError("; ".join(errors))


def validate_program(program: Program) -> None:
    """Validate every function plus program-level invariants."""
    errors: List[str] = []
    for graph in program.functions.values():
        try:
            validate_function(graph)
        except IRError as exc:
            errors.append(str(exc))
    for root in program.roots:
        if root not in program.functions:
            errors.append(f"undefined root {root!r}")
    for pair in program.initial_store:
        if pair.path.base is None:
            errors.append(f"initial store pair with offset path: {pair!r}")
    for name in program.function_locations:
        if name not in program.functions:
            errors.append(f"function location for undefined function {name!r}")
    if errors:
        raise IRError("; ".join(errors))
