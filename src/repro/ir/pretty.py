"""Textual dump of function graphs, for debugging and golden tests."""

from __future__ import annotations

from io import StringIO
from typing import Optional

from .graph import FunctionGraph, Program
from .nodes import (
    AddressNode,
    CallNode,
    ConstNode,
    EntryNode,
    LookupNode,
    MergeNode,
    Node,
    PrimopNode,
    ReturnNode,
    UpdateNode,
)


def _port_ref(node: Node, port_name: str) -> str:
    return f"%{node.uid}.{port_name}" if len(node.outputs) > 1 else f"%{node.uid}"


def _operand(port) -> str:
    src = port.source
    if src is None:
        return "<dangling>"
    return _port_ref(src.node, src.name)


def format_node(node: Node) -> str:
    """One line describing a node, its operands, and its outputs."""
    outs = ", ".join(
        f"{_port_ref(node, o.name)}:{o.tag.value}" for o in node.outputs)
    if isinstance(node, ConstNode):
        body = f"const {node.value!r}"
    elif isinstance(node, AddressNode):
        body = f"address {node.path!r}"
    elif isinstance(node, LookupNode):
        body = f"lookup loc={_operand(node.loc)} store={_operand(node.store)}"
        if node.is_indirect:
            body += "  ; indirect"
    elif isinstance(node, UpdateNode):
        body = (f"update loc={_operand(node.loc)} store={_operand(node.store)}"
                f" value={_operand(node.value)}")
        if node.is_indirect:
            body += "  ; indirect"
    elif isinstance(node, CallNode):
        args = " ".join(_operand(a) for a in node.args)
        body = (f"call fcn={_operand(node.fcn)} args=[{args}] "
                f"store={_operand(node.store)}")
    elif isinstance(node, EntryNode):
        body = "entry"
    elif isinstance(node, ReturnNode):
        value = _operand(node.value) if node.value is not None else "<void>"
        body = f"return value={value} store={_operand(node.store)}"
    elif isinstance(node, MergeNode):
        branches = " ".join(_operand(b) for b in node.branches)
        pred = f" pred={_operand(node.pred)}" if node.pred is not None else ""
        body = f"merge{pred} [{branches}]"
    elif isinstance(node, PrimopNode):
        operands = " ".join(_operand(o) for o in node.operands)
        body = f"primop {node.op} [{operands}]"
    else:  # pragma: no cover - future node kinds
        body = node.kind
    line = f"  {outs} = {body}" if outs else f"  {body}"
    if node.origin:
        line += f"    ; {node.origin}"
    return line


def format_function(graph: FunctionGraph) -> str:
    out = StringIO()
    rec = " (recursive)" if graph.recursive else ""
    out.write(f"function {graph.name}{rec} {{\n")
    for node in sorted(graph.nodes, key=lambda n: n.uid):
        out.write(format_node(node) + "\n")
    out.write("}\n")
    return out.getvalue()


def format_program(program: Program, only: Optional[str] = None) -> str:
    out = StringIO()
    out.write(f"program {program.name}\n")
    out.write(f"roots: {', '.join(program.roots) or '<none>'}\n")
    if program.initial_store:
        out.write("initial store:\n")
        for pair in program.initial_store:
            out.write(f"  {pair!r}\n")
    for name, graph in sorted(program.functions.items()):
        if only is not None and name != only:
            continue
        out.write("\n")
        out.write(format_function(graph))
    return out.getvalue()
