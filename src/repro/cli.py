"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``analyze FILE [--sensitivity X] [--show-pairs] [--modref]
  [--defuse] [--deadstore] [--format text|json]`` — run a points-to
  analysis over a C file and print a summary; the client flags route
  mod/ref, def/use, and dead-store reports through the same
  deterministic text/JSON machinery.
* ``dump FILE [--function NAME]`` — print the lowered VDG.
* ``experiment ID`` — regenerate one of the paper's tables/figures
  (fig2, fig3, fig4, fig6, fig7, cost, opt42, perf43, gap).

``analyze`` and ``experiment`` share the run-layer flags:
``--telemetry PATH`` writes one JSON-lines record per (program,
flavor) — see :mod:`repro.telemetry` for the schema — and
``--keep-going`` (default) / ``--fail-fast`` pick the failure policy
for multi-program runs.
* ``suite`` — list the benchmark suite programs.
* ``check [FILE ...] [--checkers IDS] [--flavor X] [--format F]`` —
  run the bug-finding checkers (null dereference, use-after-return,
  uninitialized read, wild indirect call) over the suite or given
  files; ``--format sarif`` emits a SARIF 2.1.0 log.
* ``slice TARGET --criterion file:line | --from-finding KEY`` —
  compute a backward/forward program slice over the alias-aware
  dependence graph (``--format text|json|dot``).
* ``fuzz [--seed S] [--count N]`` — differential fuzzing: generate
  random pointer programs and check concrete ⊆ CS ⊆ CI ⊆ FI at every
  indirect operation, plus determinism and fixpoint oracles.
* ``serve [--port P] [--workers N] [--max-memory-mb MB]`` — run the
  analysis daemon: HTTP/JSON endpoints ``analyze``/``check``/
  ``query``/``slice``/``metrics`` over in-memory LRU cache tiers, request
  coalescing, and the fault-isolated process pool (see
  :mod:`repro.serve`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.compare import compare_results
from .analysis.common import SCHEDULES
from .analysis.insensitive import analyze_insensitive
from .analysis.sensitive import analyze_sensitive
from .analysis.stats import indirect_op_stats, pair_census, program_sizes
from .errors import ReproError
from .frontend.lower import lower_file
from .ir.pretty import format_program
from .report.experiments import EXPERIMENT_IDS, render_experiment
from .suite.registry import PROGRAM_NAMES, program_path


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    """Shared run-layer flags: telemetry output and failure policy."""
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="write one JSON-lines telemetry record per "
                             "(program, flavor) to PATH ('-' for stdout)")
    policy = parser.add_mutually_exclusive_group()
    policy.add_argument("--fail-fast", dest="fail_fast",
                        action="store_true",
                        help="abort the whole run on the first failing "
                             "program")
    policy.add_argument("--keep-going", dest="fail_fast",
                        action="store_false",
                        help="report per-program errors but keep "
                             "analyzing the rest (default)")
    parser.set_defaults(fail_fast=False)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Points-to analysis for C (Ruf, PLDI 1995 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="analyze a C program (several files are linked; "
                        "with --jobs > 1 each file is a separate program)")
    analyze.add_argument("file", nargs="+", help="C source file(s)")
    analyze.add_argument("--sensitivity", default="both",
                         choices=["insensitive", "sensitive", "both",
                                  "flowinsensitive"])
    analyze.add_argument("--show-pairs", action="store_true",
                         help="print every output's points-to set")
    analyze.add_argument("--modref", action="store_true",
                         help="report per-procedure mod/ref summaries")
    analyze.add_argument("--defuse", action="store_true",
                         help="report per-read reaching definitions "
                              "(def/use chains through memory)")
    analyze.add_argument("--deadstore", action="store_true",
                         help="report dead and unreachable stores")
    analyze.add_argument("--format", default="text", dest="fmt",
                         choices=["text", "json"],
                         help="output format for the summary and "
                              "client reports (default: text)")
    analyze.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="analyze each input file as an independent "
                              "program, fanned across N worker processes "
                              "(files are NOT linked; default: 1, linked)")
    analyze.add_argument("--no-cache", action="store_true",
                         help="skip the persistent lowering cache under "
                              ".repro-cache/ and lower from scratch")
    analyze.add_argument("--schedule", default="batched",
                         choices=list(SCHEDULES),
                         help="worklist schedule: batched (dense bitset "
                              "engine, default), scc (dense engine with "
                              "SCC-topological port priority), or fifo "
                              "(reference one-fact queue)")
    analyze.add_argument("--parallel-scc", action="store_true",
                         dest="parallel_scc",
                         help="under --schedule scc, shard each "
                              "topological level's independent SCCs "
                              "across worker threads (CI flavor only; "
                              "identical solutions and digests)")
    analyze.add_argument("--incremental", action="store_true",
                         help="persist per-SCC summaries in the "
                              "lowering cache and re-solve only "
                              "call-graph SCCs whose bodies or "
                              "transitive callees changed (identical "
                              "solutions and digests)")
    _add_run_flags(analyze)

    dump = sub.add_parser("dump", help="print the lowered VDG")
    dump.add_argument("file", help="C source file")
    dump.add_argument("--function", default=None,
                      help="only this procedure")
    dump.add_argument("--dot", action="store_true",
                      help="emit Graphviz DOT instead of text")
    dump.add_argument("--annotate", action="store_true",
                      help="annotate memory operations with their "
                           "context-insensitive location sets")

    export = sub.add_parser(
        "export", help="serialize an analysis result as JSON")
    export.add_argument("file", help="C source file")
    export.add_argument("--sensitivity", default="insensitive",
                        choices=["insensitive", "sensitive",
                                 "flowinsensitive"])
    export.add_argument("--no-pairs", action="store_true",
                        help="omit the per-output pair sets")

    experiment = sub.add_parser(
        "experiment", help="regenerate a table/figure from the paper")
    experiment.add_argument("id", choices=list(EXPERIMENT_IDS) + ["all"])
    experiment.add_argument("--markdown", action="store_true",
                            help="emit GitHub-flavored markdown tables")
    experiment.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="fan suite analyses across N worker "
                                 "processes (default: 1, in-process)")
    experiment.add_argument("--no-cache", action="store_true",
                            help="skip the persistent lowering cache")
    experiment.add_argument("--schedule", default="batched",
                            choices=list(SCHEDULES),
                            help="worklist schedule for the suite "
                                 "analyses (default: batched)")
    experiment.add_argument("--parallel-scc", action="store_true",
                            dest="parallel_scc",
                            help="shard independent SCCs across worker "
                                 "threads in the CI solver")
    _add_run_flags(experiment)

    explain = sub.add_parser(
        "explain",
        help="show derivations for an indirect memory operation's "
             "location set")
    explain.add_argument("file", help="C source file")
    explain.add_argument("--function", default=None,
                         help="limit to this procedure")
    explain.add_argument("--line", type=int, default=None,
                         help="limit to operations at this source line")

    sub.add_parser("suite", help="list benchmark suite programs")

    check = sub.add_parser(
        "check", help="run the bug-finding checkers (hazard-model "
                      "lowering) over the suite or given C files")
    check.add_argument("targets", nargs="*", metavar="TARGET",
                       help="suite program names and/or C source files "
                            "(default: the whole benchmark suite)")
    check.add_argument("--checkers", default=None, metavar="IDS",
                       help="comma-separated checker ids (default: all "
                            "registered checkers)")
    check.add_argument("--flavor", default="insensitive",
                       choices=["insensitive", "sensitive",
                                "flowinsensitive", "all"],
                       help="analysis flavor the checkers consume "
                            "(default: insensitive; 'all' runs every "
                            "flavor for side-by-side counts)")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan programs across N worker processes "
                            "(default: 1, in-process)")
    check.add_argument("--schedule", default="batched",
                       choices=list(SCHEDULES),
                       help="worklist schedule for the underlying "
                            "analyses (default: batched)")
    check.add_argument("--no-cache", action="store_true",
                       help="skip the persistent lowering cache")
    check.add_argument("--parallel-scc", action="store_true",
                       dest="parallel_scc",
                       help="shard independent SCCs across worker "
                            "threads in the CI solver")
    check.add_argument("--incremental", action="store_true",
                       help="reuse persisted per-SCC summaries from "
                            "the lowering cache (same findings and "
                            "digests; summary counters in telemetry)")
    check.add_argument("--witness", action="store_true",
                       help="attach a derivation witness to each "
                            "finding with evidence (text/json formats)")
    check.add_argument("--slice-witness", action="store_true",
                       dest="slice_witness",
                       help="attach each finding's backward "
                            "dependence-graph slice as a witness "
                            "(combinable with --witness)")
    check.add_argument("--format", default="text", dest="fmt",
                       choices=["text", "json", "sarif"],
                       help="output format (default: text; sarif emits "
                            "a SARIF 2.1.0 log)")
    _add_run_flags(check)

    slice_p = sub.add_parser(
        "slice", help="compute program slices over the alias-aware "
                      "dependence graph")
    slice_p.add_argument("targets", nargs="*", metavar="TARGET",
                         help="suite program names and/or C source "
                              "files (default: the whole benchmark "
                              "suite)")
    what = slice_p.add_mutually_exclusive_group(required=True)
    what.add_argument("--criterion", default=None, metavar="FILE:LINE",
                      help="slice from every node lowered from this "
                           "source coordinate")
    what.add_argument("--from-finding", default=None, dest="from_finding",
                      metavar="KEY",
                      help="slice from a checker finding ('repro "
                           "check' key or unique substring; implies "
                           "hazard-model lowering)")
    slice_p.add_argument("--direction", default="backward",
                         choices=["backward", "forward"],
                         help="slice direction (default: backward)")
    slice_p.add_argument("--flavor", default="insensitive",
                         choices=["insensitive", "sensitive",
                                  "flowinsensitive"],
                         help="analysis flavor the dependence graph "
                              "is built from (default: insensitive)")
    slice_p.add_argument("--format", default="text", dest="fmt",
                         choices=["text", "json", "dot"],
                         help="output format (default: text; dot "
                              "emits Graphviz)")
    slice_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="fan programs across N worker processes "
                              "(default: 1, in-process)")
    slice_p.add_argument("--schedule", default="batched",
                         choices=list(SCHEDULES),
                         help="worklist schedule for the underlying "
                              "analysis (default: batched)")
    slice_p.add_argument("--no-cache", action="store_true",
                         help="skip the persistent lowering cache")
    slice_p.add_argument("--parallel-scc", action="store_true",
                         dest="parallel_scc",
                         help="shard independent SCCs across worker "
                              "threads in the CI solver")
    slice_p.add_argument("--incremental", action="store_true",
                         help="reuse persisted per-SCC summaries from "
                              "the lowering cache")
    _add_run_flags(slice_p)

    serve = sub.add_parser(
        "serve", help="run the analysis daemon (HTTP/JSON endpoints "
                      "analyze, check, query, slice, metrics)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8377,
                       help="TCP port (default: 8377; 0 picks a free "
                            "port and prints it)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process-pool width for cold solves "
                            "(default: CPU-derived)")
    serve.add_argument("--max-memory-mb", type=int, default=512,
                       dest="max_memory_mb", metavar="MB",
                       help="combined budget for the in-memory LRU "
                            "cache tiers (default: 512)")
    serve.add_argument("--queue-limit", type=int, default=32,
                       dest="queue_limit", metavar="N",
                       help="max in-flight requests before shedding "
                            "with 429 (default: 32)")
    serve.add_argument("--timeout-seconds", type=float, default=300.0,
                       dest="timeout_seconds", metavar="S",
                       help="per-request wall-clock budget "
                            "(default: 300; 0 disables)")
    serve.add_argument("--request-memory-mb", type=int, default=0,
                       dest="request_memory_mb", metavar="MB",
                       help="per-request worker address-space budget "
                            "(default: 0 = off)")
    serve.add_argument("--schedule", default="batched",
                       choices=list(SCHEDULES),
                       help="default worklist schedule (default: "
                            "batched; requests may override)")
    serve.add_argument("--no-cache", action="store_true",
                       help="skip the persistent lowering/summary "
                            "caches (every request solves cold)")
    serve.add_argument("--no-incremental", action="store_true",
                       help="disable SCC-summary replay for warm "
                            "requests (always re-solve)")
    serve.add_argument("--parallel-scc", action="store_true",
                       dest="parallel_scc",
                       help="shard independent SCCs across worker "
                            "threads in the CI solver")
    serve.add_argument("--telemetry", metavar="PATH", default=None,
                       help="append kind=\"serve\" JSON-lines metric "
                            "snapshots to PATH")

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing with a concrete-execution "
                     "soundness oracle")
    fuzz.add_argument("--seed", type=int, default=0, metavar="S",
                      help="first generator seed (default: 0); a "
                           "campaign covers seeds S..S+count-1")
    fuzz.add_argument("--count", type=int, default=50, metavar="N",
                      help="number of programs to generate and check "
                           "(default: 50)")
    fuzz.add_argument("--max-nodes", type=int, default=80, metavar="N",
                      help="approximate size budget per generated "
                           "program (default: 80)")
    fuzz.add_argument("--mutate", default=None, metavar="NAME",
                      help="install a deliberately broken transfer "
                           "rule for the whole campaign (self-test; "
                           "see repro.fuzz.mutations)")
    fuzz.add_argument("--deep-every", type=int, default=0, metavar="N",
                      help="every N clean programs, also check "
                           "--jobs/cache digest determinism through "
                           "the parallel driver (default: off)")
    fuzz.add_argument("--artifacts", default=None, metavar="DIR",
                      help="write original.c/shrunk.c/manifest.json "
                           "for each failure under DIR")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip minimizing failing programs")
    fuzz.add_argument("--summaries", action="store_true",
                      help="per seed, also assert summary-based "
                           "(incremental) solutions are digest-"
                           "identical to whole-program solving for "
                           "CI/CS/FI, including after evicting a "
                           "persisted entry")
    _add_run_flags(fuzz)
    return parser


def _write_telemetry(path, records) -> None:
    from .telemetry import write_jsonl

    if path is not None:
        write_jsonl(path, records)


#: Flavor → human label for analyze's text output.
_FLAVOR_LABELS = {"insensitive": "context-insensitive",
                  "sensitive": "context-sensitive",
                  "flowinsensitive": "flow-insensitive"}


def _cmd_analyze(args) -> int:
    cache = not args.no_cache
    if args.jobs > 1 and len(args.file) > 1:
        return _analyze_parallel(args, cache)
    from .telemetry import peak_rss_kb
    rss_baseline = peak_rss_kb()
    if len(args.file) == 1:
        program = lower_file(args.file[0], cache=cache)
    else:
        from .frontend.lower import lower_files
        program = lower_files(args.file, cache=cache)
    for warning in program.extras.get("warnings", ()):
        print(f"warning: {warning}", file=sys.stderr)

    if args.sensitivity == "flowinsensitive":
        if args.incremental:
            from .analysis.incremental import analyze_incremental
            result = analyze_incremental(
                program, ("flowinsensitive",), cache=cache,
                schedule=args.schedule)["flowinsensitive"]
        else:
            from .analysis.flowinsensitive import analyze_flowinsensitive
            result = analyze_flowinsensitive(
                program, schedule=args.schedule,
                parallel_scc=args.parallel_scc)
        results = {"flowinsensitive": result}
        _report_program(program, results, args)
        _write_telemetry(args.telemetry,
                         _telemetry_for(program.name, results,
                                        rss_baseline=rss_baseline))
        return 0

    results = {}
    cs = None
    if args.incremental:
        from .analysis.incremental import analyze_incremental
        want = (("insensitive",) if args.sensitivity == "insensitive"
                else ("insensitive", "sensitive"))
        solved = analyze_incremental(program, want, cache=cache,
                                     schedule=args.schedule,
                                     parallel_scc=args.parallel_scc)
        ci = solved["insensitive"]
        cs = solved.get("sensitive")
    else:
        ci = analyze_insensitive(program, schedule=args.schedule,
                                 parallel_scc=args.parallel_scc)
    if args.sensitivity in ("insensitive", "both"):
        results["insensitive"] = ci
    if args.sensitivity in ("sensitive", "both"):
        if cs is None:
            cs = analyze_sensitive(program, ci_result=ci,
                                   schedule=args.schedule)
        results["sensitive"] = cs
    _report_program(program, results, args)
    _write_telemetry(args.telemetry,
                     _telemetry_for(program.name, results, args.schedule,
                                    rss_baseline=rss_baseline))
    return 0


def _report_program(program, results, args) -> None:
    """One analyzed program's report: text lines or one JSON object."""
    import json as _json

    compare = (args.sensitivity == "both"
               and "insensitive" in results and "sensitive" in results)
    if args.fmt == "json":
        print(_json.dumps(_program_payload(program, results, args,
                                           compare=compare),
                          indent=2, sort_keys=True))
        return
    sizes = program_sizes(program)
    print(f"{program.name}: {sizes.source_lines} lines, "
          f"{sizes.vdg_nodes} VDG nodes, "
          f"{sizes.alias_related_outputs} alias-related outputs")
    for flavor, result in results.items():
        _print_result(_FLAVOR_LABELS[flavor], result, args)
    if compare:
        report = compare_results(results["insensitive"],
                                 results["sensitive"])
        print(f"spurious pairs: {report.spurious_pairs} "
              f"({report.percent_spurious:.1f}% of CI total); "
              f"indirect ops identical: "
              f"{report.indirect_ops_identical}")


def _program_payload(program, results, args, compare=False) -> dict:
    """JSON-shaped analyze report (summary + requested client
    sections), deterministically ordered throughout."""
    from .analysis.clients.render import clients_payload

    sizes = program_sizes(program)
    doc = {
        "program": program.name,
        "sizes": {"source_lines": sizes.source_lines,
                  "vdg_nodes": sizes.vdg_nodes,
                  "alias_related_outputs": sizes.alias_related_outputs},
        "flavors": {},
    }
    for flavor, result in results.items():
        census = pair_census(result)
        reads = indirect_op_stats(result, "read")
        writes = indirect_op_stats(result, "write")
        entry = {
            "pairs": {"pointer": census.pointer,
                      "function": census.function,
                      "aggregate": census.aggregate,
                      "store": census.store, "total": census.total},
            "indirect_reads": {"total": reads.total,
                               "max": reads.max_locations,
                               "avg": round(reads.avg, 4)},
            "indirect_writes": {"total": writes.total,
                                "max": writes.max_locations,
                                "avg": round(writes.avg, 4)},
            "transfers": result.counters.transfers,
            "meets": result.counters.meets,
            "elapsed_seconds": round(result.elapsed_seconds, 6),
        }
        if args.show_pairs:
            points_to = {}
            for graph_name, graph in result.program.functions.items():
                for output in graph.outputs():
                    pairs = result.pairs(output)
                    if pairs:
                        points_to[f"{graph_name}:{output!r}"] = \
                            sorted(repr(p) for p in pairs)
            entry["points_to"] = dict(sorted(points_to.items()))
        entry.update(clients_payload(
            result, modref_wanted=args.modref,
            defuse_wanted=args.defuse,
            deadstore_wanted=args.deadstore))
        doc["flavors"][flavor] = entry
    if compare:
        report = compare_results(results["insensitive"],
                                 results["sensitive"])
        doc["comparison"] = {
            "spurious_pairs": report.spurious_pairs,
            "percent_spurious": round(report.percent_spurious, 4),
            "indirect_ops_identical": report.indirect_ops_identical,
        }
    return doc


def _telemetry_for(name, results, schedule="batched", rss_baseline=None):
    """Records for an in-process (single file, no pool) analyze run.

    These measure the CLI process itself, so they carry the same
    ``rss_scope="process"`` / ``rss_delta_kb`` annotation the runner's
    inline path attaches — raw ``peak_rss_kb`` here includes the
    whole CLI startup, not just the analysis.
    """
    from .telemetry import result_records

    records = result_records(name, results, schedule)
    for record in records:
        peak = record.get("peak_rss_kb")
        record["rss_scope"] = "process"
        record["rss_delta_kb"] = (None if peak is None
                                  or rss_baseline is None
                                  else max(0, peak - rss_baseline))
    return records


def _analyze_parallel(args, cache) -> int:
    """--jobs > 1: each file is its own program, analyzed in a worker.

    Failures are isolated per file (unless ``--fail-fast``): a file
    whose worker raises or dies is reported on stderr — and as a
    ``kind="error"`` telemetry record — while the rest complete.
    """
    from .runner import run_files_report

    if args.sensitivity == "flowinsensitive":
        flavors = ("flowinsensitive",)
    elif args.sensitivity == "both":
        flavors = ("insensitive", "sensitive")
    else:
        flavors = (args.sensitivity,)
    report = run_files_report(args.file, flavors=flavors, jobs=args.jobs,
                              cache=cache, fail_fast=args.fail_fast,
                              schedule=args.schedule,
                              parallel_scc=args.parallel_scc,
                              incremental=args.incremental)
    for outcome in report.outcomes:
        if not outcome.ok:
            print(f"error: {outcome.error}", file=sys.stderr)
            continue
        results = outcome.results
        program = next(iter(results.values())).program
        _report_program(program, results, args)
    _write_telemetry(args.telemetry, report.records)
    return 0 if report.ok else 1


def _print_result(label: str, result, args) -> None:
    census = pair_census(result)
    reads = indirect_op_stats(result, "read")
    writes = indirect_op_stats(result, "write")
    print(f"[{label}] pairs: pointer={census.pointer} "
          f"function={census.function} aggregate={census.aggregate} "
          f"store={census.store} total={census.total}")
    print(f"[{label}] indirect reads: {reads.total} "
          f"(max {reads.max_locations}, avg {reads.avg:.2f}); "
          f"writes: {writes.total} "
          f"(max {writes.max_locations}, avg {writes.avg:.2f}); "
          f"{result.counters.transfers} transfers, "
          f"{result.counters.meets} meets, "
          f"{result.elapsed_seconds:.3f}s")
    if args.show_pairs:
        for graph_name, graph in result.program.functions.items():
            for output in graph.outputs():
                pairs = result.pairs(output)
                if pairs:
                    shown = ", ".join(sorted(repr(p) for p in pairs))
                    print(f"  {graph_name}:{output!r} = {{{shown}}}")
    if args.modref or args.defuse or args.deadstore:
        from .analysis.clients.render import (clients_payload,
                                              render_clients_text)
        sections = clients_payload(result, modref_wanted=args.modref,
                                   defuse_wanted=args.defuse,
                                   deadstore_wanted=args.deadstore)
        for line in render_clients_text(sections):
            print(line)


def _cmd_dump(args) -> int:
    program = lower_file(args.file)
    result = analyze_insensitive(program) if args.annotate else None
    if args.dot:
        from .ir.dot import program_to_dot, to_dot
        if args.function is not None:
            graph = program.functions.get(args.function)
            if graph is None:
                print(f"error: no function {args.function!r}",
                      file=sys.stderr)
                return 1
            sys.stdout.write(to_dot(graph, result=result))
        else:
            sys.stdout.write(program_to_dot(program, result=result))
        return 0
    sys.stdout.write(format_program(program, only=args.function))
    if result is not None:
        for graph in program.functions.values():
            for node in graph.memory_operations():
                locations = sorted(repr(p)
                                   for p in result.op_locations(node))
                print(f"; {graph.name}:{node!r} -> "
                      f"{{{', '.join(locations)}}}")
    return 0


def _cmd_export(args) -> int:
    from .report.export import result_to_json

    program = lower_file(args.file)
    if args.sensitivity == "insensitive":
        result = analyze_insensitive(program)
    elif args.sensitivity == "sensitive":
        result = analyze_sensitive(program)
    else:
        from .analysis.flowinsensitive import analyze_flowinsensitive
        result = analyze_flowinsensitive(program, schedule=args.schedule)
    print(result_to_json(result, include_pairs=not args.no_pairs))
    return 0


def _cmd_experiment(args) -> int:
    from .report.experiments import SuiteRunner, render_experiment_markdown

    wanted = list(EXPERIMENT_IDS) if args.id == "all" else [args.id]
    runner = SuiteRunner(jobs=args.jobs, cache=not args.no_cache,
                         fail_fast=args.fail_fast, schedule=args.schedule,
                         parallel_scc=args.parallel_scc)
    for experiment_id in wanted:
        if args.markdown:
            print(render_experiment_markdown(experiment_id, runner))
        else:
            print(render_experiment(experiment_id, runner))
        print()
    for error in runner.errors:
        print(f"error: {error}", file=sys.stderr)
    if args.telemetry is not None:
        _write_telemetry(args.telemetry, runner.telemetry_records())
    return 0 if not runner.errors else 1


def _cmd_explain(args) -> int:
    from .analysis.explain import Explainer, format_derivation

    program = lower_file(args.file)
    result = analyze_insensitive(program)
    explainer = Explainer(result)
    shown = 0
    for name, graph in sorted(program.functions.items()):
        if args.function is not None and name != args.function:
            continue
        for node in graph.memory_operations():
            if not node.is_indirect:
                continue
            if args.line is not None:
                line = node.origin.rsplit(":", 1)[-1] if node.origin else ""
                if line != str(args.line):
                    continue
            source = node.loc.source
            print(f"{name}: {node.kind} at {node.origin}")
            pairs = result.pairs(source)
            if not pairs:
                print("    (dereferences only the null pointer)")
            for pair in sorted(pairs, key=repr):
                derivation = explainer.explain(source, pair)
                print(format_derivation(derivation, indent=4))
            shown += 1
    if not shown:
        print("no matching indirect memory operations", file=sys.stderr)
        return 1
    return 0


def _cmd_suite(args) -> int:
    for name in PROGRAM_NAMES:
        print(f"{name}: {program_path(name)}")
    return 0


def _cmd_check(args) -> int:
    import json as _json

    from .analysis.checkers import findings_digest
    from .report.export import findings_to_sarif
    from .runner import run_check_report

    if args.flavor == "all":
        flavors = ("insensitive", "sensitive", "flowinsensitive")
    else:
        flavors = (args.flavor,)
    checkers = None
    if args.checkers is not None:
        checkers = [c.strip() for c in args.checkers.split(",")
                    if c.strip()]
    names: List[str] = []
    paths: List[str] = []
    for target in args.targets:
        (names if target in PROGRAM_NAMES else paths).append(target)
    if args.slice_witness:
        witness = "slice+deriv" if args.witness else "slice"
    else:
        witness = args.witness
    report = run_check_report(
        names=names or (None if not paths else []),
        paths=paths or None, flavors=flavors, checkers=checkers,
        jobs=args.jobs, schedule=args.schedule, cache=not args.no_cache,
        witness=witness, fail_fast=args.fail_fast,
        parallel_scc=args.parallel_scc, incremental=args.incremental)

    ordered = []  # (program, finding) in task/flavor/finding order
    for outcome in report.outcomes:
        if not outcome.ok:
            print(f"error: {outcome.error}", file=sys.stderr)
            continue
        for flavor in flavors:
            for finding in outcome.findings.get(flavor, ()):
                ordered.append((outcome.name, finding))

    if args.fmt == "sarif":
        findings = [f for _, f in ordered]
        print(_json.dumps(findings_to_sarif(findings), indent=2,
                          sort_keys=True))
    elif args.fmt == "json":
        payload = {
            "programs": [{
                "program": o.name,
                "flavors": {
                    flavor: {
                        "findings": [f.as_dict() for f in found],
                        "digest": findings_digest(found),
                    }
                    for flavor, found in o.findings.items()}
            } for o in report.outcomes if o.ok],
            "errors": [str(e) for e in report.errors],
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        for program, f in ordered:
            where = f.origin or f"{f.function}:{f.node}"
            line = (f"{program}: {where}: {f.severity}: "
                    f"[{f.checker}/{f.flavor}] {f.message}")
            if f.path:
                line += f" ({f.path})"
            print(line)
            if f.witness:
                for witness_line in f.witness.splitlines():
                    print(f"    {witness_line}")
        by_severity: dict = {}
        for _, f in ordered:
            by_severity[f.severity] = by_severity.get(f.severity, 0) + 1
        summary = ", ".join(f"{n} {sev}(s)"
                            for sev, n in sorted(by_severity.items()))
        print(f"check: {len(ordered)} finding(s) across "
              f"{sum(1 for o in report.outcomes if o.ok)} program(s)"
              + (f": {summary}" if summary else ""))
    _write_telemetry(args.telemetry, report.records)
    return 0 if report.ok else 1


def _cmd_slice(args) -> int:
    import json as _json

    from .report.export import slice_to_dot
    from .runner import run_slice_report

    names: List[str] = []
    paths: List[str] = []
    for target in args.targets:
        (names if target in PROGRAM_NAMES else paths).append(target)
    report = run_slice_report(
        names=names or (None if not paths else []),
        paths=paths or None, flavor=args.flavor,
        criterion=args.criterion, from_finding=args.from_finding,
        direction=args.direction, jobs=args.jobs,
        schedule=args.schedule, cache=not args.no_cache,
        fail_fast=args.fail_fast, parallel_scc=args.parallel_scc,
        incremental=args.incremental)

    payloads = []
    for outcome in report.outcomes:
        if not outcome.ok:
            print(f"error: {outcome.error}", file=sys.stderr)
            continue
        payloads.append(outcome.payload)

    if args.fmt == "json":
        print(_json.dumps({"slices": payloads,
                           "errors": [str(e) for e in report.errors]},
                          indent=2, sort_keys=True))
    elif args.fmt == "dot":
        for payload in payloads:
            sys.stdout.write(slice_to_dot(payload["slice"],
                                          payload["node_info"]))
    else:
        for payload in payloads:
            sl = payload["slice"]
            graph = payload["graph"]
            print(f"{payload['program']} [{payload['flavor']}] "
                  f"{sl['direction']} slice of {sl['criterion']}: "
                  f"{sl['size']} nodes over {len(sl['origins'])} "
                  f"source lines (digest {sl['digest'][:12]}; "
                  f"graph {graph['stats']['nodes']} nodes / "
                  f"{graph['stats']['edges']} edges, "
                  f"digest {graph['digest'][:12]})")
            for origin in sl["origins"]:
                print(f"  {origin}")
    _write_telemetry(args.telemetry, report.records)
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    from .fuzz.driver import run_fuzz
    from .fuzz.mutations import MUTATIONS, SOURCE_MUTATIONS

    known = set(MUTATIONS) | set(SOURCE_MUTATIONS)
    if args.mutate is not None and args.mutate not in known:
        print(f"error: unknown mutation {args.mutate!r}; expected one "
              f"of {', '.join(sorted(known))}", file=sys.stderr)
        return 2

    def progress(outcome):
        if outcome.ok:
            return
        kinds = ", ".join(sorted({v.kind for v in outcome.violations}))
        extra = ""
        if outcome.shrunk_lines is not None:
            extra += f", shrunk to {outcome.shrunk_lines} lines"
        if outcome.artifact_dir:
            extra += f", artifacts in {outcome.artifact_dir}"
        print(f"FAIL seed {outcome.seed} ({outcome.name}): "
              f"{len(outcome.violations)} violation(s) [{kinds}]{extra}")
        for violation in outcome.violations[:5]:
            print(f"  {violation.kind}: {violation.detail}")

    report = run_fuzz(
        args.seed, args.count, max_nodes=args.max_nodes,
        mutate=args.mutate, shrink=not args.no_shrink,
        deep_every=args.deep_every, artifacts=args.artifacts,
        fail_fast=args.fail_fast, progress=progress,
        summaries=args.summaries)

    checked = len(report.outcomes)
    failures = report.failures
    ops = sum(o.stats.get("memory_ops", 0) for o in report.outcomes)
    accesses = sum(o.stats.get("concrete_accesses", 0)
                   for o in report.outcomes)
    print(f"fuzz: {checked} program(s), seeds {args.seed}.."
          f"{args.seed + checked - 1}: "
          f"{checked - len(failures)} ok, {len(failures)} failing; "
          f"{ops} memory ops, {accesses} concrete accesses checked")
    for violation in report.deep_violations:
        print(f"  deep {violation.kind}: {violation.detail}")
    if report.deep_violations:
        print(f"fuzz: {len(report.deep_violations)} deep-check "
              f"violation(s)")
    _write_telemetry(args.telemetry, report.records)
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    from .serve import ServeConfig
    from .serve.http import run_server

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        max_memory_mb=args.max_memory_mb,
        queue_limit=args.queue_limit,
        timeout_seconds=args.timeout_seconds,
        request_memory_mb=args.request_memory_mb,
        schedule=args.schedule, cache=not args.no_cache,
        incremental=not args.no_incremental,
        parallel_scc=args.parallel_scc, telemetry=args.telemetry)
    return run_server(config)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "dump": _cmd_dump,
        "experiment": _cmd_experiment,
        "explain": _cmd_explain,
        "export": _cmd_export,
        "suite": _cmd_suite,
        "check": _cmd_check,
        "slice": _cmd_slice,
        "fuzz": _cmd_fuzz,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that exited early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
