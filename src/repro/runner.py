"""Fault-isolated parallel analysis driver.

The 13 suite programs (and independent user files) are embarrassingly
parallel: each worker lowers one program — through the persistent
lowering cache, so repeat sweeps skip the frontend entirely — and runs
the requested analyses.  Results ship back whole: each worker's return
value is pickled as one message, so a result's ``program``, solution
ports, and call-graph nodes arrive identity-consistent with each other
(and interned facts re-unify on load via their ``__reduce__`` hooks).

Fault isolation is the design center.  ``pool.map`` fails the *sweep*
when one task fails — the first raising worker aborts iteration and
discards every completed program, and a worker killed outright (OOM
reaper, segfault in a C extension, ``os._exit``) surfaces as a bare
``BrokenProcessPool`` with no hint which program died.  This driver
instead:

* submits one future per task and drains them with ``as_completed``;
* catches exceptions *inside* the worker, shipping back a structured
  :class:`TaskOutcome` (name, results-or-error, telemetry records), so
  an analysis failure on one program is just that task's outcome;
* on ``BrokenProcessPool`` — a hard worker death poisons every pending
  future in the pool, not just the culprit's — re-runs each unresolved
  task in its own fresh single-worker pool, so survivors complete and
  the task that kills its pool *again* is identified by name.

Every outcome carries telemetry records (see :mod:`repro.telemetry`):
one ``kind="analysis"`` record per flavor, or one ``kind="error"``
record naming the failed task, ready for ``--telemetry`` JSON-lines
output.

``jobs=1`` (or a single task) runs inline in the calling process with
no executor, keeping the driver usable where fork is unavailable and
keeping tracebacks simple.  Inline runs honor ``fail_fast`` too:
``fail_fast=False`` (the default) converts per-task exceptions into
error outcomes; ``fail_fast=True`` lets the first one propagate.

For tests, the hook ``REPRO_FAULT_INJECT="<name>=exit"`` (or
``<name>=raise``) makes the worker for ``<name>`` die hard / raise —
an env var survives both fork and spawn, unlike a monkeypatch.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis.common import AnalysisResult
from .cpus import available_cpus
from .errors import ReproError

#: Analysis flavors the driver understands, in run order (CI first:
#: the CS pass reuses its result, the FI baseline is independent).
FLAVORS = ("insensitive", "sensitive", "flowinsensitive")

#: Test hook: ``"<name>=exit"`` kills the worker processing ``<name>``
#: via ``os._exit(3)`` (simulating an OOM kill / segfault);
#: ``"<name>=raise"`` makes it raise.  Multiple directives separated
#: by commas.
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

#: Sweeps at or below this many tasks run inline even when ``jobs > 1``:
#: forking an executor, importing the package in each worker, and
#: pickling results back costs more wall-clock than analyzing a handful
#: of programs does, which made tiny parallel sweeps *slower* than the
#: serial baseline.  Fault injection (tests) and ``force_pool`` callers
#: (the fuzz oracle's process-boundary cross-check) still get real
#: worker processes.
INLINE_TASK_THRESHOLD = 4


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: the CPUs this
    process can *actually* run on.  ``os.cpu_count()`` reports the
    whole machine and oversubscribes the pool inside cgroup- or
    affinity-restricted containers (see :mod:`repro.cpus`)."""
    return available_cpus()


def _check_flavors(flavors: Sequence[str]) -> Tuple[str, ...]:
    for flavor in flavors:
        if flavor not in FLAVORS:
            raise ReproError(
                f"unknown analysis flavor {flavor!r}; expected one of "
                f"{', '.join(FLAVORS)}")
    return tuple(flavors)


# -- outcome containers ----------------------------------------------------


@dataclass
class TaskError:
    """A failed task: which program, and how it failed."""

    name: str
    #: Exception class name, or ``"WorkerDied"`` for a hard kill.
    kind: str
    message: str
    traceback: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.name}: {self.kind}: {self.message}"


@dataclass
class TaskOutcome:
    """One task's result: analysis results *or* an error, plus the
    telemetry records describing whichever happened."""

    name: str
    results: Optional[Dict[str, AnalysisResult]] = None
    error: Optional[TaskError] = None
    records: List[dict] = field(default_factory=list)
    #: Checker output (``repro check`` tasks only): flavor → findings.
    #: Findings are plain-string records, so a check outcome ships
    #: without pickling programs or solutions back to the parent.
    findings: Optional[Dict[str, list]] = None
    #: Digest-only check tasks: flavor → findings digest.  The full
    #: finding lists never cross the process boundary — a digest plus
    #: the per-record counts is all the parent asked for.
    digests: Optional[Dict[str, str]] = None
    #: Serve tasks: the JSON-safe response payload built in the worker
    #: (digests, pair census, counters) — solutions stay worker-side.
    payload: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class RunReport:
    """A whole sweep's outcomes, in task submission order."""

    outcomes: List[TaskOutcome] = field(default_factory=list)

    @property
    def results(self) -> Dict[str, Dict[str, AnalysisResult]]:
        """Successful tasks only: ``{name: {flavor: result}}``."""
        return {o.name: o.results for o in self.outcomes if o.ok}

    @property
    def errors(self) -> List[TaskError]:
        return [o.error for o in self.outcomes if not o.ok]

    @property
    def records(self) -> List[dict]:
        """All telemetry records, flattened in task order."""
        return [rec for o in self.outcomes for rec in o.records]

    @property
    def ok(self) -> bool:
        return not self.errors


# -- workers ---------------------------------------------------------------


def _maybe_inject_fault(name: str) -> None:
    spec = os.environ.get(FAULT_INJECT_ENV, "")
    if not spec:
        return
    for directive in spec.split(","):
        target, _, action = directive.partition("=")
        if target != name:
            continue
        if action == "exit":
            # Bypasses all exception handling and atexit machinery —
            # exactly what an OOM kill or segfault looks like from the
            # parent's side of the pipe.
            os._exit(3)
        if action == "raise":
            raise ReproError(f"injected fault for {name!r}")


def _analyze_program(program, flavors: Tuple[str, ...], schedule: str,
                     parallel_scc: bool = False,
                     incremental: bool = False,
                     cache: object = True
                     ) -> Dict[str, AnalysisResult]:
    from .analysis.flowinsensitive import analyze_flowinsensitive
    from .analysis.insensitive import analyze_insensitive
    from .analysis.sensitive import analyze_sensitive

    if incremental:
        from .analysis.incremental import analyze_incremental
        return analyze_incremental(program, flavors=flavors,
                                   cache=cache, schedule=schedule,
                                   parallel_scc=parallel_scc)
    results: Dict[str, AnalysisResult] = {}
    if "insensitive" in flavors or "sensitive" in flavors:
        ci = analyze_insensitive(program, schedule=schedule,
                                 parallel_scc=parallel_scc)
        if "insensitive" in flavors:
            results["insensitive"] = ci
        if "sensitive" in flavors:
            results["sensitive"] = analyze_sensitive(
                program, ci_result=ci, schedule=schedule,
                parallel_scc=parallel_scc)
    if "flowinsensitive" in flavors:
        results["flowinsensitive"] = analyze_flowinsensitive(
            program, schedule=schedule, parallel_scc=parallel_scc)
    return results


def _suite_worker(task) -> TaskOutcome:
    """Module-level so ProcessPoolExecutor can pickle the callable."""
    name, flavors, schedule, cache, parallel_scc, incremental = task
    from .suite.registry import load_program
    from .telemetry import result_records

    _maybe_inject_fault(name)
    program = load_program(name, cache=cache)
    results = _analyze_program(program, flavors, schedule, parallel_scc,
                               incremental, cache)
    return TaskOutcome(name=name, results=results,
                       records=result_records(name, results, schedule))


def _file_worker(task) -> TaskOutcome:
    path, flavors, schedule, cache, parallel_scc, incremental = task
    from .frontend.lower import lower_file
    from .telemetry import result_records

    name = str(path)
    _maybe_inject_fault(name)
    program = lower_file(path, cache=cache)
    results = _analyze_program(program, flavors, schedule, parallel_scc,
                               incremental, cache)
    return TaskOutcome(name=name, results=results,
                       records=result_records(name, results, schedule))


def _check_worker(task) -> TaskOutcome:
    """Lower (hazard model on), analyze, and run checkers.

    The outcome ships only findings and telemetry — never the program
    or solutions — so a suite-wide check sweep's IPC cost is a few KB
    per task.  The hazard lowering is a distinct cache key, so check
    runs and plain analysis runs never poison each other's cache.

    With ``digest_only`` set the finding lists stay worker-side too:
    the outcome carries one digest per flavor (computed here, from the
    same rendered findings the full path would ship) plus the usual
    count-carrying records — for callers like the serve daemon that
    compare or report digests and never look at a finding.
    """
    (name, is_suite, flavors, schedule, cache, checkers, witness,
     parallel_scc, incremental, digest_only) = task
    from time import perf_counter

    from .analysis.checkers import run_checkers
    from .telemetry import check_record

    # ``witness`` is False/True (derivation witnesses) or the string
    # "slice" / "slice+deriv": attach each finding's backward slice
    # over the alias-aware dependence graph (with derivations too for
    # the latter).  Witness text is excluded from keys and digests, so
    # none of these change what digest_only callers compare.
    slice_witness = witness in ("slice", "slice+deriv")
    derivations = witness is True or witness == "slice+deriv"

    _maybe_inject_fault(name)
    if is_suite:
        from .suite.registry import load_program
        program = load_program(name, cache=cache, hazard_model=True)
    else:
        from .frontend.lower import lower_file
        program = lower_file(name, cache=cache, hazard_model=True)
    results = _analyze_program(program, flavors, schedule, parallel_scc,
                               incremental, cache)
    findings: Dict[str, list] = {}
    records: List[dict] = []
    # One lowering serves every flavor below — each record carries the
    # same lowering-cache status on purpose (see check_record).
    lowering_status = program.extras.get("cache", "off")
    for flavor, result in results.items():
        table = result.solution.table
        before = table.decode_calls
        start = perf_counter()
        found = run_checkers(result, checkers, witness=derivations)
        if slice_witness:
            from .analysis.slicing import attach_slice_witnesses
            attach_slice_witnesses(found, result)
        elapsed = perf_counter() - start
        findings[flavor] = found
        dense = {"decode_calls_before": before,
                 "decode_calls_after": table.decode_calls}
        for counter in ("sccs_resolved", "summaries_reused",
                        "summary_cache_hits", "summary_scc_total"):
            value = result.extras.get("dense", {}).get(counter)
            if value is not None:
                dense[counter] = value
        records.append(check_record(
            name, flavor, found, elapsed, schedule,
            dense=dense, cache=lowering_status))
    if digest_only:
        from .analysis.checkers import findings_digest
        digests = {flavor: findings_digest(found)
                   for flavor, found in findings.items()}
        return TaskOutcome(name=name, records=records, digests=digests)
    return TaskOutcome(name=name, records=records, findings=findings)


def _serve_analyze_worker(task) -> TaskOutcome:
    """Analyze one serve request, shipping back a JSON-safe payload.

    Same lowering and analysis path as :func:`_suite_worker` /
    :func:`_file_worker` — that shared path is what makes served
    digests byte-equal to CLI runs — but the outcome carries only the
    response payload (per-flavor solution digests, pair census,
    counters) plus telemetry records.  Programs and solutions never
    cross the pipe: a serve worker's IPC cost is a few KB per request
    regardless of program size.
    """
    (name, is_suite, flavors, schedule, cache, parallel_scc,
     incremental) = task
    from .serve.payload import analysis_payload
    from .telemetry import result_records

    _maybe_inject_fault(name)
    if is_suite:
        from .suite.registry import load_program
        program = load_program(name, cache=cache)
    else:
        from .frontend.lower import lower_file
        program = lower_file(name, cache=cache)
    results = _analyze_program(program, flavors, schedule, parallel_scc,
                               incremental, cache)
    return TaskOutcome(name=name,
                       records=result_records(name, results, schedule),
                       payload=analysis_payload(name, results, schedule))


def _slice_worker(task) -> TaskOutcome:
    """Analyze one program and compute a dependence-graph slice.

    The outcome ships a JSON-safe payload — the slice (node keys,
    origins, edges, digest), the dependence graph's stats and digest,
    and per-node labels for DOT rendering — plus one ``kind="slice"``
    telemetry record.  Programs, solutions, and the graph itself stay
    worker-side.

    Finding-keyed slices (``from_finding``) lower under the hazard
    model — the model the finding was reported against, so its node
    exists in the graph; ``file:line`` criteria use the plain lowering
    so slice digests line up with ``repro analyze`` results.
    """
    (name, is_suite, flavor, schedule, cache, criterion, from_finding,
     direction, parallel_scc, incremental) = task
    from time import perf_counter

    from .analysis.depgraph import build_depgraph
    from .analysis.slicing import (resolve_finding, slice_criterion,
                                   slice_for_finding)
    from .telemetry import slice_record

    _maybe_inject_fault(name)
    hazard = from_finding is not None
    if is_suite:
        from .suite.registry import load_program
        program = load_program(name, cache=cache, hazard_model=hazard)
    else:
        from .frontend.lower import lower_file
        program = lower_file(name, cache=cache, hazard_model=hazard)
    result = _analyze_program(program, (flavor,), schedule, parallel_scc,
                              incremental, cache)[flavor]
    table = result.solution.table
    before = table.decode_calls
    start = perf_counter()
    graph = build_depgraph(result)
    if from_finding is not None:
        from .analysis.checkers import run_checkers
        finding = resolve_finding(run_checkers(result), from_finding)
        slice_result = slice_for_finding(graph, finding, direction)
    else:
        slice_result = slice_criterion(graph, criterion, direction)
    elapsed = perf_counter() - start

    slice_dict = slice_result.as_dict()
    stats = graph.stats()
    digest = graph.digest()
    members = set(slice_dict["nodes"])
    payload = {
        "program": name, "flavor": flavor, "schedule": schedule,
        "slice": slice_dict,
        "graph": {"stats": stats, "digest": digest},
        "node_info": {key: {"function": fn, "kind": kind,
                            "origin": origin}
                      for key, (fn, kind, origin)
                      in sorted(graph.nodes.items())
                      if key in members},
    }
    record = slice_record(
        name, flavor, slice_dict, stats, digest, elapsed, schedule,
        dense={"decode_calls_before": before,
               "decode_calls_after": table.decode_calls},
        cache=program.extras.get("cache", "off"))
    return TaskOutcome(name=name, records=[record], payload=payload)


def _error_outcome(name: str, exc: BaseException,
                   with_traceback: bool = True) -> TaskOutcome:
    from .telemetry import error_record

    kind = type(exc).__name__
    message = str(exc) or kind
    tb = (traceback.format_exc() if with_traceback else None)
    return TaskOutcome(
        name=name,
        error=TaskError(name=name, kind=kind, message=message,
                        traceback=tb),
        records=[error_record(name, kind, message, tb)])


def _dead_worker_outcome(name: str) -> TaskOutcome:
    from .telemetry import error_record

    message = (f"worker process died while analyzing {name!r} "
               "(killed or crashed hard)")
    return TaskOutcome(
        name=name,
        error=TaskError(name=name, kind="WorkerDied", message=message),
        records=[error_record(name, "WorkerDied", message)])


#: Per-task address-space budget in MiB, applied (and restored) around
#: every guarded worker invocation.  Set by the serve daemon's
#: ``--request-memory-mb`` so one pathological request hits a clean
#: ``MemoryError`` (→ structured error outcome) instead of dragging
#: the host into swap; unset for CLI sweeps.
RLIMIT_ENV = "REPRO_RLIMIT_MB"


def _apply_request_rlimit():
    """Install the ``RLIMIT_ENV`` soft address-space cap, returning the
    previous limits for :func:`_restore_request_rlimit` (or ``None``
    when no cap is configured / the platform refuses)."""
    spec = os.environ.get(RLIMIT_ENV, "")
    try:
        mem_mb = int(spec)
    except ValueError:
        return None
    if mem_mb <= 0:
        return None
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only container
        return None
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    limit = mem_mb * 1024 * 1024
    if hard != resource.RLIM_INFINITY:
        limit = min(limit, hard)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):  # pragma: no cover - platform refusal
        return None
    return (soft, hard)


def _restore_request_rlimit(saved) -> None:
    if saved is None:
        return
    try:
        import resource
        resource.setrlimit(resource.RLIMIT_AS, saved)
    except (ValueError, OSError):  # pragma: no cover - platform refusal
        pass


def _guarded(worker, task) -> TaskOutcome:
    """Run ``worker`` catching its exceptions into an error outcome.

    Runs *in the worker process*, so a raising task ships back one
    structured outcome instead of poisoning the whole ``pool.map``.
    ``BaseException`` is deliberate: a ``KeyboardInterrupt`` or
    ``SystemExit`` inside one task should fail that task, not tear
    down the sweep (a genuine parent-side Ctrl-C still interrupts the
    parent's ``wait``).  The optional per-task memory cap (see
    :data:`RLIMIT_ENV`) surfaces as a caught ``MemoryError`` here —
    a budget-blown task fails structurally, its pool survives.
    """
    name = str(task[0])
    saved = _apply_request_rlimit()
    try:
        return worker(task)
    except BaseException as exc:
        return _error_outcome(name, exc)
    finally:
        _restore_request_rlimit(saved)


# a top-level partial target: ProcessPoolExecutor needs picklables
def _guarded_suite_worker(task) -> TaskOutcome:
    return _guarded(_suite_worker, task)


def _guarded_file_worker(task) -> TaskOutcome:
    return _guarded(_file_worker, task)


def _guarded_check_worker(task) -> TaskOutcome:
    return _guarded(_check_worker, task)


def _guarded_serve_analyze_worker(task) -> TaskOutcome:
    return _guarded(_serve_analyze_worker, task)


def _guarded_slice_worker(task) -> TaskOutcome:
    return _guarded(_slice_worker, task)


_GUARDED = {_suite_worker: _guarded_suite_worker,
            _file_worker: _guarded_file_worker,
            _check_worker: _guarded_check_worker,
            _serve_analyze_worker: _guarded_serve_analyze_worker,
            _slice_worker: _guarded_slice_worker}


# -- engine ----------------------------------------------------------------


def _run_isolated(worker, task) -> TaskOutcome:
    """Re-run one task in its own fresh single-worker pool.

    Used after a ``BrokenProcessPool``: every pending future in the
    broken pool failed, with no record of which task actually killed
    its worker.  A private pool per survivor means a task that dies
    *again* breaks only its own pool — identifying the culprit by name
    — while innocent bystanders just complete.  (Re-running inline
    would let an ``os._exit`` task kill the driver itself.)
    """
    guarded = _GUARDED.get(worker, worker)
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(guarded, task).result()
    except BrokenProcessPool:
        return _dead_worker_outcome(str(task[0]))


def _tag_rss_scope(outcome: TaskOutcome, scope: str,
                   baseline_kb: Optional[int] = None) -> None:
    """Annotate an outcome's telemetry records with whose memory
    ``peak_rss_kb`` actually describes.

    Worker-pool records measure a process that ran (approximately)
    just that task, so ``rss_scope="worker"`` and the number stands on
    its own.  Inline records measure the *parent* — its cumulative
    peak includes every earlier task and the driver itself, so raw
    ``peak_rss_kb`` grows monotonically along a sweep and was easy to
    misread as per-task cost.  Those records get
    ``rss_scope="process"`` plus ``rss_delta_kb``, the growth of the
    process peak over the pre-task baseline (0 when the task fit
    under the existing high-water mark — peak RSS never goes down).
    """
    for record in outcome.records:
        if "peak_rss_kb" not in record:
            continue
        record["rss_scope"] = scope
        if scope == "process":
            peak = record["peak_rss_kb"]
            if peak is None or baseline_kb is None:
                record["rss_delta_kb"] = None
            else:
                record["rss_delta_kb"] = max(0, peak - baseline_kb)


def run_tasks(worker, tasks: List[tuple], jobs: Optional[int] = None,
              fail_fast: bool = False, force_pool: bool = False) -> RunReport:
    """Run ``worker`` over ``tasks``, isolating per-task failures.

    Returns a :class:`RunReport` with one :class:`TaskOutcome` per
    task, in submission order.  With ``fail_fast=False`` (default) a
    failing task becomes an error outcome and the sweep continues;
    with ``fail_fast=True`` the first failure raises :class:`ReproError`
    naming the task (completed outcomes are discarded, matching the
    old ``pool.map`` contract).  ``force_pool=True`` guarantees worker
    processes even for sweeps small enough to run inline.
    """
    # An unspecified job count is capped at the core count (more
    # workers only adds fork/IPC overhead for this CPU-bound
    # workload); an *explicit* jobs=N is honored even on fewer cores —
    # the caller may want process isolation itself, not throughput.
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, min(jobs, len(tasks))) if tasks else 1
    guarded = _GUARDED.get(worker, worker)

    outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)

    if not force_pool and not os.environ.get(FAULT_INJECT_ENV) \
            and len(tasks) <= INLINE_TASK_THRESHOLD:
        # Tiny sweep: executor setup would dominate; run it here.
        # (Fault-injection tests need real processes — an injected
        # os._exit would take the caller down with it.)
        jobs = 1

    if jobs == 1:
        # Inline guard catches only Exception: a Ctrl-C in the calling
        # process must interrupt the sweep, not become an "outcome".
        from .telemetry import peak_rss_kb

        for index, task in enumerate(tasks):
            baseline = peak_rss_kb()
            try:
                outcome = worker(task)
            except Exception as exc:
                outcome = _error_outcome(str(task[0]), exc)
            if not outcome.ok and fail_fast:
                raise ReproError(f"task failed: {outcome.error}")
            _tag_rss_scope(outcome, "process", baseline)
            outcomes[index] = outcome
        return RunReport(outcomes=list(outcomes))

    pending_retry: List[int] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(guarded, task): index
                   for index, task in enumerate(tasks)}
        not_done = set(futures)
        broken = False
        while not_done:
            try:
                done, not_done = wait(not_done,
                                      return_when=FIRST_COMPLETED)
            except BrokenProcessPool:  # pragma: no cover - version-dep
                broken = True
                break
            for future in done:
                index = futures[future]
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    # Poisons every sibling future too; collect them
                    # all for isolated re-runs below.
                    broken = True
                    continue
                if not outcome.ok and fail_fast:
                    for other in not_done:
                        other.cancel()
                    raise ReproError(f"task failed: {outcome.error}")
                _tag_rss_scope(outcome, "worker")
                outcomes[index] = outcome
            if broken:
                break
        if broken:
            pending_retry = [index for index, outcome
                             in enumerate(outcomes) if outcome is None]

    # The broken pool told us nothing about *which* task killed it —
    # every unresolved task gets a clean, isolated second chance.
    for index in pending_retry:
        outcome = _run_isolated(worker, tasks[index])
        if not outcome.ok and fail_fast:
            raise ReproError(f"task failed: {outcome.error}")
        _tag_rss_scope(outcome, "worker")
        outcomes[index] = outcome

    return RunReport(outcomes=[o for o in outcomes if o is not None])


# -- persistent pool (the serve daemon's cold path) ------------------------


class WorkerPool:
    """A long-lived fault-isolated process pool for one-task-at-a-time
    submission.

    :func:`run_tasks` builds (and tears down) a pool per sweep, which
    is right for batch CLI runs and wrong for a daemon: serve requests
    arrive one at a time over hours, and paying executor setup per
    request would swamp the work.  This pool persists across requests
    and applies the same fault contract as the sweep driver — worker
    exceptions come back as structured error outcomes, and a worker
    death (``BrokenProcessPool``) is contained by rebuilding the pool
    and retrying the task once in isolation, so one poisonous request
    can neither kill the daemon nor fail its innocent neighbors.

    Thread-safe: :meth:`run` may be called concurrently from the
    daemon's executor threads (``ProcessPoolExecutor`` submission is
    itself thread-safe; the lock only guards pool replacement).
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        import threading

        self.max_workers = max_workers or default_jobs()
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Hard worker deaths observed (for /metrics).
        self.worker_deaths = 0

    def _executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers)
            return self._pool

    def _discard_broken(self, broken: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._pool is broken:
                self._pool = None
        broken.shutdown(wait=False, cancel_futures=True)

    def run(self, worker, task) -> TaskOutcome:
        """Run one task to an outcome, blocking the calling thread."""
        guarded = _GUARDED.get(worker, worker)
        pool = self._executor()
        try:
            outcome = pool.submit(guarded, task).result()
        except BrokenProcessPool:
            # The death may have been this task's doing or a sibling's
            # — give it one isolated retry, exactly like run_tasks.
            self.worker_deaths += 1
            self._discard_broken(pool)
            outcome = _run_isolated(worker, task)
        _tag_rss_scope(outcome, "worker")
        return outcome

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


# -- public drivers --------------------------------------------------------


def run_suite_report(names: Optional[Sequence[str]] = None,
                     flavors: Sequence[str] = ("insensitive", "sensitive"),
                     jobs: Optional[int] = None,
                     schedule: str = "batched",
                     cache: object = True,
                     fail_fast: bool = False,
                     force_pool: bool = False,
                     parallel_scc: bool = False,
                     incremental: bool = False,
                     ) -> RunReport:
    """Analyze suite programs across processes, fault-isolated.

    Returns a :class:`RunReport`; ``report.results`` maps each
    *successful* program to its ``{flavor: AnalysisResult}`` dict and
    ``report.errors`` names each failed one.  ``jobs`` defaults to the
    CPU count; ``jobs=1`` — or a sweep small enough that executor
    setup would dominate — runs inline (``force_pool=True`` overrides).
    ``cache`` controls the persistent lowering cache (on by default
    for suite sources).
    """
    from .suite.registry import PROGRAM_NAMES

    if names is None:
        names = PROGRAM_NAMES
    flavors = _check_flavors(flavors)
    tasks = [(name, flavors, schedule, cache, parallel_scc, incremental)
             for name in names]
    return run_tasks(_suite_worker, tasks, jobs, fail_fast=fail_fast,
                     force_pool=force_pool)


def run_files_report(paths: Sequence,
                     flavors: Sequence[str] = ("insensitive",),
                     jobs: Optional[int] = None,
                     schedule: str = "batched",
                     cache: object = None,
                     fail_fast: bool = False,
                     force_pool: bool = False,
                     parallel_scc: bool = False,
                     incremental: bool = False,
                     ) -> RunReport:
    """Analyze several C files as *independent* programs, in parallel.

    Unlike :func:`repro.parse_files`, the files are not linked into
    one program — each is lowered and analyzed on its own, which is
    what a multi-file sweep (one program per file) wants.  Outcomes
    come back in input order.
    """
    flavors = _check_flavors(flavors)
    tasks = [(str(p), flavors, schedule, cache, parallel_scc, incremental)
             for p in paths]
    return run_tasks(_file_worker, tasks, jobs, fail_fast=fail_fast,
                     force_pool=force_pool)


def run_check_report(names: Optional[Sequence[str]] = None,
                     paths: Optional[Sequence] = None,
                     flavors: Sequence[str] = ("insensitive",),
                     checkers: Optional[Sequence[str]] = None,
                     jobs: Optional[int] = None,
                     schedule: str = "batched",
                     cache: object = True,
                     witness: object = False,
                     fail_fast: bool = False,
                     force_pool: bool = False,
                     parallel_scc: bool = False,
                     incremental: bool = False,
                     digest_only: bool = False,
                     ) -> RunReport:
    """Run the bug checkers over suite programs and/or C files.

    Each task lowers its program under the hazard model (``<null>`` /
    ``<uninit>`` summary cells), runs the requested analysis flavors,
    and sweeps the selected checkers over each.  Outcomes carry
    ``findings`` (flavor → finding list) and one ``kind="check"``
    telemetry record per flavor; programs and solutions stay in the
    workers.  ``checkers=None`` runs every registered checker;
    checker names are validated here, before any worker forks.

    ``witness`` is ``False``/``True`` (attach derivation witnesses) or
    ``"slice"`` / ``"slice+deriv"`` — attach each finding's backward
    dependence-graph slice (optionally alongside derivations).

    ``digest_only=True`` is the fast path for callers that only
    compare digests (the serve daemon, determinism cross-checks):
    outcomes carry ``digests`` (flavor → findings digest) instead of
    ``findings``, so finding lists are never pickled across the pool.
    Per-flavor counts still arrive in the telemetry records, and the
    checker sweep itself is identical — same decode-call footprint,
    same digests.
    """
    from .analysis.checkers import REGISTRY
    from .suite.registry import PROGRAM_NAMES

    REGISTRY.get(checkers)
    flavors = _check_flavors(flavors)
    checkers = tuple(checkers) if checkers is not None else None
    tasks = []
    if paths is None and names is None:
        names = PROGRAM_NAMES
    for name in names or ():
        tasks.append((name, True, flavors, schedule, cache, checkers,
                      witness, parallel_scc, incremental, digest_only))
    for path in paths or ():
        tasks.append((str(path), False, flavors, schedule, cache,
                      checkers, witness, parallel_scc, incremental,
                      digest_only))
    return run_tasks(_check_worker, tasks, jobs, fail_fast=fail_fast,
                     force_pool=force_pool)


def run_slice_report(names: Optional[Sequence[str]] = None,
                     paths: Optional[Sequence] = None,
                     flavor: str = "insensitive",
                     criterion: Optional[str] = None,
                     from_finding: Optional[str] = None,
                     direction: str = "backward",
                     jobs: Optional[int] = None,
                     schedule: str = "batched",
                     cache: object = True,
                     fail_fast: bool = False,
                     force_pool: bool = False,
                     parallel_scc: bool = False,
                     incremental: bool = False,
                     ) -> RunReport:
    """Compute dependence-graph slices, one task per program.

    Exactly one of ``criterion`` (``file:line``) / ``from_finding``
    (a ``repro check`` finding key or unique substring) selects the
    slice roots; every task applies the same criterion, so a
    multi-program sweep answers "who else touches this line".
    Outcomes carry a JSON-safe ``payload`` (slice, graph stats and
    digest, node labels) and one ``kind="slice"`` record.
    """
    from .analysis.slicing import DIRECTIONS
    from .suite.registry import PROGRAM_NAMES

    if (criterion is None) == (from_finding is None):
        raise ReproError(
            "exactly one of 'criterion' and 'from_finding' must be "
            "given")
    if direction not in DIRECTIONS:
        raise ReproError(
            f"unknown slice direction {direction!r}; expected one of "
            f"{', '.join(DIRECTIONS)}")
    _check_flavors((flavor,))
    tasks = []
    if paths is None and names is None:
        names = PROGRAM_NAMES
    for name in names or ():
        tasks.append((name, True, flavor, schedule, cache, criterion,
                      from_finding, direction, parallel_scc,
                      incremental))
    for path in paths or ():
        tasks.append((str(path), False, flavor, schedule, cache,
                      criterion, from_finding, direction, parallel_scc,
                      incremental))
    return run_tasks(_slice_worker, tasks, jobs, fail_fast=fail_fast,
                     force_pool=force_pool)


def run_suite(names: Optional[Sequence[str]] = None,
              flavors: Sequence[str] = ("insensitive", "sensitive"),
              jobs: Optional[int] = None,
              schedule: str = "batched",
              cache: object = True,
              parallel_scc: bool = False,
              ) -> Dict[str, Dict[str, AnalysisResult]]:
    """Back-compat wrapper over :func:`run_suite_report`.

    Returns ``{program name: {flavor: AnalysisResult}}`` and raises on
    the first failure (the pre-fault-isolation contract).
    """
    report = run_suite_report(names, flavors, jobs, schedule, cache,
                              fail_fast=True, parallel_scc=parallel_scc)
    return report.results


def run_files(paths: Sequence,
              flavors: Sequence[str] = ("insensitive",),
              jobs: Optional[int] = None,
              schedule: str = "batched",
              cache: object = None,
              ) -> List[Tuple[str, Dict[str, AnalysisResult]]]:
    """Back-compat wrapper over :func:`run_files_report`.

    Returns ``[(path, {flavor: AnalysisResult}), ...]`` in input order
    and raises on the first failure.
    """
    report = run_files_report(paths, flavors, jobs, schedule, cache,
                              fail_fast=True)
    return [(o.name, o.results) for o in report.outcomes]
