"""Parallel analysis driver.

The 13 suite programs (and independent user files) are embarrassingly
parallel: each worker lowers one program — through the persistent
lowering cache, so repeat sweeps skip the frontend entirely — and runs
the requested analyses.  Results ship back whole: each worker's return
value is pickled as one message, so a result's ``program``, solution
ports, and call-graph nodes arrive identity-consistent with each other
(and interned facts re-unify on load via their ``__reduce__`` hooks).

``jobs=1`` (or a single task) runs inline in the calling process with
no executor, keeping the driver usable where fork is unavailable and
keeping tracebacks simple.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis.common import AnalysisResult
from .errors import ReproError

#: Analysis flavors the driver understands, in run order (CI first:
#: the CS pass reuses its result, the FI baseline is independent).
FLAVORS = ("insensitive", "sensitive", "flowinsensitive")


def default_jobs() -> int:
    return os.cpu_count() or 1


def _check_flavors(flavors: Sequence[str]) -> Tuple[str, ...]:
    for flavor in flavors:
        if flavor not in FLAVORS:
            raise ReproError(
                f"unknown analysis flavor {flavor!r}; expected one of "
                f"{', '.join(FLAVORS)}")
    return tuple(flavors)


def _analyze_program(program, flavors: Tuple[str, ...], schedule: str
                     ) -> Dict[str, AnalysisResult]:
    from .analysis.flowinsensitive import analyze_flowinsensitive
    from .analysis.insensitive import analyze_insensitive
    from .analysis.sensitive import analyze_sensitive

    results: Dict[str, AnalysisResult] = {}
    if "insensitive" in flavors or "sensitive" in flavors:
        ci = analyze_insensitive(program, schedule=schedule)
        if "insensitive" in flavors:
            results["insensitive"] = ci
        if "sensitive" in flavors:
            results["sensitive"] = analyze_sensitive(
                program, ci_result=ci, schedule=schedule)
    if "flowinsensitive" in flavors:
        results["flowinsensitive"] = analyze_flowinsensitive(
            program, schedule=schedule)
    return results


def _suite_worker(task) -> Tuple[str, Dict[str, AnalysisResult]]:
    """Module-level so ProcessPoolExecutor can pickle the callable."""
    name, flavors, schedule, cache = task
    from .suite.registry import load_program

    program = load_program(name, cache=cache)
    return name, _analyze_program(program, flavors, schedule)


def _file_worker(task) -> Tuple[str, Dict[str, AnalysisResult]]:
    path, flavors, schedule, cache = task
    from .frontend.lower import lower_file

    program = lower_file(path, cache=cache)
    return str(path), _analyze_program(program, flavors, schedule)


def _run_tasks(worker, tasks: List[tuple], jobs: Optional[int]
               ) -> List[Tuple[str, Dict[str, AnalysisResult]]]:
    if jobs is None:
        jobs = default_jobs()
    # More workers than cores (or tasks) only adds fork/IPC overhead
    # for this CPU-bound workload, so cap at both.
    jobs = max(1, min(jobs, len(tasks), default_jobs())) if tasks else 1
    if jobs == 1:
        return [worker(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(worker, tasks))


def run_suite(names: Optional[Sequence[str]] = None,
              flavors: Sequence[str] = ("insensitive", "sensitive"),
              jobs: Optional[int] = None,
              schedule: str = "batched",
              cache: object = True,
              ) -> Dict[str, Dict[str, AnalysisResult]]:
    """Analyze suite programs across processes.

    Returns ``{program name: {flavor: AnalysisResult}}``.  ``jobs``
    defaults to the CPU count; ``jobs=1`` runs inline.  ``cache``
    controls the persistent lowering cache (on by default for suite
    sources).
    """
    from .suite.registry import PROGRAM_NAMES

    if names is None:
        names = PROGRAM_NAMES
    flavors = _check_flavors(flavors)
    tasks = [(name, flavors, schedule, cache) for name in names]
    return dict(_run_tasks(_suite_worker, tasks, jobs))


def run_files(paths: Sequence,
              flavors: Sequence[str] = ("insensitive",),
              jobs: Optional[int] = None,
              schedule: str = "batched",
              cache: object = None,
              ) -> List[Tuple[str, Dict[str, AnalysisResult]]]:
    """Analyze several C files as *independent* programs, in parallel.

    Unlike :func:`repro.parse_files`, the files are not linked into
    one program — each is lowered and analyzed on its own, which is
    what a multi-file sweep (one program per file) wants.  Returns
    ``[(path, {flavor: AnalysisResult}), ...]`` in input order.
    """
    flavors = _check_flavors(flavors)
    tasks = [(str(p), flavors, schedule, cache) for p in paths]
    return _run_tasks(_file_worker, tasks, jobs)
