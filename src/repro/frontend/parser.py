"""pycparser driver: preprocessed text → pycparser AST."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from pycparser import c_ast, c_parser

try:  # pycparser >= 3 moved ParseError out of plyparser
    from pycparser.c_parser import ParseError as PycParseError
except ImportError:  # pragma: no cover - pycparser 2.x layout
    from pycparser.plyparser import ParseError as PycParseError

from ..errors import ParseError
from .preprocess import Preprocessor

#: A fresh parser per translation unit: pycparser's parser keeps
#: typedef state between parses, which would leak across programs.


def parse_preprocessed(text: str, filename: str = "<text>") -> c_ast.FileAST:
    """Parse already-preprocessed C text."""
    parser = c_parser.CParser()
    try:
        return parser.parse(text, filename=filename)
    except AssertionError as exc:
        # Some malformed inputs trip pycparser-internal assertions
        # rather than its ParseError; surface them uniformly.
        raise ParseError(f"parser assertion: {exc}", filename) from exc
    except PycParseError as exc:
        message = str(exc)
        line: Optional[int] = None
        # pycparser errors look like "file.c:12:5: before: foo".
        parts = message.split(":")
        if len(parts) >= 2 and parts[1].isdigit():
            line = int(parts[1])
        raise ParseError(message, filename, line) from exc


def parse_source(source: str, filename: str = "<source>",
                 include_dirs: Sequence = (),
                 defines: Optional[Dict[str, str]] = None) -> c_ast.FileAST:
    """Preprocess and parse C source text."""
    pre = Preprocessor(include_dirs=include_dirs, defines=defines)
    processed = pre.process_text(source, filename)
    return parse_preprocessed(processed, filename)


def parse_file(path, include_dirs: Sequence = (),
               defines: Optional[Dict[str, str]] = None) -> c_ast.FileAST:
    """Preprocess and parse a C file."""
    pre = Preprocessor(include_dirs=include_dirs, defines=defines)
    processed = pre.process_file(path)
    return parse_preprocessed(processed, str(path))
