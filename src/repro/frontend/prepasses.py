"""Syntactic pre-passes over function bodies.

Run before lowering, these answer two questions the lowerer needs up
front:

* **Which variables must live in the store?**  Any variable whose
  address is taken (plus, decided later from types, aggregates and
  statics/globals).  The address-taken scan is conservative per
  (function, name): a local shadowing an address-taken name is also
  treated as address-taken, which costs precision but never soundness.

* **Which procedures are recursive?**  Footnote 4 of the paper: locals
  of recursive procedures may have multiple simultaneously live
  instances, so their base-locations are only weakly updateable
  (scheme 2).  We compute SCCs of the direct call graph with Tarjan's
  algorithm; if the program takes the address of any function, every
  function containing a call through an expression (a possible indirect
  call) gets conservative edges to every address-taken function.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from pycparser import c_ast


class PrepassInfo:
    """Results of the syntactic pre-passes for one translation unit."""

    def __init__(self) -> None:
        #: (function name, variable name) pairs whose address is taken;
        #: function name "" means at file scope (global initializers).
        self.address_taken: Set[Tuple[str, str]] = set()
        #: Function names referenced outside call position.
        self.address_taken_functions: Set[str] = set()
        #: Direct call edges: caller → set of callee names.
        self.direct_calls: Dict[str, Set[str]] = {}
        #: Functions containing a call through a non-identifier callee.
        self.has_indirect_call: Set[str] = set()
        #: Functions in a call-graph cycle (including self-recursion).
        self.recursive: Set[str] = set()

    def is_address_taken(self, function: str, variable: str) -> bool:
        return ((function, variable) in self.address_taken
                or ("", variable) in self.address_taken)


def _lvalue_root(node) -> Optional[str]:
    """The variable an ``&`` expression pins into memory, or ``None``
    when the address is computed from a pointer dereference (no named
    variable's storage is exposed by it)."""
    while True:
        if isinstance(node, c_ast.ID):
            return node.name
        if isinstance(node, c_ast.StructRef):
            if node.type == "->":
                return None  # address derives from a pointer value
            node = node.name
            continue
        if isinstance(node, c_ast.ArrayRef):
            node = node.name
            continue
        if isinstance(node, c_ast.UnaryOp) and node.op == "*":
            return None
        if isinstance(node, c_ast.Cast):
            node = node.expr
            continue
        return None


class _BodyScanner(c_ast.NodeVisitor):
    """Scans one function body for the pre-pass facts."""

    def __init__(self, info: PrepassInfo, function: str,
                 known_functions: Set[str]) -> None:
        self.info = info
        self.function = function
        self.known_functions = known_functions
        self.info.direct_calls.setdefault(function, set())

    def visit_UnaryOp(self, node: c_ast.UnaryOp) -> None:
        if node.op == "&":
            root = _lvalue_root(node.expr)
            if root is not None:
                if root in self.known_functions:
                    self.info.address_taken_functions.add(root)
                else:
                    self.info.address_taken.add((self.function, root))
        self.generic_visit(node)

    def visit_FuncCall(self, node: c_ast.FuncCall) -> None:
        callee = node.name
        if isinstance(callee, c_ast.ID):
            if callee.name in self.known_functions:
                self.info.direct_calls[self.function].add(callee.name)
            else:
                # An identifier that is not a declared function: a call
                # through a function-pointer variable.
                self.info.has_indirect_call.add(self.function)
        else:
            self.info.has_indirect_call.add(self.function)
            self.visit(callee)
        if node.args is not None:
            self.visit(node.args)

    def visit_ID(self, node: c_ast.ID) -> None:
        # A function name in value position (not handled by
        # visit_FuncCall above) is an implicit address-of.
        if node.name in self.known_functions:
            self.info.address_taken_functions.add(node.name)


def _tarjan_sccs(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's strongly connected components, iteratively."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work: List[Tuple[str, Iterable]] = [(root, iter(graph.get(root, ())))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def run_prepasses(func_defs: Dict[str, c_ast.FuncDef],
                  known_functions: Optional[Set[str]] = None) -> PrepassInfo:
    """Scan every function body and compute the pre-pass facts."""
    info = PrepassInfo()
    if known_functions is None:
        known_functions = set(func_defs)
    for name, funcdef in func_defs.items():
        scanner = _BodyScanner(info, name, known_functions)
        if funcdef.body is not None:
            scanner.visit(funcdef.body)

    graph: Dict[str, Set[str]] = {
        name: {c for c in callees if c in func_defs}
        for name, callees in info.direct_calls.items()}
    for name in func_defs:
        graph.setdefault(name, set())
    if info.address_taken_functions:
        targets = {f for f in info.address_taken_functions if f in func_defs}
        for caller in info.has_indirect_call:
            graph.setdefault(caller, set()).update(targets)

    for scc in _tarjan_sccs(graph):
        if len(scc) > 1:
            info.recursive.update(scc)
        else:
            member = scc[0]
            if member in graph.get(member, set()):
                info.recursive.add(member)
    return info
