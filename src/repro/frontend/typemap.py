"""Type elaboration: pycparser declaration ASTs → :mod:`ctypes` types.

Maintains the per-translation-unit registries (typedefs, struct/union
tags, enums and their constants) and evaluates the integer constant
expressions that appear in array bounds and enumerators.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from pycparser import c_ast

from ..errors import TypeError_, UnsupportedFeatureError
from .ctypes import (
    ArrayType,
    BOOL,
    CHAR,
    CType,
    DOUBLE,
    EnumType,
    FLOAT,
    FloatType,
    FunctionType,
    INT,
    IntType,
    LONG,
    LONGDOUBLE,
    LONGLONG,
    PointerType,
    RecordType,
    SHORT,
    UNSIGNED_CHAR,
    UNSIGNED_INT,
    UNSIGNED_LONG,
    VOID,
    VoidType,
)

_BUILTIN_COMBOS: Dict[Tuple[str, ...], CType] = {}


def _register_combo(names: str, ctype: CType) -> None:
    key = tuple(sorted(names.split()))
    _BUILTIN_COMBOS[key] = ctype


for _names, _ctype in [
    ("void", VOID),
    ("_Bool", BOOL),
    ("char", CHAR),
    ("signed char", CHAR),
    ("unsigned char", UNSIGNED_CHAR),
    ("short", SHORT), ("short int", SHORT), ("signed short", SHORT),
    ("signed short int", SHORT),
    ("unsigned short", IntType("short", signed=False)),
    ("unsigned short int", IntType("short", signed=False)),
    ("int", INT), ("signed", INT), ("signed int", INT),
    ("unsigned", UNSIGNED_INT), ("unsigned int", UNSIGNED_INT),
    ("long", LONG), ("long int", LONG), ("signed long", LONG),
    ("signed long int", LONG),
    ("unsigned long", UNSIGNED_LONG), ("unsigned long int", UNSIGNED_LONG),
    ("long long", LONGLONG), ("long long int", LONGLONG),
    ("signed long long", LONGLONG), ("signed long long int", LONGLONG),
    ("unsigned long long", IntType("longlong", signed=False)),
    ("unsigned long long int", IntType("longlong", signed=False)),
    ("float", FLOAT),
    ("double", DOUBLE),
    ("long double", LONGDOUBLE),
]:
    _register_combo(_names, _ctype)


class TypeContext:
    """Registries for one translation unit."""

    def __init__(self) -> None:
        self.typedefs: Dict[str, CType] = {}
        self.records: Dict[str, RecordType] = {}
        self.enums: Dict[str, EnumType] = {}
        self.enum_constants: Dict[str, int] = {}
        self._anon = itertools.count(1)

    # -- typedefs ------------------------------------------------------------

    def register_typedef(self, node: c_ast.Typedef) -> None:
        self.typedefs[node.name] = self.type_of(node.type)

    # -- main entry ------------------------------------------------------------

    def type_of(self, node) -> CType:
        """Elaborate any pycparser type node."""
        if isinstance(node, c_ast.TypeDecl):
            return self._base_type(node.type)
        if isinstance(node, c_ast.PtrDecl):
            return PointerType(self.type_of(node.type))
        if isinstance(node, c_ast.ArrayDecl):
            length = None
            if node.dim is not None:
                length = self.const_eval(node.dim)
            return ArrayType(self.type_of(node.type), length)
        if isinstance(node, c_ast.FuncDecl):
            return self._function_type(node)
        if isinstance(node, c_ast.Typename):
            return self.type_of(node.type)
        if isinstance(node, c_ast.Decl):
            return self.type_of(node.type)
        if isinstance(node, (c_ast.Struct, c_ast.Union, c_ast.Enum,
                             c_ast.IdentifierType)):
            return self._base_type(node)
        raise TypeError_(f"cannot elaborate type node {type(node).__name__}",
                         line=getattr(getattr(node, "coord", None), "line", None))

    def _base_type(self, node) -> CType:
        if isinstance(node, c_ast.IdentifierType):
            names = tuple(node.names)
            if len(names) == 1 and names[0] in self.typedefs:
                return self.typedefs[names[0]]
            combo = _BUILTIN_COMBOS.get(tuple(sorted(names)))
            if combo is None:
                raise TypeError_(f"unknown type {' '.join(names)!r}",
                                 line=getattr(node.coord, "line", None))
            return combo
        if isinstance(node, (c_ast.Struct, c_ast.Union)):
            return self._record_type(node)
        if isinstance(node, c_ast.Enum):
            return self._enum_type(node)
        raise TypeError_(f"unknown base type node {type(node).__name__}")

    # -- records ------------------------------------------------------------------

    def _record_key(self, node) -> str:
        kind = "union" if isinstance(node, c_ast.Union) else "struct"
        tag = node.name or f"<anon{next(self._anon)}>"
        return f"{kind} {tag}", tag

    def _record_type(self, node) -> RecordType:
        is_union = isinstance(node, c_ast.Union)
        key, tag = self._record_key(node)
        record = self.records.get(key)
        if record is None:
            record = RecordType(tag, is_union=is_union)
            self.records[key] = record
        if node.decls is not None:
            members: List[Tuple[str, CType]] = []
            for decl in node.decls:
                if decl.name is None:
                    raise UnsupportedFeatureError(
                        "anonymous struct/union members are not supported",
                        line=getattr(decl.coord, "line", None))
                if getattr(decl, "bitsize", None) is not None:
                    # Bit-fields carry no addresses; treat as plain members.
                    pass
                members.append((decl.name, self.type_of(decl.type)))
            record.complete(members)
        return record

    # -- enums --------------------------------------------------------------------

    def _enum_type(self, node: c_ast.Enum) -> EnumType:
        tag = node.name or f"<anon{next(self._anon)}>"
        enum = self.enums.get(tag)
        if enum is None:
            enum = EnumType(tag)
            self.enums[tag] = enum
        if node.values is not None:
            next_value = 0
            for enumerator in node.values.enumerators:
                if enumerator.value is not None:
                    next_value = self.const_eval(enumerator.value)
                self.enum_constants[enumerator.name] = next_value
                next_value += 1
        return enum

    # -- function types ---------------------------------------------------------------

    def _function_type(self, node: c_ast.FuncDecl) -> FunctionType:
        return_type = self.type_of(node.type)
        params: List[CType] = []
        varargs = False
        if node.args is not None:
            for param in node.args.params:
                if isinstance(param, c_ast.EllipsisParam):
                    varargs = True
                    continue
                if isinstance(param, c_ast.ID):
                    raise UnsupportedFeatureError(
                        "K&R-style parameter declarations are not "
                        "supported",
                        line=getattr(param.coord, "line", None))
                ptype = self.type_of(param.type)
                if isinstance(ptype, VoidType):
                    continue  # (void) parameter list
                # Parameters of array/function type adjust to pointers.
                if isinstance(ptype, ArrayType):
                    ptype = PointerType(ptype.element)
                elif isinstance(ptype, FunctionType):
                    ptype = PointerType(ptype)
                params.append(ptype)
        return FunctionType(return_type, params, varargs)

    def param_names(self, node: c_ast.FuncDecl) -> List[Optional[str]]:
        """Declared parameter names, aligned with the function type's
        parameter list (void and ellipsis entries removed)."""
        names: List[Optional[str]] = []
        if node.args is None:
            return names
        for param in node.args.params:
            if isinstance(param, c_ast.EllipsisParam):
                continue
            ptype = self.type_of(param.type)
            if isinstance(ptype, VoidType):
                continue
            names.append(getattr(param, "name", None))
        return names

    # -- constant expressions -----------------------------------------------------------

    def const_eval(self, node) -> int:
        """Evaluate an integer constant expression (array bounds,
        enumerators, case labels)."""
        if isinstance(node, c_ast.Constant):
            if node.type in ("int", "long int", "long long int",
                             "unsigned int", "unsigned long int",
                             "unsigned long long int"):
                return int_literal(node.value)
            if node.type == "char":
                return _char_value(node.value)
            raise TypeError_(f"non-integer constant {node.value!r}",
                             line=getattr(node.coord, "line", None))
        if isinstance(node, c_ast.ID):
            if node.name in self.enum_constants:
                return self.enum_constants[node.name]
            raise TypeError_(f"{node.name!r} is not an integer constant",
                             line=getattr(node.coord, "line", None))
        if isinstance(node, c_ast.UnaryOp):
            if node.op == "sizeof":
                return self.type_of(node.expr).size_of()
            value = self.const_eval(node.expr)
            if node.op == "-":
                return -value
            if node.op == "+":
                return value
            if node.op == "~":
                return ~value
            if node.op == "!":
                return int(not value)
            raise TypeError_(f"bad constant unary {node.op!r}")
        if isinstance(node, c_ast.BinaryOp):
            left = self.const_eval(node.left)
            right = self.const_eval(node.right)
            ops = {
                "+": lambda: left + right, "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else 0,
                "%": lambda: left % right if right else 0,
                "<<": lambda: left << right, ">>": lambda: left >> right,
                "&": lambda: left & right, "|": lambda: left | right,
                "^": lambda: left ^ right,
                "==": lambda: int(left == right),
                "!=": lambda: int(left != right),
                "<": lambda: int(left < right), ">": lambda: int(left > right),
                "<=": lambda: int(left <= right),
                ">=": lambda: int(left >= right),
                "&&": lambda: int(bool(left) and bool(right)),
                "||": lambda: int(bool(left) or bool(right)),
            }
            handler = ops.get(node.op)
            if handler is None:
                raise TypeError_(f"bad constant binary {node.op!r}")
            return handler()
        if isinstance(node, c_ast.TernaryOp):
            return (self.const_eval(node.iftrue)
                    if self.const_eval(node.cond)
                    else self.const_eval(node.iffalse))
        if isinstance(node, c_ast.Cast):
            return self.const_eval(node.expr)
        raise TypeError_(
            f"not a constant expression: {type(node).__name__}",
            line=getattr(getattr(node, "coord", None), "line", None))


def int_literal(text: str) -> int:
    """Decode a C integer literal (decimal, 0x hex, leading-0 octal)."""
    cleaned = text.rstrip("uUlL")
    if len(cleaned) > 1 and cleaned[0] == "0" and cleaned[1] not in "xXbB":
        return int(cleaned, 8)
    return int(cleaned, 0)


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v"}


def _char_value(literal: str) -> int:
    body = literal[1:-1]
    if body.startswith("\\"):
        rest = body[1:]
        if rest and rest[0] in "xX":
            return int(rest[1:], 16)
        if rest and rest[0].isdigit():
            return int(rest, 8)
        return ord(_ESCAPES.get(rest[:1], rest[:1] or "\0"))
    return ord(body[0]) if body else 0


def decode_string_literal(literal: str) -> str:
    """Decode a C string literal's escapes (for length statistics)."""
    body = literal[1:-1]
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        i += 1
        if i >= len(body):
            break
        esc = body[i]
        if esc in "xX":
            j = i + 1
            while j < len(body) and body[j] in "0123456789abcdefABCDEF":
                j += 1
            out.append(chr(int(body[i + 1:j] or "0", 16) & 0xFF))
            i = j
            continue
        if esc.isdigit():
            j = i
            while j < len(body) and j < i + 3 and body[j].isdigit():
                j += 1
            out.append(chr(int(body[i:j], 8) & 0xFF))
            i = j
            continue
        out.append(_ESCAPES.get(esc, esc))
        i += 1
    return "".join(out)
