"""C frontend: preprocess → parse → type-elaborate → lower to the VDG."""

from .ctypes import (
    ArrayType,
    CType,
    EnumType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    RecordType,
    VoidType,
)
from .libmodels import LIBRARY_MODELS, LibModel, model_for
from .lower import (
    FunctionLowerer,
    Linkage,
    ModuleLowerer,
    lower_ast,
    lower_file,
    lower_files,
    lower_source,
)
from .parser import parse_file, parse_preprocessed, parse_source
from .prepasses import PrepassInfo, run_prepasses
from .preprocess import Preprocessor, preprocess, strip_comments
from .symbols import Symbol, SymbolKind, SymbolTable
from .typemap import TypeContext, decode_string_literal, int_literal

__all__ = [
    "ArrayType",
    "CType",
    "EnumType",
    "FloatType",
    "FunctionLowerer",
    "FunctionType",
    "IntType",
    "LIBRARY_MODELS",
    "LibModel",
    "ModuleLowerer",
    "PointerType",
    "PrepassInfo",
    "Preprocessor",
    "RecordType",
    "Symbol",
    "SymbolKind",
    "SymbolTable",
    "TypeContext",
    "VoidType",
    "decode_string_literal",
    "int_literal",
    "Linkage",
    "lower_ast",
    "lower_file",
    "lower_files",
    "lower_source",
    "model_for",
    "parse_file",
    "parse_preprocessed",
    "parse_source",
    "preprocess",
    "run_prepasses",
    "strip_comments",
]
