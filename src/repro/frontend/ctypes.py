"""Structural model of C types.

Layout-free (the analysis never needs byte offsets, only member
identity), but with a simple ABI size model so that ``sizeof`` lowers
to a sensible constant.  Struct/union types are nominal: identity is
the Python object, managed by the type elaborator's tag registry.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import TypeError_
from ..memory.access import FieldOp
from ..ir.nodes import ValueTag


class CType:
    """Abstract base for all C types."""

    __slots__ = ()

    # -- classification ------------------------------------------------------

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_record(self) -> bool:
        return isinstance(self, RecordType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (RecordType, ArrayType))

    @property
    def is_scalar_arith(self) -> bool:
        return isinstance(self, (IntType, FloatType, EnumType))

    def contains_pointers(self) -> bool:
        """Whether values of this type can carry pointer/function values
        (decides alias-relatedness of aggregate outputs, Figure 2)."""
        return _contains_pointers(self, set())

    def value_tag(self) -> ValueTag:
        """The IR tag for values of this type (Figure 3 columns)."""
        if isinstance(self, PointerType):
            if isinstance(self.pointee, FunctionType):
                return ValueTag.FUNCTION
            return ValueTag.POINTER
        if isinstance(self, FunctionType):
            return ValueTag.FUNCTION
        if isinstance(self, (RecordType, ArrayType)):
            return ValueTag.AGGREGATE
        return ValueTag.SCALAR

    def size_of(self) -> int:
        """Approximate size in bytes (simple LP64-ish model)."""
        return _size_of(self, set())


class VoidType(CType):
    __slots__ = ()

    def __repr__(self) -> str:
        return "void"


class IntType(CType):
    """Integral types, including _Bool and char."""

    __slots__ = ("kind", "signed")
    _SIZES = {"bool": 1, "char": 1, "short": 2, "int": 4, "long": 8,
              "longlong": 8}

    def __init__(self, kind: str = "int", signed: bool = True) -> None:
        if kind not in self._SIZES:
            raise TypeError_(f"unknown integer kind {kind!r}")
        self.kind = kind
        self.signed = signed

    def __repr__(self) -> str:
        prefix = "" if self.signed else "unsigned "
        return f"{prefix}{self.kind}"


class FloatType(CType):
    __slots__ = ("kind",)
    _SIZES = {"float": 4, "double": 8, "longdouble": 16}

    def __init__(self, kind: str = "double") -> None:
        if kind not in self._SIZES:
            raise TypeError_(f"unknown float kind {kind!r}")
        self.kind = kind

    def __repr__(self) -> str:
        return self.kind


class EnumType(CType):
    """Enums behave as ints; the elaborator tracks constant values."""

    __slots__ = ("tag",)

    def __init__(self, tag: str) -> None:
        self.tag = tag

    def __repr__(self) -> str:
        return f"enum {self.tag}"


class PointerType(CType):
    __slots__ = ("pointee",)

    def __init__(self, pointee: CType) -> None:
        self.pointee = pointee

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


class ArrayType(CType):
    __slots__ = ("element", "length")

    def __init__(self, element: CType, length: Optional[int] = None) -> None:
        self.element = element
        self.length = length

    def decayed(self) -> "PointerType":
        return PointerType(self.element)

    def __repr__(self) -> str:
        n = self.length if self.length is not None else ""
        return f"{self.element!r}[{n}]"


class RecordType(CType):
    """A struct or union.  Nominal: identity is the object itself.

    Members may be set after construction (``complete``) to support
    self-referential types like linked-list nodes.  Union members all
    share one collapsed field slot, which is how the paper's interning
    models static union aliasing ("an access path is aliased only to
    its prefixes").
    """

    UNION_SLOT = "<union>"

    __slots__ = ("tag", "is_union", "_members", "__weakref__")

    def __init__(self, tag: str, is_union: bool = False,
                 members: Optional[Sequence[Tuple[str, CType]]] = None) -> None:
        self.tag = tag
        self.is_union = is_union
        self._members: Optional[List[Tuple[str, CType]]] = None
        if members is not None:
            self.complete(members)

    @property
    def is_complete(self) -> bool:
        return self._members is not None

    @property
    def members(self) -> List[Tuple[str, CType]]:
        if self._members is None:
            raise TypeError_(f"incomplete type {self!r}")
        return self._members

    def complete(self, members: Sequence[Tuple[str, CType]]) -> None:
        if self._members is not None:
            raise TypeError_(f"redefinition of {self!r}")
        seen = set()
        for name, _ in members:
            if name in seen:
                raise TypeError_(f"duplicate member {name!r} in {self!r}")
            seen.add(name)
        self._members = list(members)

    def member_type(self, name: str) -> CType:
        for member, ctype in self.members:
            if member == name:
                return ctype
        raise TypeError_(f"{self!r} has no member {name!r}")

    def has_member(self, name: str) -> bool:
        return any(member == name for member, _ in self.members)

    def field_op(self, name: str) -> FieldOp:
        """The interned access operator for member ``name``.

        For unions, every member maps to the single collapsed slot, so
        ``u.a`` and ``u.b`` are the *same* access path and alias by
        equality.

        Operators are keyed by the *tag*, not the type object: C gives
        same-tagged compatible structs in different translation units
        the same identity, and pointer values crossing a link boundary
        must keep their access paths comparable.  (Same-tagged types in
        disjoint scopes falsely sharing operators is conservative.)
        """
        self.member_type(name)  # validate membership
        kw = "union" if self.is_union else "struct"
        owner = f"{kw} {self.tag}"
        if self.is_union:
            return FieldOp(owner, self.UNION_SLOT)
        return FieldOp(owner, name)

    def __repr__(self) -> str:
        kw = "union" if self.is_union else "struct"
        return f"{kw} {self.tag}"


class FunctionType(CType):
    __slots__ = ("return_type", "params", "varargs")

    def __init__(self, return_type: CType, params: Sequence[CType],
                 varargs: bool = False) -> None:
        self.return_type = return_type
        self.params = list(params)
        self.varargs = varargs

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.params)
        if self.varargs:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type!r}({params})"


# -- shared singletons for the common cases ---------------------------------

VOID = VoidType()
INT = IntType("int")
UNSIGNED_INT = IntType("int", signed=False)
CHAR = IntType("char")
UNSIGNED_CHAR = IntType("char", signed=False)
SHORT = IntType("short")
LONG = IntType("long")
UNSIGNED_LONG = IntType("long", signed=False)
LONGLONG = IntType("longlong")
BOOL = IntType("bool", signed=False)
FLOAT = FloatType("float")
DOUBLE = FloatType("double")
LONGDOUBLE = FloatType("longdouble")
CHAR_PTR = PointerType(CHAR)
VOID_PTR = PointerType(VOID)

_POINTER_SIZE = 8


def _contains_pointers(ctype: CType, visiting: set) -> bool:
    if isinstance(ctype, (PointerType, FunctionType)):
        return True
    if isinstance(ctype, ArrayType):
        return _contains_pointers(ctype.element, visiting)
    if isinstance(ctype, RecordType):
        if id(ctype) in visiting or not ctype.is_complete:
            return False
        visiting.add(id(ctype))
        try:
            return any(_contains_pointers(m, visiting)
                       for _, m in ctype.members)
        finally:
            visiting.discard(id(ctype))
    return False


def _size_of(ctype: CType, visiting: set) -> int:
    if isinstance(ctype, IntType):
        return IntType._SIZES[ctype.kind]
    if isinstance(ctype, FloatType):
        return FloatType._SIZES[ctype.kind]
    if isinstance(ctype, EnumType):
        return 4
    if isinstance(ctype, (PointerType, FunctionType)):
        return _POINTER_SIZE
    if isinstance(ctype, ArrayType):
        length = ctype.length if ctype.length is not None else 1
        return length * _size_of(ctype.element, visiting)
    if isinstance(ctype, RecordType):
        if id(ctype) in visiting:
            raise TypeError_(f"infinitely sized type {ctype!r}")
        visiting.add(id(ctype))
        try:
            sizes = [_size_of(m, visiting) for _, m in ctype.members]
        finally:
            visiting.discard(id(ctype))
        if not sizes:
            return 0
        return max(sizes) if ctype.is_union else sum(sizes)
    if isinstance(ctype, VoidType):
        return 1  # GNU-style sizeof(void)
    raise TypeError_(f"size of unknown type {ctype!r}")


def pointer_to(ctype: CType) -> PointerType:
    return PointerType(ctype)


def decay(ctype: CType) -> CType:
    """Array-to-pointer and function-to-pointer decay in value contexts."""
    if isinstance(ctype, ArrayType):
        return PointerType(ctype.element)
    if isinstance(ctype, FunctionType):
        return PointerType(ctype)
    return ctype


def compatible_assignment(target: CType, source: CType) -> bool:
    """Loose assignment-compatibility check used by the lowerer.

    The paper's caveats exclude pointer/non-pointer casts, so the only
    thing we must notice is a pointer receiving a non-zero arithmetic
    value (checked at the call site); everything structural is accepted
    loosely, as C compilers of the era did.
    """
    target = decay(target)
    source = decay(source)
    if isinstance(target, PointerType):
        return isinstance(source, (PointerType, FunctionType)) or \
            isinstance(source, (IntType, EnumType))
    if isinstance(target, RecordType):
        return target is source
    return True
